//! Exact finite-source queueing predictions for the bus service
//! disciplines.
//!
//! The simulator's per-bus arbitration is, for a homogeneous
//! geometric-think workload, a textbook finite-source queue in discrete
//! time: each of `n` processors thinks for a geometric number of cycles
//! (issuing with probability `p` per idle cycle), then queues a bus
//! request served in a fixed `T` cycles. This module solves that chain
//! *exactly* — no heavy-traffic or infinite-source approximation — so
//! the `queueing_check` gate can demand tight agreement between the
//! simulated machine and the analytic curve, per discipline.
//!
//! Two chains cover all four disciplines:
//!
//! * **Held-bus chain** (per-cycle, FCFS, batched): the grant *order*
//!   differs between these disciplines but the *queue-length process*
//!   does not — every non-idle grantable cycle serves exactly one
//!   request regardless of which PE wins. State `(q, f)`: `q` requests
//!   queued at the start of the cycle, `f` remaining cycles the bus is
//!   held. Per-PE fairness differences are covered by the seeded
//!   property suite, not this model.
//! * **Split chain**: the address phase takes one bus cycle, the
//!   request then leaves the bus while memory works, and the data phase
//!   takes one more bus cycle exactly `T` cycles after the grant. State
//!   `(q, mask)` where bit `i` of `mask` marks an in-flight request
//!   whose data phase is due in `i` cycles.
//!
//! Both chains replicate the engine's phase order: arrivals (the issue
//! phase) land *before* arbitration (the bus phase), so a request can
//! be granted the cycle it is posted with a recorded wait of zero.

use decache_bus::ServiceDiscipline;
use std::fmt;

/// A finite-source discrete-time queueing model of one shared bus.
///
/// # Examples
///
/// ```
/// use decache_analysis::QueueingModel;
/// use decache_bus::ServiceDiscipline;
///
/// // One processor, one-cycle service: every request is granted the
/// // cycle it is posted, so nothing ever waits.
/// let model = QueueingModel::new(1, 0.25, 1, ServiceDiscipline::Fcfs);
/// let p = model.predict();
/// assert!(p.mean_wait < 1e-9);
/// assert!((p.utilization - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingModel {
    /// Processors attached to this bus (`n`).
    pub sources: u32,
    /// Probability an idle (thinking) processor posts a request in a
    /// given cycle — the geometric think parameter.
    pub think_p: f64,
    /// Bus cycles one transaction's memory service takes (`T`).
    pub service_cycles: u32,
    /// The service discipline under prediction.
    pub discipline: ServiceDiscipline,
}

/// Stationary predictions from [`QueueingModel::predict`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingPrediction {
    /// Fraction of cycles the bus is busy (address + data phases under
    /// split; grant + held cycles otherwise).
    pub utilization: f64,
    /// Mean cycles from posting a request to its grant — the quantity
    /// the machine's bus-acquire histogram samples.
    pub mean_wait: f64,
    /// Transactions granted per cycle, whole bus.
    pub throughput: f64,
    /// Mean queue length at the start of a cycle.
    pub mean_queue: f64,
}

impl QueueingModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `think_p` is outside `[0, 1]`, or `sources` or
    /// `service_cycles` is zero, or `service_cycles` exceeds 16 under
    /// the split discipline (the in-flight mask is `2^T` states).
    pub fn new(
        sources: u32,
        think_p: f64,
        service_cycles: u32,
        discipline: ServiceDiscipline,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&think_p),
            "think probability {think_p} outside [0, 1]"
        );
        assert!(sources > 0, "a queue needs at least one source");
        assert!(service_cycles > 0, "service takes at least one cycle");
        assert!(
            discipline != ServiceDiscipline::Split || service_cycles <= 16,
            "split chain limited to 16 service cycles, got {service_cycles}"
        );
        QueueingModel {
            sources,
            think_p,
            service_cycles,
            discipline,
        }
    }

    /// Solves the chain for its stationary distribution and derives
    /// utilization, mean acquire wait, and throughput.
    pub fn predict(&self) -> QueueingPrediction {
        match self.discipline {
            ServiceDiscipline::Split => self.predict_split(),
            _ => self.predict_held(),
        }
    }

    /// The held-bus chain: state `(q, f)` indexed `q * T + f`.
    fn predict_held(&self) -> QueueingPrediction {
        let n = self.sources as usize;
        let t = self.service_cycles as usize;
        let p = self.think_p;
        let states = (n + 1) * t;
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); states];
        for q in 0..=n {
            let arrivals = binomial_pmf(n - q, p);
            for f in 0..t {
                let row = &mut rows[q * t + f];
                for (k, &pk) in arrivals.iter().enumerate() {
                    if pk == 0.0 {
                        continue;
                    }
                    let backlog = q + k;
                    let to = if f > 0 {
                        // Held: arrivals accumulate, the hold drains.
                        (backlog, f - 1)
                    } else if backlog > 0 {
                        // Grant: one served now, bus held T - 1 more
                        // cycles (the grant cycle itself is the first
                        // of the T busy cycles).
                        (backlog - 1, t - 1)
                    } else {
                        (0, 0)
                    };
                    push(row, to.0 * t + to.1, pk);
                }
            }
        }
        let pi = stationary(&rows);

        let mut throughput = 0.0;
        let mut held = 0.0;
        let mut mean_queue = 0.0;
        for q in 0..=n {
            let miss_all = binomial_zero(n - q, p);
            for f in 0..t {
                let w = pi[q * t + f];
                mean_queue += w * q as f64;
                if f > 0 {
                    held += w;
                } else if q > 0 {
                    throughput += w;
                } else {
                    throughput += w * (1.0 - miss_all);
                }
            }
        }
        QueueingPrediction {
            utilization: held + throughput,
            mean_wait: ratio(mean_queue, throughput),
            throughput,
            mean_queue,
        }
    }

    /// The split chain: state `(q, mask)` restricted to the valid
    /// region `q + |mask| <= n` (a processor is thinking, queued, or
    /// in flight — never two at once).
    fn predict_split(&self) -> QueueingPrediction {
        let n = self.sources as usize;
        let t = self.service_cycles as usize;
        let p = self.think_p;
        let masks = 1usize << t;
        // Enumerate valid states; `index[q * masks + mask]` maps a
        // code to its dense row. The valid region is closed under the
        // transition function, so no target ever misses the map.
        let mut index = vec![usize::MAX; (n + 1) * masks];
        let mut states: Vec<(usize, usize)> = Vec::new();
        for q in 0..=n {
            for mask in 0..masks {
                if q + mask.count_ones() as usize <= n {
                    index[q * masks + mask] = states.len();
                    states.push((q, mask));
                }
            }
        }
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); states.len()];
        for (i, &(q, mask)) in states.iter().enumerate() {
            let in_flight = mask.count_ones() as usize;
            let arrivals = binomial_pmf(n - q - in_flight, p);
            let row = &mut rows[i];
            for (k, &pk) in arrivals.iter().enumerate() {
                if pk == 0.0 {
                    continue;
                }
                let backlog = q + k;
                let to = if mask & 1 == 1 {
                    // Data phase: due now, takes the bus with
                    // priority; its processor resumes thinking.
                    (backlog, (mask & !1) >> 1)
                } else if backlog > 0 {
                    // Address grant: the request leaves the queue
                    // for the in-flight set, due in T cycles.
                    (backlog - 1, (mask >> 1) | (1 << (t - 1)))
                } else {
                    (0, mask >> 1)
                };
                push(row, index[to.0 * masks + to.1], pk);
            }
        }
        let pi = stationary(&rows);

        let mut address_rate = 0.0;
        let mut data_rate = 0.0;
        let mut mean_queue = 0.0;
        for (i, &(q, mask)) in states.iter().enumerate() {
            let in_flight = mask.count_ones() as usize;
            let w = pi[i];
            mean_queue += w * q as f64;
            if mask & 1 == 1 {
                data_rate += w;
            } else if q > 0 {
                address_rate += w;
            } else {
                address_rate += w * (1.0 - binomial_zero(n - in_flight, p));
            }
        }
        QueueingPrediction {
            utilization: address_rate + data_rate,
            mean_wait: ratio(mean_queue, address_rate),
            throughput: address_rate,
            mean_queue,
        }
    }

    /// Bus cycles one transaction occupies under this discipline: `T`
    /// for bus-holding disciplines, 2 (address + data) for split.
    pub fn cycles_per_transaction(&self) -> f64 {
        match self.discipline {
            ServiceDiscipline::Split => 2.0,
            _ => f64::from(self.service_cycles),
        }
    }

    /// The infinite-source M/D/1 mean wait at this model's predicted
    /// load: `W = ρ·S / (2·(1 − ρ))` with `S` the bus occupancy per
    /// transaction. The finite-source exact value lies below this
    /// curve (a queued processor generates no further load); the gap
    /// closes as `sources` grows, which [`QueueingModel::predict`]
    /// quantifies.
    pub fn md1_wait(&self) -> f64 {
        let s = self.cycles_per_transaction();
        let rho = (self.predict().throughput * s).min(1.0);
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho * s / (2.0 * (1.0 - rho))
        }
    }

    /// Finds the think probability under which this chain's per-source
    /// throughput matches `rate` (transactions per cycle per source),
    /// by bisection — the calibration step that lets a *measured*
    /// request rate drive the prediction. Returns `None` if `rate`
    /// exceeds what even `think_p = 1` sustains.
    pub fn calibrate_think_p(
        sources: u32,
        service_cycles: u32,
        discipline: ServiceDiscipline,
        rate: f64,
    ) -> Option<f64> {
        assert!(rate >= 0.0, "negative request rate {rate}");
        if rate == 0.0 {
            return Some(0.0);
        }
        let per_source = |p: f64| {
            QueueingModel::new(sources, p, service_cycles, discipline)
                .predict()
                .throughput
                / f64::from(sources)
        };
        if per_source(1.0) < rate {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if per_source(mid) < rate {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some((lo + hi) / 2.0)
    }
}

impl fmt::Display for QueueingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.predict();
        write!(
            f,
            "{} n={} p={:.4} T={}: util={:.4} wait={:.3} thru={:.4}",
            self.discipline,
            self.sources,
            self.think_p,
            self.service_cycles,
            p.utilization,
            p.mean_wait,
            p.throughput
        )
    }
}

/// Accumulates `weight` onto `row[to]`, merging duplicate targets.
fn push(row: &mut Vec<(usize, f64)>, to: usize, weight: f64) {
    if let Some(entry) = row.iter_mut().find(|(j, _)| *j == to) {
        entry.1 += weight;
    } else {
        row.push((to, weight));
    }
}

/// `P(Binomial(n, p) = k)` for every `k`, computed by the stable
/// multiplicative recurrence.
fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    if p == 0.0 || n == 0 {
        let mut pmf = vec![0.0; n + 1];
        pmf[0] = 1.0;
        return pmf;
    }
    if p == 1.0 {
        let mut pmf = vec![0.0; n + 1];
        pmf[n] = 1.0;
        return pmf;
    }
    let mut pmf = Vec::with_capacity(n + 1);
    let mut term = (1.0 - p).powi(n as i32);
    pmf.push(term);
    for k in 1..=n {
        term *= (n - k + 1) as f64 / k as f64 * p / (1.0 - p);
        pmf.push(term);
    }
    pmf
}

/// `P(Binomial(n, p) = 0)`.
fn binomial_zero(n: usize, p: f64) -> f64 {
    (1.0 - p).powi(n as i32)
}

/// Stationary distribution of the sparse row-stochastic matrix, for
/// the recurrent class reached from state 0 — the machine starts with
/// an empty queue, and restricting to its reachable set keeps the
/// balance system nonsingular even when degenerate parameters (e.g.
/// `p = 1`) split the full space into several closed classes.
fn stationary(rows: &[Vec<(usize, f64)>]) -> Vec<f64> {
    // Breadth-first reachability from state 0 over positive-probability
    // transitions.
    let total = rows.len();
    let mut reach = vec![false; total];
    let mut frontier = vec![0usize];
    reach[0] = true;
    while let Some(i) = frontier.pop() {
        for &(j, t) in &rows[i] {
            if t > 0.0 && !reach[j] {
                reach[j] = true;
                frontier.push(j);
            }
        }
    }
    let mut dense_of = vec![usize::MAX; total];
    let mut sparse_of = Vec::new();
    for (i, &r) in reach.iter().enumerate() {
        if r {
            dense_of[i] = sparse_of.len();
            sparse_of.push(i);
        }
    }
    let reduced: Vec<Vec<(usize, f64)>> = sparse_of
        .iter()
        .map(|&i| rows[i].iter().map(|&(j, t)| (dense_of[j], t)).collect())
        .collect();
    let solved = solve_balance(&reduced);
    let mut pi = vec![0.0; total];
    for (d, &i) in sparse_of.iter().enumerate() {
        pi[i] = solved[d];
    }
    pi
}

/// Solves `pi (P - I) = 0` with one balance equation (redundant by
/// column-sum zero) replaced by the normalization `sum(pi) = 1`, via
/// dense partial-pivot Gaussian elimination. Direct solution sidesteps
/// the slow mixing that defeats power iteration near saturation and is
/// indifferent to periodic chains.
fn solve_balance(rows: &[Vec<(usize, f64)>]) -> Vec<f64> {
    let n = rows.len();
    let mut a = vec![0.0f64; n * n];
    for (i, row) in rows.iter().enumerate() {
        for &(j, t) in row {
            a[j * n + i] += t;
        }
        a[i * n + i] -= 1.0;
    }
    let mut b = vec![0.0f64; n];
    a[(n - 1) * n..].fill(1.0);
    b[n - 1] = 1.0;
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r, &s| a[r * n + col].abs().total_cmp(&a[s * n + col].abs()))
            .expect("non-empty pivot range");
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        assert!(
            diag.abs() > 1e-300,
            "singular balance system at column {col}"
        );
        for r in (col + 1)..n {
            let factor = a[r * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[r * n + col] = 0.0;
            for j in (col + 1)..n {
                a[r * n + j] -= factor * a[col * n + j];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut pi = vec![0.0f64; n];
    for r in (0..n).rev() {
        let mut sum = b[r];
        for j in (r + 1)..n {
            sum -= a[r * n + j] * pi[j];
        }
        pi[r] = sum / a[r * n + r];
    }
    // Transient states solve to (tiny negative) zero; clean and
    // renormalize so downstream sums are exact probabilities.
    for x in pi.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    for x in pi.iter_mut() {
        *x /= total;
    }
    pi
}

/// `0/0 = 0` — an idle system has no waiters to average over.
fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_rng::Rng;

    const HELD: [ServiceDiscipline; 3] = [
        ServiceDiscipline::PerCycle,
        ServiceDiscipline::Fcfs,
        ServiceDiscipline::Batched,
    ];

    #[test]
    fn single_source_unit_service_never_waits() {
        for d in HELD {
            let p = QueueingModel::new(1, 0.3, 1, d).predict();
            assert!(p.mean_wait.abs() < 1e-9, "{d}: wait {}", p.mean_wait);
            assert!((p.utilization - 0.3).abs() < 1e-9);
            assert!((p.throughput - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn held_disciplines_share_one_queue_process() {
        let fcfs = QueueingModel::new(16, 0.05, 3, ServiceDiscipline::Fcfs).predict();
        for d in [ServiceDiscipline::PerCycle, ServiceDiscipline::Batched] {
            let other = QueueingModel::new(16, 0.05, 3, d).predict();
            assert!((fcfs.mean_wait - other.mean_wait).abs() < 1e-12);
            assert!((fcfs.utilization - other.utilization).abs() < 1e-12);
        }
    }

    #[test]
    fn work_conservation_ties_utilization_to_throughput() {
        for (n, p, t) in [(8, 0.05, 3), (32, 0.02, 5), (4, 0.5, 2)] {
            let m = QueueingModel::new(n, p, t, ServiceDiscipline::Fcfs);
            let pred = m.predict();
            assert!(
                (pred.utilization - pred.throughput * f64::from(t)).abs() < 1e-9,
                "busy cycles must equal transactions x T"
            );
            let s = QueueingModel::new(n, p, t, ServiceDiscipline::Split);
            let pred = s.predict();
            assert!(
                (pred.utilization - pred.throughput * 2.0).abs() < 1e-9,
                "split busy cycles must equal transactions x 2"
            );
        }
    }

    #[test]
    fn saturation_approaches_the_service_bound() {
        let held = QueueingModel::new(64, 0.9, 3, ServiceDiscipline::Fcfs).predict();
        assert!(held.utilization > 0.999);
        assert!((held.throughput - 1.0 / 3.0).abs() < 1e-3);
        let split = QueueingModel::new(64, 0.9, 3, ServiceDiscipline::Split).predict();
        assert!(split.utilization > 0.999);
        assert!((split.throughput - 0.5).abs() < 1e-3);
        // The paper-era motivation for split transactions: with T > 2
        // the bus stops being held across the memory access, so
        // saturated throughput rises.
        assert!(split.throughput > held.throughput);
    }

    #[test]
    fn wait_grows_with_load() {
        let mut last = -1.0;
        for p in [0.01, 0.05, 0.1, 0.3] {
            let pred = QueueingModel::new(16, p, 3, ServiceDiscipline::Fcfs).predict();
            assert!(pred.mean_wait > last, "wait must grow with think rate");
            last = pred.mean_wait;
        }
    }

    #[test]
    fn calibration_recovers_the_think_probability() {
        for d in [ServiceDiscipline::Fcfs, ServiceDiscipline::Split] {
            let truth = QueueingModel::new(12, 0.07, 3, d);
            let rate = truth.predict().throughput / 12.0;
            let p = QueueingModel::calibrate_think_p(12, 3, d, rate)
                .expect("rate sustained by construction");
            assert!((p - 0.07).abs() < 1e-6, "{d}: calibrated {p}");
        }
        assert_eq!(
            QueueingModel::calibrate_think_p(4, 3, ServiceDiscipline::Fcfs, 0.9),
            None,
            "no think rate sustains more than 1/T per bus"
        );
        assert_eq!(
            QueueingModel::calibrate_think_p(4, 3, ServiceDiscipline::Fcfs, 0.0),
            Some(0.0)
        );
    }

    #[test]
    fn md1_upper_bounds_the_finite_source_wait() {
        for n in [8u32, 32, 128] {
            let m = QueueingModel::new(n, 0.02, 3, ServiceDiscipline::Fcfs);
            let exact = m.predict().mean_wait;
            let md1 = m.md1_wait();
            assert!(
                md1 >= exact - 1e-9,
                "n={n}: M/D/1 {md1} below exact {exact}"
            );
        }
        // Hand value: rho = 0.5, S = 3 gives W = 0.5*3/(2*0.5) = 1.5.
        let m = QueueingModel::new(1, 1.0, 3, ServiceDiscipline::Fcfs);
        // One source at p=1 re-requests every cycle: grant at c, think
        // fails... p=1 issues at c+1, waits until c+3. Cycle length 3,
        // rho = 1.0 here, so use a constructed rho instead:
        let _ = m;
        let rho: f64 = 0.5;
        let s: f64 = 3.0;
        assert!((rho * s / (2.0 * (1.0 - rho)) - 1.5).abs() < 1e-12);
    }

    /// A direct Monte Carlo replica of the engine's cycle loop —
    /// issue phase then bus phase — as an independent witness that the
    /// chain's transition structure matches the machine's.
    fn monte_carlo(n: usize, p: f64, t: u64, split: bool, cycles: u64, seed: u64) -> (f64, f64) {
        let mut rng = Rng::from_seed(seed);
        // Per-PE state: None = thinking, Some(cycle) = queued since.
        let mut queued: Vec<Option<u64>> = vec![None; n];
        let mut in_flight: std::collections::VecDeque<(usize, u64)> =
            std::collections::VecDeque::new();
        let mut free_at = 0u64;
        let mut busy = 0u64;
        let mut waits = 0u64;
        let mut grants = 0u64;
        for cycle in 0..cycles {
            for (pe, state) in queued.iter_mut().enumerate() {
                let thinking = state.is_none() && !in_flight.iter().any(|&(f, _)| f == pe);
                if thinking && rng.gen_bool(p) {
                    *state = Some(cycle);
                }
            }
            if !split && cycle < free_at {
                busy += 1;
                continue;
            }
            if split {
                if let Some(&(pe, ready)) = in_flight.front() {
                    if ready <= cycle {
                        in_flight.pop_front();
                        let _ = pe;
                        busy += 1;
                        continue;
                    }
                }
            }
            // FCFS pick: fixed-priority picking would starve high PEs
            // under load, which biases mean wait per grant — none of
            // the real disciplines starve.
            let winner = (0..n)
                .filter(|&pe| queued[pe].is_some())
                .min_by_key(|&pe| (queued[pe].expect("filtered"), pe));
            if let Some(pe) = winner {
                let since = queued[pe].take().expect("winner is queued");
                waits += cycle - since;
                grants += 1;
                busy += 1;
                if split {
                    in_flight.push_back((pe, cycle + t));
                } else if t > 1 {
                    free_at = cycle + t;
                }
            }
        }
        (
            busy as f64 / cycles as f64,
            if grants == 0 {
                0.0
            } else {
                waits as f64 / grants as f64
            },
        )
    }

    #[test]
    fn monte_carlo_agrees_with_the_chain() {
        for (split, d) in [
            (false, ServiceDiscipline::Fcfs),
            (true, ServiceDiscipline::Split),
        ] {
            for (n, p) in [(8usize, 0.05), (16, 0.1)] {
                let model = QueueingModel::new(n as u32, p, 3, d).predict();
                let (util, wait) = monte_carlo(n, p, 3, split, 400_000, 0xDECAC4E);
                assert!(
                    (util - model.utilization).abs() < 0.01,
                    "{d} n={n} p={p}: sim util {util} vs model {}",
                    model.utilization
                );
                assert!(
                    (wait - model.mean_wait).abs() < 0.05 + model.mean_wait * 0.05,
                    "{d} n={n} p={p}: sim wait {wait} vs model {}",
                    model.mean_wait
                );
            }
        }
    }

    #[test]
    fn display_reports_the_prediction() {
        let text = QueueingModel::new(8, 0.05, 3, ServiceDiscipline::Fcfs).to_string();
        assert!(text.contains("n=8"));
        assert!(text.contains("util="));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_think_probability_panics() {
        let _ = QueueingModel::new(1, 1.5, 1, ServiceDiscipline::Fcfs);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_panics() {
        let _ = QueueingModel::new(0, 0.5, 1, ServiceDiscipline::Fcfs);
    }
}
