//! Minimal fixed-width plain-text tables for experiment output.

use std::fmt;

/// A plain-text table with a header row and fixed-width columns, used by
/// every experiment binary to print paper-style tables.
///
/// # Examples
///
/// ```
/// use decache_analysis::TextTable;
///
/// let mut t = TextTable::new(vec!["size", "miss %"]);
/// t.row(vec!["256".into(), "26.1".into()]);
/// let text = t.render();
/// assert!(text.contains("size"));
/// assert!(text.contains("26.1"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "longer"]);
        t.row(vec!["12345".into(), "x".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = TextTable::new(vec![]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
