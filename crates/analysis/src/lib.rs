//! # decache-analysis
//!
//! The paper's Section 7 analytics and the cross-protocol experiment
//! drivers, plus the plain-text table rendering shared by every
//! experiment binary.
//!
//! * [`SbbModel`] — the shared-bus bandwidth bound `SBB ≥ m·x/h`,
//!   including the paper's worked example (128 processors at 1 MACS and
//!   a 10% miss ratio need 12.8 MACS of bus bandwidth).
//! * [`SaturationSweep`] — drives simulated machines with growing
//!   processor counts until the single bus saturates, locating the knee
//!   the analytic model predicts.
//! * [`MultibusExperiment`] — Figure 7-1: the same workload on 1, 2, and
//!   4 interleaved shared buses, measuring how per-bus traffic divides.
//! * [`QueueingModel`] — exact finite-source discrete-time queueing
//!   predictions (utilization, mean bus-acquire wait) per service
//!   discipline, the analytic side of the `queueing_check` gate.
//! * [`ProtocolComparison`] — experiment E13: RB, RWB, write-once, and
//!   write-through on the same workload, the repository's headline
//!   "who wins" table.
//! * [`TextTable`] / [`TextChart`] — minimal fixed-width tables and
//!   ASCII bar charts for experiment output.
//! * [`par`] — the dependency-free parallel sweep harness every
//!   experiment driver fans its independent cases over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod chart;
mod compare;
mod multibus;
pub mod par;
mod queueing;
mod saturation;
mod table;

pub use bandwidth::SbbModel;
pub use chart::TextChart;
pub use compare::{ProtocolComparison, ProtocolRow};
pub use multibus::{MultibusExperiment, MultibusRow};
pub use queueing::{QueueingModel, QueueingPrediction};
pub use saturation::{SaturationPoint, SaturationSweep};
pub use table::TextTable;
