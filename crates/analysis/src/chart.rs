//! Minimal ASCII bar charts for sweep output.

use std::fmt;

/// A horizontal ASCII bar chart: one labelled bar per data point, scaled
/// to a fixed width. Used by the sweep binaries to make the "shape" of
/// a result visible in plain terminal output.
///
/// # Examples
///
/// ```
/// use decache_analysis::TextChart;
///
/// let mut chart = TextChart::new("bus utilization", 20);
/// chart.bar("1 PE", 0.19);
/// chart.bar("32 PEs", 0.997);
/// let text = chart.render();
/// assert!(text.contains("bus utilization"));
/// assert!(text.contains("1 PE"));
/// ```
#[derive(Debug, Clone)]
pub struct TextChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl TextChart {
    /// Creates a chart with a title and a maximum bar width in
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(title: impl Into<String>, width: usize) -> Self {
        assert!(width > 0, "a chart needs at least one column");
        TextChart {
            title: title.into(),
            width,
            bars: Vec::new(),
        }
    }

    /// Appends a labelled bar. Negative values are clamped to zero.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// The number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Returns `true` if the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Renders the chart: bars scale so the maximum value fills the
    /// width.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_width = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let filled = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {label:<label_width$}  {}{} {value:.3}\n",
                "#".repeat(filled),
                " ".repeat(self.width - filled.min(self.width)),
            ));
        }
        out
    }
}

impl fmt::Display for TextChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut c = TextChart::new("t", 10);
        c.bar("half", 0.5).bar("full", 1.0);
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |s: &str| s.matches('#').count();
        assert_eq!(hashes(lines[2]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn zero_and_negative_values_render_empty_bars() {
        let mut c = TextChart::new("t", 8);
        c.bar("zero", 0.0).bar("neg", -3.0);
        let text = c.render();
        assert!(!text.contains('#'));
    }

    #[test]
    fn labels_align() {
        let mut c = TextChart::new("t", 4);
        c.bar("a", 1.0).bar("longer", 1.0);
        let text = c.render();
        // Both bars start at the same column.
        let starts: Vec<usize> = text.lines().skip(1).map(|l| l.find('#').unwrap()).collect();
        assert_eq!(starts[0], starts[1]);
    }

    #[test]
    fn len_and_empty() {
        let mut c = TextChart::new("t", 4);
        assert!(c.is_empty());
        c.bar("a", 1.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_width_panics() {
        let _ = TextChart::new("t", 0);
    }
}
