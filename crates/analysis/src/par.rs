//! A dependency-free parallel sweep harness.
//!
//! Every experiment in this workspace is a list of *independent*
//! simulated machines (one per protocol, PE count, bus shape, …) whose
//! results are rendered as a table in case order. [`run_cases`] fans
//! such a list over `std::thread::scope` workers and reassembles the
//! results **in input order**, so a ported experiment prints exactly
//! the bytes the sequential loop printed — only faster. Simulated
//! machines are deterministic (seeded in-tree RNG, no wall clock), so
//! parallel execution cannot perturb any measured statistic.
//!
//! Worker count defaults to the machine's available parallelism,
//! capped by the number of cases; `DECACHE_BENCH_THREADS` overrides it
//! (set it to `1` to force the sequential path, e.g. when timing the
//! simulator itself).
//!
//! [`supervise`] is the fault-tolerant generalization for long
//! campaigns: the same pool, but each case runs under a panic guard, a
//! per-case cycle budget, and a bounded retry policy, and the harness
//! returns a [`CaseOutcome`] per case instead of tearing the whole
//! sweep down when one case misbehaves.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The number of worker threads for `cases` cases: available
/// parallelism (or the `DECACHE_BENCH_THREADS` override), never more
/// than one per case.
fn thread_count(cases: usize) -> usize {
    let workers = match std::env::var("DECACHE_BENCH_THREADS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_BENCH_THREADS={v} is not a number")),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    };
    workers.clamp(1, cases.max(1))
}

/// Runs `run` over every case on a pool of scoped worker threads and
/// returns the results **in input order**. Cases are claimed from a
/// shared counter, so long and short cases balance across workers.
/// With one worker (single-core machine, one case, or
/// `DECACHE_BENCH_THREADS=1`) the cases run inline on the caller's
/// thread.
///
/// # Panics
///
/// If `run` panics for any case, the panic propagates to the caller
/// once all workers have stopped.
///
/// # Examples
///
/// ```
/// let squares = decache_analysis::par::run_cases(&[1, 2, 3], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn run_cases<T, R, F>(cases: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(cases.len());
    if threads <= 1 {
        return cases.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cases.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let result = run(case);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every case slot is filled before the scope ends")
        })
        .collect()
}

/// The supervision policy for a [`supervise`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    /// The per-case cycle budget handed to every attempt. A case that
    /// cannot finish within it reports [`CaseOutcome::TimedOut`]; since
    /// simulated machines are deterministic, budget exhaustion is a
    /// verdict, not a transient, and is **not** retried.
    pub cycle_budget: u64,
    /// How many times a *panicked* attempt is re-run (with the same
    /// case, hence the same seed) before the case is quarantined as
    /// [`CaseOutcome::Panicked`].
    pub max_retries: u32,
    /// The pause before the first retry; doubled per attempt.
    pub backoff: Duration,
    /// The ceiling the doubling backoff saturates at.
    pub backoff_cap: Duration,
}

impl Default for Supervisor {
    /// Ten million cycles (the budget the bench bins already pass to
    /// `run_to_completion`), two retries, 10 ms base backoff capped at
    /// 500 ms.
    fn default() -> Self {
        Supervisor {
            cycle_budget: 10_000_000,
            max_retries: 2,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl Supervisor {
    /// The pause before retry number `attempt` (1-based): the base
    /// backoff doubled per prior attempt, saturating at the cap.
    fn pause(&self, attempt: u32) -> Duration {
        let doubled = self
            .backoff
            .checked_mul(2u32.saturating_pow(attempt.saturating_sub(1)))
            .unwrap_or(self.backoff_cap);
        doubled.min(self.backoff_cap)
    }
}

/// What became of one case of a [`supervise`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome<R> {
    /// The case completed on its first attempt.
    Ok(R),
    /// The case completed, but only after retrying panicked attempts.
    Retried {
        /// The completed result.
        result: R,
        /// How many failed attempts preceded it.
        attempts: u32,
    },
    /// Every attempt panicked; the case is quarantined.
    Panicked {
        /// The final panic's payload, when it was a string.
        message: String,
    },
    /// The case did not finish within the supervisor's cycle budget.
    TimedOut {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl<R> CaseOutcome<R> {
    /// The completed result, if the case produced one.
    pub fn result(&self) -> Option<&R> {
        match self {
            CaseOutcome::Ok(r) | CaseOutcome::Retried { result: r, .. } => Some(r),
            CaseOutcome::Panicked { .. } | CaseOutcome::TimedOut { .. } => None,
        }
    }

    /// `true` iff the case produced a result (first try or retried).
    pub fn is_success(&self) -> bool {
        self.result().is_some()
    }
}

/// Renders a caught panic payload for [`CaseOutcome::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one case under the supervision policy: panic guard, cycle
/// budget, bounded seed-preserving retries with capped doubling
/// backoff.
fn run_supervised<T, R, F>(config: &Supervisor, case: &T, run: &F) -> CaseOutcome<R>
where
    F: Fn(&T, u64) -> Option<R>,
{
    let mut attempt = 0u32;
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| run(case, config.cycle_budget))) {
            Ok(Some(result)) => {
                return if attempt == 0 {
                    CaseOutcome::Ok(result)
                } else {
                    CaseOutcome::Retried {
                        result,
                        attempts: attempt,
                    }
                };
            }
            Ok(None) => {
                return CaseOutcome::TimedOut {
                    budget: config.cycle_budget,
                };
            }
            Err(payload) => {
                attempt += 1;
                if attempt > config.max_retries {
                    return CaseOutcome::Panicked {
                        message: panic_message(payload.as_ref()),
                    };
                }
                std::thread::sleep(config.pause(attempt));
            }
        }
    }
}

/// Runs `run` over every case on the same ordered worker pool as
/// [`run_cases`], but supervised: each attempt runs under a panic
/// guard, receives the supervisor's per-case cycle budget, and
/// panicked attempts are retried (same case, same seed) up to the
/// bounded retry limit with capped doubling backoff between attempts.
/// One misbehaving case is quarantined as its own
/// [`CaseOutcome::Panicked`] / [`CaseOutcome::TimedOut`] verdict;
/// every other case's result is exactly what the unsupervised pool
/// would have produced.
///
/// `run` receives the case and the cycle budget and returns `Some`
/// result, or `None` if the case could not complete within the budget
/// (e.g. `run_to_completion` hit its cycle cap).
///
/// # Examples
///
/// ```
/// use decache_analysis::par::{supervise, CaseOutcome, Supervisor};
///
/// let outcomes = supervise(&[1u64, 2, 3], &Supervisor::default(), |&x, budget| {
///     (x < budget).then_some(x * x)
/// });
/// assert_eq!(outcomes[1], CaseOutcome::Ok(4));
/// ```
pub fn supervise<T, R, F>(cases: &[T], config: &Supervisor, run: F) -> Vec<CaseOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> Option<R> + Sync,
{
    let threads = thread_count(cases.len());
    if threads <= 1 {
        return cases
            .iter()
            .map(|case| run_supervised(config, case, &run))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CaseOutcome<R>>>> =
        cases.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let outcome = run_supervised(config, case, &run);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every case slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let cases: Vec<usize> = (0..100).collect();
        // Uneven work so fast cases finish before slow earlier ones.
        let results = run_cases(&cases, |&i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i * 2
        });
        assert_eq!(results, cases.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_case_lists_work() {
        let none: Vec<u32> = run_cases(&[], |&x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(run_cases(&[5], |&x| x + 1), vec![6]);
    }

    #[test]
    fn captures_borrowed_state() {
        let offset = 10;
        let results = run_cases(&[1, 2, 3], |&x| x + offset);
        assert_eq!(results, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = run_cases(&[0, 1], |&x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }

    /// A deliberately panicking case is quarantined as its own
    /// [`CaseOutcome::Panicked`]; every other case's result is exactly
    /// what the unsupervised pool produces for the same work.
    #[test]
    fn panicking_case_is_quarantined_without_perturbing_others() {
        let cases: Vec<u64> = (0..16).collect();
        let work = |x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let config = Supervisor {
            max_retries: 0,
            backoff: Duration::ZERO,
            ..Supervisor::default()
        };
        let supervised = supervise(&cases, &config, |&x, _budget| {
            assert!(x != 11, "case 11 detonates");
            Some(work(x))
        });
        let unsupervised = run_cases(&cases, |&x| work(x));
        for (i, outcome) in supervised.iter().enumerate() {
            if i == 11 {
                let CaseOutcome::Panicked { message } = outcome else {
                    panic!("case 11 should be quarantined, got {outcome:?}");
                };
                assert!(message.contains("detonates"), "{message}");
            } else {
                assert_eq!(outcome, &CaseOutcome::Ok(unsupervised[i]));
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_a_timeout_verdict() {
        let config = Supervisor {
            cycle_budget: 100,
            ..Supervisor::default()
        };
        let outcomes = supervise(&[50u64, 200], &config, |&needs, budget| {
            (needs <= budget).then_some(needs)
        });
        assert_eq!(outcomes[0], CaseOutcome::Ok(50));
        assert_eq!(outcomes[1], CaseOutcome::TimedOut { budget: 100 });
    }

    #[test]
    fn transient_panics_are_retried_with_the_same_case() {
        use std::sync::atomic::AtomicU32;
        let flaky_attempts = AtomicU32::new(0);
        let config = Supervisor {
            max_retries: 3,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            ..Supervisor::default()
        };
        let outcomes = supervise(&[7u64, 8], &config, |&x, _budget| {
            if x == 8 && flaky_attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient");
            }
            Some(x * 10)
        });
        assert_eq!(outcomes[0], CaseOutcome::Ok(70));
        assert_eq!(
            outcomes[1],
            CaseOutcome::Retried {
                result: 80,
                attempts: 2
            }
        );
        assert!(outcomes[1].is_success());
        assert_eq!(outcomes[1].result(), Some(&80));
    }

    #[test]
    fn backoff_doubles_and_saturates_at_the_cap() {
        let config = Supervisor {
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(25),
            ..Supervisor::default()
        };
        assert_eq!(config.pause(1), Duration::from_millis(10));
        assert_eq!(config.pause(2), Duration::from_millis(20));
        assert_eq!(config.pause(3), Duration::from_millis(25));
        assert_eq!(config.pause(30), Duration::from_millis(25));
    }
}
