//! A dependency-free parallel sweep harness.
//!
//! Every experiment in this workspace is a list of *independent*
//! simulated machines (one per protocol, PE count, bus shape, …) whose
//! results are rendered as a table in case order. [`run_cases`] fans
//! such a list over `std::thread::scope` workers and reassembles the
//! results **in input order**, so a ported experiment prints exactly
//! the bytes the sequential loop printed — only faster. Simulated
//! machines are deterministic (seeded in-tree RNG, no wall clock), so
//! parallel execution cannot perturb any measured statistic.
//!
//! Worker count defaults to the machine's available parallelism,
//! capped by the number of cases; `DECACHE_BENCH_THREADS` overrides it
//! (set it to `1` to force the sequential path, e.g. when timing the
//! simulator itself).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads for `cases` cases: available
/// parallelism (or the `DECACHE_BENCH_THREADS` override), never more
/// than one per case.
fn thread_count(cases: usize) -> usize {
    let workers = match std::env::var("DECACHE_BENCH_THREADS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DECACHE_BENCH_THREADS={v} is not a number")),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    };
    workers.clamp(1, cases.max(1))
}

/// Runs `run` over every case on a pool of scoped worker threads and
/// returns the results **in input order**. Cases are claimed from a
/// shared counter, so long and short cases balance across workers.
/// With one worker (single-core machine, one case, or
/// `DECACHE_BENCH_THREADS=1`) the cases run inline on the caller's
/// thread.
///
/// # Panics
///
/// If `run` panics for any case, the panic propagates to the caller
/// once all workers have stopped.
///
/// # Examples
///
/// ```
/// let squares = decache_analysis::par::run_cases(&[1, 2, 3], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn run_cases<T, R, F>(cases: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(cases.len());
    if threads <= 1 {
        return cases.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cases.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let result = run(case);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every case slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let cases: Vec<usize> = (0..100).collect();
        // Uneven work so fast cases finish before slow earlier ones.
        let results = run_cases(&cases, |&i| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            i * 2
        });
        assert_eq!(results, cases.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_case_lists_work() {
        let none: Vec<u32> = run_cases(&[], |&x: &u32| x);
        assert!(none.is_empty());
        assert_eq!(run_cases(&[5], |&x| x + 1), vec![6]);
    }

    #[test]
    fn captures_borrowed_state() {
        let offset = 10;
        let results = run_cases(&[1, 2, 3], |&x| x + offset);
        assert_eq!(results, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = run_cases(&[0, 1], |&x| {
            if x == 1 {
                panic!("boom");
            }
            x
        });
    }
}
