//! The multiple-shared-bus experiment (Figure 7-1).

use crate::TextTable;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

/// One bus-count configuration's results.
#[derive(Debug, Clone, PartialEq)]
pub struct MultibusRow {
    /// Number of interleaved shared buses.
    pub buses: usize,
    /// Elapsed cycles to complete the workload.
    pub cycles: u64,
    /// Total transactions across all buses.
    pub total_transactions: u64,
    /// The busiest single bus's transaction count — the saturation
    /// metric.
    pub max_bus_transactions: u64,
    /// Each bus's share of the total traffic.
    pub shares: Vec<f64>,
}

impl MultibusRow {
    /// The busiest bus's fraction of total traffic; 1.0 for a single
    /// bus, ≈ `1/buses` for a well-balanced interleave.
    pub fn max_share(&self) -> f64 {
        self.shares.iter().copied().fold(0.0, f64::max)
    }
}

/// Runs the same workload on machines with 1, 2, and 4 interleaved
/// shared buses (least-significant-bit interleave, Figure 7-1),
/// measuring how the traffic divides: "each part of the divided cache
/// will generate, on average, half of the traffic" (Section 7).
///
/// # Examples
///
/// ```
/// use decache_analysis::MultibusExperiment;
///
/// let rows = MultibusExperiment::new(8).run();
/// // Two buses carry about half the single-bus per-bus load:
/// assert!(rows[1].max_share() < 0.65);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MultibusExperiment {
    pes: usize,
    protocol: ProtocolKind,
    config: MixConfig,
}

impl MultibusExperiment {
    /// Creates the experiment for `pes` processors under RWB.
    pub fn new(pes: usize) -> Self {
        MultibusExperiment {
            pes,
            protocol: ProtocolKind::Rwb,
            config: MixConfig::default(),
        }
    }

    /// Overrides the protocol.
    #[must_use]
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Overrides the workload mix.
    #[must_use]
    pub fn config(mut self, config: MixConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs 1-, 2-, and 4-bus machines (in parallel, rows in bus-count
    /// order).
    pub fn run(&self) -> Vec<MultibusRow> {
        crate::par::run_cases(&[1usize, 2, 4], |&b| self.run_with_buses(b))
    }

    /// Runs one machine with `buses` buses.
    ///
    /// # Panics
    ///
    /// Panics if `buses` is not a power of two.
    pub fn run_with_buses(&self, buses: usize) -> MultibusRow {
        let shared = AddrRange::with_len(Addr::new(0), 64);
        let config = self.config;
        let mut machine = MachineBuilder::new(self.protocol)
            .memory_words(1 << 14)
            .cache_lines(512)
            .buses(buses)
            .processors(self.pes, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            })
            .build();
        let cycles = machine.run_to_completion(100_000_000);
        let per_bus = machine.traffic_per_bus();
        MultibusRow {
            buses,
            cycles,
            total_transactions: per_bus.total().total_transactions(),
            max_bus_transactions: per_bus.max_bus_transactions(),
            shares: per_bus.shares(),
        }
    }

    /// Renders the experiment as a table.
    pub fn render(rows: &[MultibusRow]) -> String {
        let mut table = TextTable::new(vec![
            "buses",
            "cycles",
            "total tx",
            "busiest bus tx",
            "busiest share",
        ]);
        for r in rows {
            table.row(vec![
                r.buses.to_string(),
                r.cycles.to_string(),
                r.total_transactions.to_string(),
                r.max_bus_transactions.to_string(),
                format!("{:.1}%", r.max_share() * 100.0),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<MultibusRow> {
        MultibusExperiment::new(4)
            .config(MixConfig {
                ops_per_pe: 1_500,
                ..MixConfig::default()
            })
            .run()
    }

    #[test]
    fn traffic_splits_near_evenly_across_buses() {
        let rows = quick();
        assert_eq!(rows[0].shares, vec![1.0]);
        // Dual bus: each bus within [35%, 65%] of traffic.
        for share in &rows[1].shares {
            assert!((0.35..=0.65).contains(share), "dual-bus share {share}");
        }
        // Quad bus: each within [10%, 40%].
        for share in &rows[2].shares {
            assert!((0.10..=0.40).contains(share), "quad-bus share {share}");
        }
    }

    #[test]
    fn busiest_bus_load_falls_with_bus_count() {
        let rows = quick();
        assert!(rows[1].max_bus_transactions < rows[0].max_bus_transactions);
        assert!(rows[2].max_bus_transactions < rows[1].max_bus_transactions);
    }

    #[test]
    fn more_buses_do_not_slow_the_machine() {
        let rows = quick();
        // With parallel buses the machine finishes at least as fast.
        assert!(rows[1].cycles <= rows[0].cycles);
    }

    #[test]
    fn render_lists_all_configurations() {
        let text = MultibusExperiment::render(&quick());
        for b in ["1", "2", "4"] {
            assert!(text.contains(b));
        }
    }
}
