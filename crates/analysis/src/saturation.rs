//! Bus saturation sweep: the simulated counterpart of the SBB bound.

use crate::TextTable;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_workloads::{MixConfig, MixWorkload};

/// One processor-count point of a saturation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationPoint {
    /// Number of processors.
    pub pes: usize,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Bus utilization in `[0, 1]`.
    pub utilization: f64,
    /// Completed references per bus cycle across the machine — the
    /// throughput that stops scaling once the bus saturates.
    pub throughput: f64,
    /// Overall miss ratio (the `1/h` of the SBB bound, measured).
    pub miss_ratio: f64,
}

impl SaturationPoint {
    /// The SBB bound's prediction of utilization for this point:
    /// `min(1, pes · miss_ratio)` when each PE issues one reference per
    /// cycle (`x = 1` access per cycle in the model's units).
    pub fn predicted_utilization(&self) -> f64 {
        (self.pes as f64 * self.miss_ratio).min(1.0)
    }
}

/// Sweeps processor counts on a single shared bus and measures where
/// throughput stops scaling — the simulated version of Section 7's
/// `SBB >= m·x/h` argument: with miss ratio `1/h`, the bus saturates
/// near `m ≈ h` processors.
///
/// # Examples
///
/// ```
/// use decache_analysis::SaturationSweep;
///
/// let points = SaturationSweep::new(vec![1, 4, 16]).run();
/// assert_eq!(points.len(), 3);
/// // Utilization grows with processor count:
/// assert!(points[2].utilization > points[0].utilization);
/// ```
#[derive(Debug, Clone)]
pub struct SaturationSweep {
    pe_counts: Vec<usize>,
    protocol: ProtocolKind,
    config: MixConfig,
    buses: usize,
}

impl SaturationSweep {
    /// Creates a sweep over the given processor counts under RB.
    ///
    /// # Panics
    ///
    /// Panics if `pe_counts` is empty.
    pub fn new(pe_counts: Vec<usize>) -> Self {
        assert!(!pe_counts.is_empty(), "a sweep needs at least one point");
        SaturationSweep {
            pe_counts,
            protocol: ProtocolKind::Rb,
            config: MixConfig {
                ops_per_pe: 1_500,
                ..MixConfig::default()
            },
            buses: 1,
        }
    }

    /// Overrides the protocol.
    #[must_use]
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Overrides the workload mix.
    #[must_use]
    pub fn config(mut self, config: MixConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the bus count (to show multi-bus relief of saturation).
    #[must_use]
    pub fn buses(mut self, buses: usize) -> Self {
        self.buses = buses;
        self
    }

    /// Runs the sweep (points in parallel, results in input order).
    pub fn run(&self) -> Vec<SaturationPoint> {
        crate::par::run_cases(&self.pe_counts, |&m| self.run_one(m))
    }

    fn run_one(&self, pes: usize) -> SaturationPoint {
        let shared = AddrRange::with_len(Addr::new(0), 64);
        let config = self.config;
        let mut machine = MachineBuilder::new(self.protocol)
            .memory_words(1 << 16)
            .cache_lines(512)
            .buses(self.buses)
            .processors(pes, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            })
            .build();
        let cycles = machine.run_to_completion(1_000_000_000);
        let stats = machine.total_cache_stats();
        SaturationPoint {
            pes,
            cycles,
            utilization: machine.traffic().utilization(),
            throughput: stats.total_references() as f64 / cycles as f64,
            miss_ratio: stats.miss_ratio(),
        }
    }

    /// Renders the sweep as a table.
    pub fn render(points: &[SaturationPoint]) -> String {
        let mut table = TextTable::new(vec![
            "PEs",
            "cycles",
            "bus util",
            "refs/cycle",
            "miss ratio",
            "predicted util",
        ]);
        for p in points {
            table.row(vec![
                p.pes.to_string(),
                p.cycles.to_string(),
                format!("{:.1}%", p.utilization * 100.0),
                format!("{:.2}", p.throughput),
                format!("{:.1}%", p.miss_ratio * 100.0),
                format!("{:.1}%", p.predicted_utilization() * 100.0),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_rises_until_saturation() {
        let points = SaturationSweep::new(vec![1, 2, 8, 24]).run();
        assert!(points[0].utilization < points[2].utilization);
        // At 24 PEs with a ~5-10% miss ratio the single bus is near or
        // at saturation.
        assert!(
            points[3].utilization > 0.8,
            "util {}",
            points[3].utilization
        );
    }

    #[test]
    fn throughput_stops_scaling_at_saturation() {
        let points = SaturationSweep::new(vec![2, 32]).run();
        let per_pe_small = points[0].throughput / points[0].pes as f64;
        let per_pe_big = points[1].throughput / points[1].pes as f64;
        // Per-PE progress collapses once the bus is the bottleneck.
        assert!(per_pe_big < per_pe_small);
    }

    #[test]
    fn prediction_tracks_measurement_under_light_load() {
        let points = SaturationSweep::new(vec![2]).run();
        let p = points[0];
        // Under light load, measured utilization is within a factor ~2.5
        // of the SBB-style prediction (retries, TS, and write-backs add
        // traffic the simple model omits).
        assert!(
            p.utilization < p.predicted_utilization() * 2.5 + 0.1,
            "measured {} vs predicted {}",
            p.utilization,
            p.predicted_utilization()
        );
    }

    #[test]
    fn extra_buses_relieve_saturation() {
        let single = SaturationSweep::new(vec![24]).run();
        let dual = SaturationSweep::new(vec![24]).buses(2).run();
        assert!(dual[0].cycles <= single[0].cycles);
        assert!(dual[0].throughput >= single[0].throughput);
    }

    #[test]
    fn render_has_one_row_per_point() {
        let points = SaturationSweep::new(vec![1, 2]).run();
        let text = SaturationSweep::render(&points);
        assert_eq!(text.lines().count(), 2 + points.len());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_panics() {
        let _ = SaturationSweep::new(vec![]);
    }
}
