//! Protocol comparison on a common workload (experiment E13).

use crate::TextTable;
use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange};
use decache_telemetry::MetricsSnapshot;
use decache_workloads::{MixConfig, MixWorkload};
use std::fmt;

/// One protocol's results on the comparison workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolRow {
    /// The protocol.
    pub protocol: ProtocolKind,
    /// Elapsed bus cycles to complete the workload (lower = faster).
    pub cycles: u64,
    /// Total bus transactions.
    pub bus_transactions: u64,
    /// Overall cache hit ratio.
    pub hit_ratio: f64,
    /// Bus utilization over the run.
    pub utilization: f64,
    /// Reads completed by snooped broadcasts.
    pub broadcast_satisfied: u64,
}

impl ProtocolRow {
    /// Projects the comparison row out of a unified metrics snapshot
    /// (`kind` names the protocol the snapshot came from).
    pub fn from_snapshot(kind: ProtocolKind, snapshot: &MetricsSnapshot) -> Self {
        let bus = snapshot.bus_total();
        ProtocolRow {
            protocol: kind,
            cycles: snapshot.cycles,
            bus_transactions: bus.total_transactions(),
            hit_ratio: snapshot.cache_total().hit_ratio(),
            utilization: bus.utilization(),
            broadcast_satisfied: snapshot.machine.broadcast_satisfied,
        }
    }
}

/// Runs the same mixed workload (the paper's assumed reference pattern)
/// under every protocol and tabulates throughput, traffic, and hit
/// ratios — the quantitative version of the paper's qualitative claims
/// about dynamic classification and data broadcasting.
///
/// # Examples
///
/// ```
/// use decache_analysis::ProtocolComparison;
///
/// let rows = ProtocolComparison::new(4).run();
/// let traffic = |name: &str| rows.iter()
///     .find(|r| r.protocol.to_string() == name).unwrap().bus_transactions;
/// // Dynamic classification beats always-write-through:
/// assert!(traffic("RB") < traffic("write-through"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProtocolComparison {
    pes: usize,
    config: MixConfig,
    protocols: [ProtocolKind; 4],
}

impl ProtocolComparison {
    /// Creates the comparison for `pes` processors with the default mix.
    pub fn new(pes: usize) -> Self {
        ProtocolComparison {
            pes,
            config: MixConfig::default(),
            protocols: ProtocolKind::ALL,
        }
    }

    /// Overrides the workload mix.
    #[must_use]
    pub fn config(mut self, config: MixConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs all protocols (in parallel, one machine per worker) and
    /// returns one row each, in protocol order.
    pub fn run(&self) -> Vec<ProtocolRow> {
        crate::par::run_cases(&self.protocols, |&kind| self.run_one(kind))
    }

    /// Runs a single protocol.
    pub fn run_one(&self, kind: ProtocolKind) -> ProtocolRow {
        ProtocolRow::from_snapshot(kind, &self.snapshot_one(kind))
    }

    /// Runs a single protocol and returns the full unified metrics
    /// snapshot (telemetry enabled, so the cycle-attribution histograms
    /// populate); [`ProtocolRow`] is a projection of it.
    pub fn snapshot_one(&self, kind: ProtocolKind) -> MetricsSnapshot {
        let shared = AddrRange::with_len(Addr::new(0), 64);
        let config = self.config;
        let mut machine = MachineBuilder::new(kind)
            .memory_words(1 << 14)
            .cache_lines(512)
            .telemetry()
            .processors(self.pes, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            })
            .build();
        machine.run_to_completion(100_000_000);
        MetricsSnapshot::from_machine(&machine)
    }

    /// Renders the comparison as a table.
    pub fn render(rows: &[ProtocolRow]) -> String {
        let mut table = TextTable::new(vec![
            "protocol",
            "cycles",
            "bus transactions",
            "hit ratio",
            "bus util",
            "bcast-satisfied",
        ]);
        for r in rows {
            table.row(vec![
                r.protocol.to_string(),
                r.cycles.to_string(),
                r.bus_transactions.to_string(),
                format!("{:.1}%", r.hit_ratio * 100.0),
                format!("{:.1}%", r.utilization * 100.0),
                r.broadcast_satisfied.to_string(),
            ]);
        }
        table.render()
    }
}

impl fmt::Display for ProtocolRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles, {} transactions, {:.1}% hits",
            self.protocol,
            self.cycles,
            self.bus_transactions,
            self.hit_ratio * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<ProtocolRow> {
        ProtocolComparison::new(4)
            .config(MixConfig {
                ops_per_pe: 1_500,
                ..MixConfig::default()
            })
            .run()
    }

    #[test]
    fn produces_one_row_per_protocol() {
        let rows = quick();
        assert_eq!(rows.len(), 4);
        let names: Vec<String> = rows.iter().map(|r| r.protocol.to_string()).collect();
        assert!(names.contains(&"RB".to_owned()));
        assert!(names.contains(&"write-through".to_owned()));
    }

    #[test]
    fn paper_schemes_beat_write_through_on_traffic_and_cycles() {
        let rows = quick();
        let get = |name: &str| {
            *rows
                .iter()
                .find(|r| r.protocol.to_string() == name)
                .unwrap()
        };
        let rb = get("RB");
        let rwb = get("RWB");
        let wt = get("write-through");
        assert!(rb.bus_transactions < wt.bus_transactions);
        assert!(rwb.bus_transactions < wt.bus_transactions);
        assert!(rb.cycles < wt.cycles);
        assert!(rb.hit_ratio > wt.hit_ratio);
    }

    #[test]
    fn render_contains_all_protocols() {
        let rows = quick();
        let text = ProtocolComparison::render(&rows);
        for r in &rows {
            assert!(text.contains(&r.protocol.to_string()));
        }
    }
}
