//! Seeded randomized tests for the workload generators running on real
//! machines.

use decache_core::ProtocolKind;
use decache_machine::MachineBuilder;
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::testing::check;
use decache_workloads::{ArrayInit, MatVec, MatVecLayout, ProducerConsumer};

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Rb,
    ProtocolKind::Rwb,
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// Matrix–vector products are arithmetically correct on random matrices
/// under every protocol and worker count.
#[test]
fn matvec_is_correct_on_random_inputs() {
    check("matvec_is_correct_on_random_inputs", 6, |rng| {
        let rows = rng.gen_range(1u64..8);
        let cols = rng.gen_range(1u64..8);
        let workers = rng.gen_range(1u64..5);
        let layout = MatVecLayout::new(Addr::new(0), rows, cols);
        let matrix: Vec<u64> = (0..rows * cols).map(|_| rng.gen_range(0u64..50)).collect();
        let input: Vec<u64> = (0..cols).map(|_| rng.gen_range(0u64..50)).collect();
        let expected = layout.expected(&matrix, &input);

        for kind in PROTOCOLS {
            let mut builder = MachineBuilder::new(kind);
            builder
                .memory_words(layout.footprint().len().next_power_of_two().max(64))
                .cache_lines(32)
                .initialize_memory(
                    layout.matrix,
                    &matrix.iter().map(|&v| Word::new(v)).collect::<Vec<_>>(),
                )
                .initialize_memory(
                    layout.input,
                    &input.iter().map(|&v| Word::new(v)).collect::<Vec<_>>(),
                );
            builder.processors(workers as usize, |pe| {
                Box::new(MatVec::new(layout, pe as u64, workers))
            });
            let mut machine = builder.build();
            assert!(machine.run(10_000_000), "{kind} did not finish");

            for r in 0..rows {
                let addr = layout.output.offset(r);
                let snap = machine.snapshot(addr);
                let latest = (0..workers as usize)
                    .find_map(|pe| {
                        machine
                            .cache_line(pe, addr)
                            .filter(|(s, _)| s.owns_latest())
                            .map(|(_, d)| d)
                    })
                    .unwrap_or(snap.memory());
                assert_eq!(latest.value(), expected[r as usize], "{kind} row {r}");
            }
        }
    });
}

/// Array initialization leaves every element's latest value equal to
/// its index, for any array/cache size combination.
#[test]
fn array_init_writes_every_element() {
    check("array_init_writes_every_element", 8, |rng| {
        let len = rng.gen_range(1u64..96);
        let cache_log2 = rng.gen_range(2u32..6);
        for kind in PROTOCOLS {
            let array = AddrRange::with_len(Addr::new(0), len);
            let mut machine = MachineBuilder::new(kind)
                .memory_words(len.next_power_of_two().max(64))
                .cache_lines(1 << cache_log2)
                .processor(Box::new(ArrayInit::new(array)))
                .build();
            assert!(machine.run(1_000_000));
            for i in 0..len {
                let addr = Addr::new(i);
                let snap = machine.snapshot(addr);
                let latest = machine
                    .cache_line(0, addr)
                    .filter(|(s, _)| s.owns_latest())
                    .map_or(snap.memory(), |(_, d)| d);
                assert_eq!(latest, Word::new(i), "{kind} element {i}");
            }
        }
    });
}

/// Producer/consumer always drains: the flag reaches the final round
/// and every consumer read a value the producer actually wrote.
#[test]
fn producer_consumer_always_drains() {
    check("producer_consumer_always_drains", 8, |rng| {
        let consumers = rng.gen_range(1usize..5);
        let rounds = rng.gen_range(1u64..5);
        let buffer_len = rng.gen_range(1u64..12);
        for kind in PROTOCOLS {
            let pc = ProducerConsumer::new(
                AddrRange::with_len(Addr::new(8), buffer_len),
                Addr::new(0),
                rounds,
            );
            let mut builder = MachineBuilder::new(kind);
            builder
                .memory_words(64)
                .cache_lines(32)
                .processor(pc.producer());
            for _ in 0..consumers {
                builder.processor(pc.consumer());
            }
            let mut machine = builder.build();
            assert!(machine.run(10_000_000), "{kind} stuck");
            assert_eq!(
                machine.memory().peek(Addr::new(0)).unwrap(),
                Word::new(rounds)
            );
        }
    });
}
