//! Golden-seed regression tests for the workload generators.
//!
//! Every generator in this crate is seeded through [`decache_rng`], so a
//! given seed must produce the same stream on every platform and in every
//! build forever. These tests pin the first few values of each stream;
//! they fail if the generator logic, its RNG consumption order, or the
//! RNG itself changes. That protects the determinism guarantee the
//! experiments rely on: figures regenerated from the same seed must not
//! drift between releases.
//!
//! If a deliberate generator change breaks one of these, regenerate the
//! constants and say so in the changelog — silent drift is the failure
//! mode these tests exist to catch.

use decache_cache::{AccessKind, RefClass};
use decache_machine::{Access, Poll, Processor};
use decache_mem::{Addr, AddrRange};
use decache_workloads::{CmStarApp, MixConfig, MixWorkload, StackProfile, StackStream};

/// First addresses of a seeded [`StackStream`] after a 4096-reference
/// prefill (the doc-example locality profile, seed 42).
#[test]
fn stack_stream_seed_42_is_pinned() {
    let profile = StackProfile::new(vec![(256, 0.30), (512, 0.25), (1024, 0.13), (2048, 0.07)]);
    let mut stream = StackStream::new(profile, Addr::new(0), 42);
    stream.prefill(4096);
    let addrs: Vec<u64> = (0..12).map(|_| stream.next_addr().index()).collect();
    assert_eq!(
        addrs,
        [126, 161, 4096, 945, 636, 108, 179, 202, 1940, 627, 468, 182]
    );
}

/// First classified references of the two fitted Cm* applications
/// (Table 1-1 inputs). The apps carry fixed internal seeds, so their
/// streams are fully pinned by construction.
#[test]
fn cmstar_reference_streams_are_pinned() {
    use AccessKind::{Read, Write};
    use RefClass::{Code, Local, Shared};

    let expect_a = [
        (Read, 119, Local),
        (Write, 2097156, Local),
        (Read, 8192, Code),
        (Read, 173, Code),
        (Read, 252, Code),
        (Read, 150, Code),
        (Read, 183, Code),
        (Read, 180, Code),
    ];
    let expect_b = [
        (Read, 69, Code),
        (Read, 1214, Code),
        (Read, 1048763, Shared),
        (Read, 175, Code),
        (Read, 731, Local),
        (Read, 4, Code),
        (Write, 1048669, Shared),
        (Read, 1049001, Shared),
    ];

    for (app, expect) in [
        (CmStarApp::application_a(), expect_a),
        (CmStarApp::application_b(), expect_b),
    ] {
        let refs = app.references(expect.len());
        let got: Vec<(AccessKind, u64, RefClass)> = refs
            .iter()
            .map(|r| (r.kind, r.addr.index(), r.class))
            .collect();
        assert_eq!(got, expect, "{}", app.name());
    }
}

fn mix_ops(pe: u64, n: usize) -> Vec<(char, u64, u64)> {
    let shared = AddrRange::with_len(Addr::new(0), 64);
    let mut workload = MixWorkload::new(MixConfig::default(), shared, pe);
    (0..n)
        .map(|_| match workload.next_op(None) {
            Poll::Op(op) => match op.access {
                Access::Read(a) => ('r', a.index(), 0),
                Access::Write(a, v) => ('w', a.index(), v.value()),
                Access::TestAndSet(a, v) => ('t', a.index(), v.value()),
            },
            other => panic!("expected an op, got {other:?}"),
        })
        .collect()
}

/// First ops of the mixed workload for two per-PE seeds. Distinct PEs
/// must produce distinct streams (per-PE seeding), and both must stay
/// byte-for-byte stable.
#[test]
fn mix_workload_per_pe_streams_are_pinned() {
    let expect_pe0 = [
        ('r', 1141, 0),
        ('r', 1144, 0),
        ('r', 1116, 0),
        ('r', 1113, 0),
        ('r', 1106, 0),
        ('r', 1127, 0),
        ('r', 6, 0),
        ('r', 1138, 0),
        ('r', 11, 0),
        ('w', 1146, 2560),
    ];
    let expect_pe1 = [
        ('r', 1346, 0),
        ('r', 1384, 0),
        ('r', 1392, 0),
        ('r', 1353, 0),
        ('r', 1583, 0),
        ('r', 8, 0),
        ('r', 1345, 0),
        ('r', 1362, 0),
        ('r', 1362, 0),
        ('r', 1511, 0),
    ];
    assert_eq!(mix_ops(0, 10), expect_pe0);
    assert_eq!(mix_ops(1, 10), expect_pe1);
    assert_ne!(mix_ops(2, 10), mix_ops(3, 10), "per-PE seeding must differ");
}
