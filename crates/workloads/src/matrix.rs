//! A parallel matrix–vector kernel: the read-only-sharing workload the
//! paper's traffic assumptions are built on.
//!
//! "References to local data and to read-only shared data are more
//! frequent than to read/write shared data" (Section 2, assumption 2).
//! A dense `y = M·x` is the archetype: the matrix and input vector are
//! read-only shared (every processor streams them), and each processor
//! writes only its own slice of the output — data the dynamic schemes
//! classify as local without any programmer tagging.

use decache_cache::RefClass;
use decache_machine::{MemOp, OpResult, Poll, Processor};
use decache_mem::{Addr, AddrRange, Word};

/// The shared-memory layout of a [`MatVec`] problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatVecLayout {
    /// Number of matrix rows (= output length).
    pub rows: u64,
    /// Number of matrix columns (= input length).
    pub cols: u64,
    /// Base of the row-major matrix (`rows * cols` words).
    pub matrix: Addr,
    /// Base of the input vector (`cols` words).
    pub input: Addr,
    /// Base of the output vector (`rows` words).
    pub output: Addr,
}

impl MatVecLayout {
    /// Lays the matrix, input, and output out consecutively from `base`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(base: Addr, rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "the matrix must be non-empty");
        let matrix = base;
        let input = matrix.offset(rows * cols);
        let output = input.offset(cols);
        MatVecLayout {
            rows,
            cols,
            matrix,
            input,
            output,
        }
    }

    /// The address of element `M[row, col]`.
    pub fn element(&self, row: u64, col: u64) -> Addr {
        self.matrix.offset(row * self.cols + col)
    }

    /// The full footprint (matrix + input + output) as a range.
    pub fn footprint(&self) -> AddrRange {
        AddrRange::new(self.matrix, self.output.offset(self.rows))
    }

    /// The reference `y = M·x` computed on flat slices, for verification.
    pub fn expected(&self, matrix: &[u64], input: &[u64]) -> Vec<u64> {
        assert_eq!(matrix.len() as u64, self.rows * self.cols);
        assert_eq!(input.len() as u64, self.cols);
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| matrix[(r * self.cols + c) as usize].wrapping_mul(input[c as usize]))
                    .fold(0u64, u64::wrapping_add)
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    ReadElement,
    ReadInput,
    WriteResult,
    Finished,
}

/// One worker of a row-partitioned matrix–vector product: computes
/// `y[r] = Σ M[r,c]·x[c]` for every row `r ≡ worker (mod workers)`.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, Word};
/// use decache_workloads::{MatVec, MatVecLayout};
///
/// let layout = MatVecLayout::new(Addr::new(0), 4, 4);
/// let matrix: Vec<u64> = (1..=16).collect();
/// let input = vec![1, 2, 3, 4];
/// let mut builder = MachineBuilder::new(ProtocolKind::Rb);
/// builder.memory_words(64);
/// builder.initialize_memory(layout.matrix, &matrix.iter().map(|&v| Word::new(v)).collect::<Vec<_>>());
/// builder.initialize_memory(layout.input, &input.iter().map(|&v| Word::new(v)).collect::<Vec<_>>());
/// builder.processors(2, |pe| Box::new(MatVec::new(layout, pe as u64, 2)));
/// let mut machine = builder.build();
/// machine.run_to_completion(100_000);
/// let expected = layout.expected(&matrix, &input);
/// for r in 0..4u64 {
///     assert_eq!(machine.memory().peek(layout.output.offset(r)).unwrap().value(), expected[r as usize]);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MatVec {
    layout: MatVecLayout,
    workers: u64,
    row: u64,
    col: u64,
    accumulator: u64,
    element: u64,
    phase: Phase,
}

impl MatVec {
    /// Creates worker `worker` of `workers` over `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`.
    pub fn new(layout: MatVecLayout, worker: u64, workers: u64) -> Self {
        assert!(
            worker < workers,
            "worker {worker} out of range for {workers} workers"
        );
        let row = worker;
        MatVec {
            layout,
            workers,
            row,
            col: 0,
            accumulator: 0,
            element: 0,
            phase: if row < layout.rows {
                Phase::ReadElement
            } else {
                Phase::Finished
            },
        }
    }

    fn advance_row(&mut self) {
        self.row += self.workers;
        self.col = 0;
        self.accumulator = 0;
        self.phase = if self.row < self.layout.rows {
            Phase::ReadElement
        } else {
            Phase::Finished
        };
    }
}

impl Processor for MatVec {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        match self.phase {
            Phase::Finished => Poll::Halt,

            Phase::ReadElement => {
                // Issue the matrix-element read; the value arrives with
                // the next poll.
                self.phase = Phase::ReadInput;
                Poll::Op(
                    MemOp::read(self.layout.element(self.row, self.col))
                        .with_class(RefClass::Shared),
                )
            }

            Phase::ReadInput => {
                let Some(OpResult::Read(m)) = last else {
                    unreachable!("matrix element read must return a value")
                };
                self.element = m.value();
                self.phase = Phase::WriteResult;
                Poll::Op(
                    MemOp::read(self.layout.input.offset(self.col)).with_class(RefClass::Shared),
                )
            }

            Phase::WriteResult => {
                let Some(OpResult::Read(x)) = last else {
                    unreachable!("input element read must return a value")
                };
                self.accumulator = self
                    .accumulator
                    .wrapping_add(self.element.wrapping_mul(x.value()));
                self.col += 1;
                if self.col < self.layout.cols {
                    self.phase = Phase::ReadInput;
                    // Next matrix element; mirror ReadElement inline.
                    return Poll::Op(
                        MemOp::read(self.layout.element(self.row, self.col))
                            .with_class(RefClass::Shared),
                    );
                }
                // Row done: store y[row] (local to this worker).
                let out = self.layout.output.offset(self.row);
                let value = Word::new(self.accumulator);
                self.advance_row();
                Poll::Op(MemOp::write(out, value).with_class(RefClass::Local))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;

    fn words(values: &[u64]) -> Vec<Word> {
        values.iter().map(|&v| Word::new(v)).collect()
    }

    fn run(
        kind: ProtocolKind,
        rows: u64,
        cols: u64,
        workers: u64,
    ) -> (MatVecLayout, Vec<u64>, decache_machine::Machine) {
        let layout = MatVecLayout::new(Addr::new(0), rows, cols);
        let matrix: Vec<u64> = (0..rows * cols).map(|i| i % 7 + 1).collect();
        let input: Vec<u64> = (0..cols).map(|i| i + 1).collect();
        let mut builder = MachineBuilder::new(kind);
        builder
            .memory_words(layout.footprint().len().next_power_of_two().max(64))
            .cache_lines(64)
            .initialize_memory(layout.matrix, &words(&matrix))
            .initialize_memory(layout.input, &words(&input));
        builder.processors(workers as usize, |pe| {
            Box::new(MatVec::new(layout, pe as u64, workers))
        });
        let mut machine = builder.build();
        machine.run_to_completion(10_000_000);
        (layout, layout.expected(&matrix, &input), machine)
    }

    #[test]
    fn result_is_correct_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let (layout, expected, machine) = run(kind, 6, 5, 3);
            for r in 0..6u64 {
                // The output may still be cached as Local; take the
                // latest value.
                let addr = layout.output.offset(r);
                let snap = machine.snapshot(addr);
                let latest = (0..3)
                    .find_map(|pe| {
                        machine
                            .cache_line(pe, addr)
                            .filter(|(s, _)| s.owns_latest())
                            .map(|(_, d)| d)
                    })
                    .unwrap_or(snap.memory());
                assert_eq!(latest.value(), expected[r as usize], "{kind} row {r}");
            }
        }
    }

    #[test]
    fn shared_reads_dominate_the_reference_mix() {
        use decache_cache::{AccessKind, RefClass};
        let (_, _, machine) = run(ProtocolKind::Rb, 4, 4, 2);
        let stats = machine.total_cache_stats();
        let shared_reads = stats.hits(AccessKind::Read, RefClass::Shared)
            + stats.misses(AccessKind::Read, RefClass::Shared);
        let local_writes = stats.hits(AccessKind::Write, RefClass::Local)
            + stats.misses(AccessKind::Write, RefClass::Local);
        // 2 reads per element vs 1 write per row.
        assert_eq!(shared_reads, 2 * 16);
        assert_eq!(local_writes, 4);
    }

    #[test]
    fn read_only_sharing_caches_well_under_rb() {
        // The input vector is re-read per row: after the first row it
        // hits in every worker's cache.
        let (_, _, machine) = run(ProtocolKind::Rb, 8, 8, 2);
        let hit_ratio = machine.total_cache_stats().hit_ratio();
        assert!(hit_ratio > 0.3, "hit ratio {hit_ratio:.2}");
    }

    #[test]
    fn more_workers_than_rows_is_fine() {
        let (_, expected, machine) = run(ProtocolKind::Rwb, 2, 3, 4);
        let layout = MatVecLayout::new(Addr::new(0), 2, 3);
        for r in 0..2u64 {
            assert_eq!(
                machine
                    .memory()
                    .peek(layout.output.offset(r))
                    .unwrap()
                    .value(),
                expected[r as usize]
            );
        }
    }

    #[test]
    fn layout_addresses_do_not_overlap() {
        let l = MatVecLayout::new(Addr::new(100), 3, 4);
        assert_eq!(l.matrix, Addr::new(100));
        assert_eq!(l.input, Addr::new(112));
        assert_eq!(l.output, Addr::new(116));
        assert_eq!(l.footprint().len(), 12 + 4 + 3);
        assert_eq!(l.element(2, 3), Addr::new(111));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_out_of_range_panics() {
        let layout = MatVecLayout::new(Addr::new(0), 2, 2);
        let _ = MatVec::new(layout, 3, 3);
    }
}
