//! The two Cm* applications of Table 1-1, synthesized.

use crate::{Reference, StackProfile, StackStream};
use decache_cache::{AccessKind, CmStarCache, CmStarReport, RefClass};
use decache_mem::Addr;
use decache_rng::Rng;

/// The cache sizes of Table 1-1 ("Cache Size (set size 1 word)").
pub const CMSTAR_CACHE_SIZES: [usize; 4] = [256, 512, 1024, 2048];

/// A synthetic Cm* application: a reference mix plus a fitted locality
/// profile, substituting for Raskin's original traces.
///
/// Table 1-1's columns fix, per application, the fraction of references
/// that are **local writes** (8% / 6.7%) and **shared read/write**
/// (5% / 10%); the remaining references are cachable reads (code and
/// local data) whose miss ratio at each cache size is the table's "Read
/// Miss Ratio" column. The fitted [`StackProfile`] reproduces exactly
/// those read miss ratios, so running [`CmStarApp::run`] against the
/// emulation cache regenerates the table's *shape* (and, closely, its
/// values).
///
/// # Examples
///
/// ```
/// use decache_workloads::CmStarApp;
///
/// let report = CmStarApp::application_a().run(2048, 50_000);
/// // The shared column is workload-determined: ~5% for application A.
/// assert!((report.shared_pct - 5.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CmStarApp {
    name: &'static str,
    local_write_fraction: f64,
    shared_fraction: f64,
    profile: StackProfile,
    seed: u64,
}

impl CmStarApp {
    /// The first application of Table 1-1: 8% local writes, 5% shared
    /// references, read miss ratios 26.1 / 21.7 / 11.3 / 6.1 percent of
    /// all references at 256 / 512 / 1024 / 2048 words.
    pub fn application_a() -> Self {
        // The table reports read misses as a fraction of ALL references;
        // the stream's profile needs the miss ratio over cachable reads
        // only, so divide by the read fraction (1 - 0.08 - 0.05 = 0.87).
        let read_fraction = 1.0 - 0.08 - 0.05;
        CmStarApp {
            name: "application A",
            local_write_fraction: 0.08,
            shared_fraction: 0.05,
            // Profile points are the table's read-miss targets divided
            // by the read fraction, minus a one-iteration calibration
            // correction for the (small-cache) pollution of local-write
            // lines and reference interleaving, measured against the
            // emulation cache itself.
            profile: StackProfile::new(vec![
                (256, (0.261 - 0.034) / read_fraction),
                (512, (0.217 - 0.001) / read_fraction),
                (1024, (0.113 - 0.001) / read_fraction),
                (2048, (0.061 - 0.002) / read_fraction),
            ]),
            seed: 0xA,
        }
    }

    /// The second application of Table 1-1: 6.7% local writes, 10%
    /// shared references, read miss ratios 25 / 28.8 / 10.8 / 5.8
    /// percent.
    ///
    /// (The table's 512-word read-miss entry, 28.8, exceeds its 256-word
    /// entry, 25 — almost certainly a typo in the original; monotone
    /// fitting uses 23.8, which preserves the column's shape.)
    pub fn application_b() -> Self {
        let read_fraction = 1.0 - 0.067 - 0.10;
        CmStarApp {
            name: "application B",
            local_write_fraction: 0.067,
            shared_fraction: 0.10,
            // Monotonicity of the stack profile bounds how far the
            // 256/512 points can be corrected independently; the residual
            // error stays within ~1.5 points of the table.
            profile: StackProfile::new(vec![
                (256, (0.25 - 0.020) / read_fraction),
                (512, (0.238 - 0.016) / read_fraction),
                (1024, (0.108 - 0.004) / read_fraction),
                (2048, (0.058 - 0.004) / read_fraction),
            ]),
            seed: 0xB,
        }
    }

    /// The application's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Generates `n` classified references.
    pub fn references(&self, n: usize) -> Vec<Reference> {
        let mut rng = Rng::from_seed(self.seed);
        // Cachable reads (code + local data) live in one region with the
        // fitted locality; shared data in a disjoint region; local
        // writes go to a small private region (they miss regardless —
        // write-through — so their locality is irrelevant).
        let mut cachable = StackStream::new(self.profile.clone(), Addr::new(0), self.seed ^ 7);
        // Pre-populate the reuse stack so large-distance samples resolve
        // from the start (a stand-in for the long execution preceding
        // Raskin's measurement window).
        cachable.prefill(4 * 2048);
        let shared_base = 1 << 20;
        let private_base = 1 << 21;

        (0..n)
            .map(|_| {
                let u = rng.next_f64();
                if u < self.shared_fraction {
                    // Shared read/write data: reads and writes 2:1.
                    let kind = if rng.gen_range(0u64..3) < 2 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    };
                    Reference {
                        kind,
                        addr: Addr::new(shared_base + rng.gen_range(0u64..512)),
                        class: RefClass::Shared,
                    }
                } else if u < self.shared_fraction + self.local_write_fraction {
                    // A small write working set: local writes are
                    // write-through (always misses), so their only cache
                    // effect is the lines they allocate — keep that
                    // pollution small so the read profile stays
                    // calibrated.
                    Reference {
                        kind: AccessKind::Write,
                        addr: Addr::new(private_base + rng.gen_range(0u64..16)),
                        class: RefClass::Local,
                    }
                } else {
                    // Cachable read; code vs local read split 3:1 (code
                    // dominates: "most references are to read-only
                    // data").
                    let class = if rng.gen_range(0u64..4) < 3 {
                        RefClass::Code
                    } else {
                        RefClass::Local
                    };
                    Reference {
                        kind: AccessKind::Read,
                        addr: cachable.next_addr(),
                        class,
                    }
                }
            })
            .collect()
    }

    /// Runs `n` references through a Cm*-style emulation cache of
    /// `cache_size` words and reports the Table 1-1 row.
    pub fn run(&self, cache_size: usize, n: usize) -> CmStarReport {
        self.run_on(&mut CmStarCache::fully_associative(cache_size), n)
    }

    /// Like [`CmStarApp::run`] but on a direct-mapped cache, exposing
    /// the conflict misses a real direct-mapped array would add.
    pub fn run_direct_mapped(&self, cache_size: usize, n: usize) -> CmStarReport {
        self.run_on(&mut CmStarCache::new(cache_size), n)
    }

    fn run_on(&self, cache: &mut CmStarCache, n: usize) -> CmStarReport {
        // Fully-associative LRU matches the stack-distance calibration;
        // see `CmStarCache::fully_associative`. Warm the cache on an
        // unrecorded prefix so cold-start transients do not pollute the
        // measurement.
        let warmup = (cache.size() as usize * 4).max(10_000);
        let refs = self.references(warmup + n);
        for r in &refs[..warmup] {
            cache.access(r.addr, r.kind, r.class);
        }
        cache.reset_stats();
        for r in &refs[warmup..] {
            cache.access(r.addr, r.kind, r.class);
        }
        cache.report()
    }

    /// Runs the full Table 1-1 column set for this application.
    pub fn run_table(&self, n: usize) -> Vec<CmStarReport> {
        CMSTAR_CACHE_SIZES
            .iter()
            .map(|&size| self.run(size, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 40_000;

    #[test]
    fn application_a_matches_its_columns() {
        let app = CmStarApp::application_a();
        let report = app.run(2048, N);
        // Local writes and shared fractions are workload constants.
        assert!((report.local_write_pct - 8.0).abs() < 1.0, "{report:?}");
        assert!((report.shared_pct - 5.0).abs() < 1.0, "{report:?}");
        // Read miss ratio at the largest size: ~6.1% (conflict misses in
        // a direct-mapped cache push the measurement up slightly).
        assert!(
            (report.read_miss_pct - 6.1).abs() < 1.5,
            "read miss {:.1} vs table 6.1",
            report.read_miss_pct
        );
    }

    #[test]
    fn application_b_matches_its_columns() {
        let app = CmStarApp::application_b();
        let report = app.run(2048, N);
        assert!((report.local_write_pct - 6.7).abs() < 1.0, "{report:?}");
        assert!((report.shared_pct - 10.0).abs() < 1.5, "{report:?}");
        assert!(
            (report.read_miss_pct - 5.8).abs() < 1.5,
            "read miss {:.1} vs table 5.8",
            report.read_miss_pct
        );
    }

    #[test]
    fn read_miss_ratio_falls_with_cache_size() {
        // The table's headline shape: larger caches, fewer read misses,
        // while the local-write and shared columns stay flat.
        for app in [CmStarApp::application_a(), CmStarApp::application_b()] {
            let rows = app.run_table(N);
            assert_eq!(rows.len(), 4);
            assert!(
                rows[0].read_miss_pct > rows[3].read_miss_pct + 10.0,
                "{}: {:.1} -> {:.1}",
                app.name(),
                rows[0].read_miss_pct,
                rows[3].read_miss_pct
            );
            let spread = rows
                .iter()
                .map(|r| r.local_write_pct)
                .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(v), hi.max(v)));
            assert!(spread.1 - spread.0 < 1.0, "local writes should be flat");
        }
    }

    #[test]
    fn total_is_sum_of_columns() {
        let report = CmStarApp::application_a().run(512, 20_000);
        assert!(
            (report.read_miss_pct + report.local_write_pct + report.shared_pct
                - report.total_miss_pct)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn references_are_deterministic() {
        let app = CmStarApp::application_a();
        assert_eq!(app.references(100), app.references(100));
    }

    #[test]
    fn names() {
        assert_eq!(CmStarApp::application_a().name(), "application A");
        assert_eq!(CmStarApp::application_b().name(), "application B");
    }
}
