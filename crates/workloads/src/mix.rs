//! Parameterized mixed reference workloads for machine-level sweeps.

use decache_cache::RefClass;
use decache_machine::{MemOp, OpResult, Poll, Processor, ProcessorCheckpoint};
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::Rng;

/// The reference mix of a [`MixWorkload`], following the paper's traffic
/// assumptions (Section 2): reads dominate writes, and local/read-only
/// references dominate shared read/write ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixConfig {
    /// Fraction of references to shared read/write data (default 0.07,
    /// within the table's 5–10% band).
    pub shared_fraction: f64,
    /// Fraction of *shared* references that are writes (default 1/3).
    pub shared_write_fraction: f64,
    /// Fraction of *private* references that are writes (default 0.1 —
    /// "each data item is referenced more often with a read").
    pub local_write_fraction: f64,
    /// Number of references each processor issues.
    pub ops_per_pe: u64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            shared_fraction: 0.07,
            shared_write_fraction: 1.0 / 3.0,
            local_write_fraction: 0.1,
            ops_per_pe: 2_000,
        }
    }
}

/// A per-processor program issuing a pseudo-random classified mix over a
/// shared region and a per-PE private region; the workhorse of the
/// protocol-comparison (E13) and bus-saturation (Section 7) experiments.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, AddrRange};
/// use decache_workloads::{MixConfig, MixWorkload};
///
/// let shared = AddrRange::with_len(Addr::new(0), 64);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .memory_words(4096)
///     .processors(4, |pe| {
///         Box::new(MixWorkload::new(MixConfig::default(), shared, pe as u64))
///     })
///     .build();
/// machine.run_to_completion(10_000_000);
/// ```
#[derive(Debug)]
pub struct MixWorkload {
    config: MixConfig,
    shared: AddrRange,
    private: AddrRange,
    rng: Rng,
    issued: u64,
    counter: u64,
}

impl MixWorkload {
    /// Base address of the private regions (above it, PE `i` owns
    /// `[base + i*len, base + (i+1)*len)`). Offset past the shared
    /// region's cache lines so shared and private data do not thrash the
    /// same direct-mapped lines.
    const PRIVATE_BASE: u64 = 1088;
    /// Length of each PE's private region.
    const PRIVATE_LEN: u64 = 256;

    /// Creates the workload for PE index `pe` (which also seeds its
    /// generator, so machines are reproducible).
    pub fn new(config: MixConfig, shared: AddrRange, pe: u64) -> Self {
        let private = AddrRange::with_len(
            Addr::new(Self::PRIVATE_BASE + pe * Self::PRIVATE_LEN),
            Self::PRIVATE_LEN,
        );
        Self::with_private_region(config, shared, private, pe)
    }

    /// Creates the workload with an explicit private region — required
    /// on hierarchical machines, where each PE's private data must live
    /// inside its own cluster's region.
    pub fn with_private_region(
        config: MixConfig,
        shared: AddrRange,
        private: AddrRange,
        seed: u64,
    ) -> Self {
        MixWorkload {
            config,
            shared,
            private,
            rng: Rng::from_seed(0xD1CE ^ (seed << 32) ^ seed),
            issued: 0,
            counter: 0,
        }
    }

    fn pick(&mut self, region: AddrRange, hot: u64) -> Addr {
        // 80/20-style locality: most references hit a hot prefix.
        let len = region.len();
        let hot = hot.min(len);
        if self.rng.next_f64() < 0.8 {
            region.nth(self.rng.gen_range(0..hot))
        } else {
            region.nth(self.rng.gen_range(0..len))
        }
    }
}

impl Processor for MixWorkload {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        if self.issued >= self.config.ops_per_pe {
            return Poll::Halt;
        }
        self.issued += 1;
        self.counter += 1;
        let value = Word::new(self.counter << 8);

        let op = if self.rng.next_f64() < self.config.shared_fraction {
            let addr = self.pick(self.shared, 16);
            if self.rng.next_f64() < self.config.shared_write_fraction {
                MemOp::write(addr, value).with_class(RefClass::Shared)
            } else {
                MemOp::read(addr).with_class(RefClass::Shared)
            }
        } else {
            let addr = self.pick(self.private, 64);
            if self.rng.next_f64() < self.config.local_write_fraction {
                MemOp::write(addr, value).with_class(RefClass::Local)
            } else {
                MemOp::read(addr).with_class(RefClass::Local)
            }
        };
        Poll::Op(op)
    }

    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        let [s0, s1, s2, s3] = self.rng.state();
        Some(ProcessorCheckpoint::Custom {
            kind: "mix-workload".to_string(),
            words: vec![s0, s1, s2, s3, self.issued, self.counter],
        })
    }

    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        let ProcessorCheckpoint::Custom { kind, words } = state else {
            return Err(format!("mix workload given {state:?}"));
        };
        if kind != "mix-workload" {
            return Err(format!("mix workload given {kind} state"));
        }
        let [s0, s1, s2, s3, issued, counter] = words.as_slice() else {
            return Err(format!("mix workload expects 6 words, got {}", words.len()));
        };
        if [*s0, *s1, *s2, *s3] == [0; 4] {
            return Err("mix workload RNG state is all zeros".to_string());
        }
        self.rng = Rng::from_state([*s0, *s1, *s2, *s3]);
        self.issued = *issued;
        self.counter = *counter;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;

    fn run(kind: ProtocolKind, pes: usize) -> decache_machine::Machine {
        let shared = AddrRange::with_len(Addr::new(0), 64);
        let config = MixConfig {
            ops_per_pe: 4_000,
            ..MixConfig::default()
        };
        let mut machine = MachineBuilder::new(kind)
            .memory_words(16384)
            .cache_lines(512)
            .processors(pes, |pe| {
                Box::new(MixWorkload::new(config, shared, pe as u64))
            })
            .build();
        machine.run_to_completion(10_000_000);
        machine
    }

    #[test]
    fn completes_for_all_protocols() {
        for kind in ProtocolKind::ALL {
            let machine = run(kind, 4);
            assert_eq!(
                machine.total_cache_stats().total_references(),
                16_000,
                "{kind}"
            );
        }
    }

    #[test]
    fn hit_ratio_is_high_for_snooping_protocols() {
        // "Caches have routinely achieved hit ratios of about 95 percent"
        // for private data; with 7% shared traffic the overall ratio
        // stays well above write-through's.
        let rb = run(ProtocolKind::Rb, 4).total_cache_stats().hit_ratio();
        let wt = run(ProtocolKind::WriteThrough, 4)
            .total_cache_stats()
            .hit_ratio();
        assert!(rb > 0.84, "RB hit ratio {rb:.3}");
        assert!(rb > wt, "RB {rb:.3} should beat write-through {wt:.3}");
    }

    #[test]
    fn dynamic_classification_beats_baselines_on_bus_traffic() {
        let traffic = |kind| run(kind, 4).traffic().total_transactions();
        let rb = traffic(ProtocolKind::Rb);
        let rwb = traffic(ProtocolKind::Rwb);
        let wt = traffic(ProtocolKind::WriteThrough);
        // Write-through pays a bus write for every write reference; the
        // paper's schemes cache local writes silently.
        assert!(rb < wt, "RB {rb} should beat write-through {wt}");
        assert!(rwb < wt, "RWB {rwb} should beat write-through {wt}");
    }

    #[test]
    fn deterministic_per_pe_seed() {
        let a = run(ProtocolKind::Rb, 2).traffic().total_transactions();
        let b = run(ProtocolKind::Rb, 2).traffic().total_transactions();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_resumes_reference_stream_exactly() {
        let shared = AddrRange::with_len(Addr::new(0), 8);
        let mut w = MixWorkload::new(MixConfig::default(), shared, 3);
        for _ in 0..7 {
            w.next_op(None);
        }
        let state = Processor::checkpoint_state(&w).unwrap();
        let mut fresh = MixWorkload::new(MixConfig::default(), shared, 3);
        Processor::restore_state(&mut fresh, &state).unwrap();
        for _ in 0..50 {
            assert_eq!(fresh.next_op(None), w.next_op(None));
        }
        // Wrong kind and wrong arity are structured errors.
        assert!(Processor::restore_state(&mut fresh, &ProcessorCheckpoint::Stateless).is_err());
        assert!(Processor::restore_state(
            &mut fresh,
            &ProcessorCheckpoint::Custom {
                kind: "mix-workload".to_string(),
                words: vec![1, 2],
            }
        )
        .is_err());
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let w0 = MixWorkload::new(
            MixConfig::default(),
            AddrRange::with_len(Addr::new(0), 8),
            0,
        );
        let w1 = MixWorkload::new(
            MixConfig::default(),
            AddrRange::with_len(Addr::new(0), 8),
            1,
        );
        assert!(w0.private.end() <= w1.private.start());
    }
}
