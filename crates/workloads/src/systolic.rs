//! A systolic ring: the neighbour-to-neighbour pipeline of [RUD84].
//!
//! The paper's companion report ("Executing Systolic Arrays by MIMD
//! Multiprocessors", cited as [RUD84] and as the source of "further
//! examples of the RWB scheme") executes systolic algorithms on exactly
//! this class of machine. The communication skeleton is a ring of
//! single-writer/single-reader cells: stage `i` reads its input cell,
//! transforms the value, and writes its output cell, which is stage
//! `i+1`'s input. Each cell carries a sequence tag so a stage can spin
//! (in its cache!) until its input is fresh — the cyclic
//! write-then-read pattern Section 5 optimizes.

use decache_machine::{MemOp, OpResult, Poll, Processor};
use decache_mem::{Addr, Word};

/// How many low bits of a cell word carry the sequence tag.
const TAG_BITS: u64 = 16;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

/// Packs a payload and a sequence tag into one cell word.
fn pack(payload: u64, tag: u64) -> Word {
    Word::new((payload << TAG_BITS) | (tag & TAG_MASK))
}

fn unpack(word: Word) -> (u64, u64) {
    (word.value() >> TAG_BITS, word.value() & TAG_MASK)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Spinning on the input cell until its tag reaches the wanted round.
    AwaitInput,
    /// The output write is in flight.
    WriteOutput,
    Finished,
}

/// One stage of a systolic ring of `stages` processors pumping `rounds`
/// values around.
///
/// Stage 0 is the source: it injects a fresh value each round without
/// waiting. Every other stage waits for its input cell's tag, adds its
/// stage number to the payload, and forwards. After `rounds` full
/// circulations the ring drains.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::Addr;
/// use decache_workloads::SystolicStage;
///
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .memory_words(64)
///     .processors(4, |pe| Box::new(SystolicStage::new(Addr::new(0), pe, 4, 3)))
///     .build();
/// machine.run_to_completion(1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicStage {
    input: Addr,
    output: Addr,
    stage: usize,
    rounds_left: u64,
    round: u64,
    phase: Phase,
    forwarded: u64,
}

impl SystolicStage {
    /// Creates stage `stage` of a `stages`-long ring whose cells start
    /// at `cells_base` (one word per stage), pumping `rounds` values.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= stages` or `stages == 0`.
    pub fn new(cells_base: Addr, stage: usize, stages: usize, rounds: u64) -> Self {
        assert!(stages > 0, "a ring needs at least one stage");
        assert!(
            stage < stages,
            "stage {stage} out of range for {stages} stages"
        );
        let input = cells_base.offset(((stage + stages - 1) % stages) as u64);
        let output = cells_base.offset(stage as u64);
        SystolicStage {
            input,
            output,
            stage,
            rounds_left: rounds,
            round: 0,
            phase: if rounds == 0 {
                Phase::Finished
            } else {
                Phase::start(stage)
            },
            forwarded: 0,
        }
    }

    /// The number of values this stage has forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn emit(&mut self, payload: u64) -> Poll {
        self.round += 1;
        self.phase = Phase::WriteOutput;
        Poll::Op(MemOp::write(self.output, pack(payload, self.round)))
    }
}

impl Phase {
    fn start(stage: usize) -> Phase {
        if stage == 0 {
            // The source injects without waiting.
            Phase::WriteOutput
        } else {
            Phase::AwaitInput
        }
    }
}

impl Processor for SystolicStage {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        match self.phase {
            Phase::Finished => Poll::Halt,

            Phase::AwaitInput => match last {
                Some(OpResult::Read(w)) => {
                    let (payload, tag) = unpack(*w);
                    if tag > self.round {
                        // Fresh input: transform and forward.
                        self.forwarded += 1;
                        self.emit(payload + self.stage as u64)
                    } else {
                        Poll::Op(MemOp::read(self.input))
                    }
                }
                _ => Poll::Op(MemOp::read(self.input)),
            },

            Phase::WriteOutput => {
                if self.stage == 0 && self.round == 0 {
                    // First injection.
                    return self.emit(1);
                }
                match last {
                    Some(OpResult::Write) => {
                        self.rounds_left -= 1;
                        if self.rounds_left == 0 {
                            self.phase = Phase::Finished;
                            Poll::Halt
                        } else if self.stage == 0 {
                            // Source: inject the next value immediately.
                            self.emit(self.round + 1)
                        } else {
                            self.phase = Phase::AwaitInput;
                            Poll::Op(MemOp::read(self.input))
                        }
                    }
                    _ => self.emit(1),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;

    fn run(kind: ProtocolKind, stages: usize, rounds: u64) -> decache_machine::Machine {
        let base = Addr::new(0);
        let mut machine = MachineBuilder::new(kind)
            .memory_words(64)
            .cache_lines(32)
            .processors(stages, |pe| {
                Box::new(SystolicStage::new(base, pe, stages, rounds))
            })
            .build();
        machine.run_to_completion(10_000_000);
        machine
    }

    #[test]
    fn ring_drains_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let machine = run(kind, 4, 3);
            // The last stage's output cell carries the final round's tag.
            let snap = machine.snapshot(Addr::new(3));
            let latest = (0..4)
                .find_map(|pe| {
                    machine
                        .cache_line(pe, Addr::new(3))
                        .filter(|(s, _)| s.owns_latest())
                        .map(|(_, d)| d)
                })
                .unwrap_or(snap.memory());
            let (_, tag) = super::unpack(latest);
            assert_eq!(tag, 3, "{kind}");
        }
    }

    #[test]
    fn payload_accumulates_stage_numbers() {
        // One full circulation: source injects round r with payload r+? —
        // stage i adds i; after stages 1..3 of a 4-ring the payload of
        // round 1 is 1 + 1 + 2 + 3 = 7.
        let machine = run(ProtocolKind::Rb, 4, 1);
        let snap = machine.snapshot(Addr::new(3));
        let latest = (0..4)
            .find_map(|pe| {
                machine
                    .cache_line(pe, Addr::new(3))
                    .filter(|(s, _)| s.owns_latest())
                    .map(|(_, d)| d)
            })
            .unwrap_or(snap.memory());
        let (payload, tag) = super::unpack(latest);
        assert_eq!(tag, 1);
        assert_eq!(payload, 1 + 1 + 2 + 3);
    }

    #[test]
    fn rwb_pipelines_with_less_read_traffic_than_write_once() {
        let rwb = run(ProtocolKind::Rwb, 6, 4);
        let wo = run(ProtocolKind::WriteOnce, 6, 4);
        let reads = |m: &decache_machine::Machine| m.traffic().total_reads();
        assert!(
            reads(&rwb) < reads(&wo),
            "RWB {} should beat write-once {}",
            reads(&rwb),
            reads(&wo)
        );
    }

    #[test]
    fn spinning_stages_spin_in_cache() {
        // While waiting for input, a stage's repeated reads hit locally:
        // references far exceed bus transactions.
        let machine = run(ProtocolKind::Rwb, 4, 4);
        let refs = machine.total_cache_stats().total_references();
        let bus = machine.traffic().total_transactions();
        assert!(
            bus < refs,
            "spins must be cache-local: {bus} bus tx for {refs} refs"
        );
    }

    #[test]
    fn zero_rounds_halts() {
        let mut s = SystolicStage::new(Addr::new(0), 1, 4, 0);
        assert_eq!(s.next_op(None), Poll::Halt);
        assert_eq!(s.forwarded(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_out_of_range_panics() {
        let _ = SystolicStage::new(Addr::new(0), 4, 4, 1);
    }
}
