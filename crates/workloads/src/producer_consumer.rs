//! The cyclic-sharing workload of Section 5 (experiment E12).

use decache_machine::{MemOp, OpResult, Poll, Processor};
use decache_mem::{AddrRange, Word};

/// The producer/consumer roles of the cyclic sharing pattern: "many
/// shared variables tend to be referenced in the cyclical pattern:
/// written by some one PE and then read by others" (Section 5).
///
/// One PE produces a buffer of values and bumps a round flag; consumer
/// PEs spin on the flag, then read every buffer word. Under RWB the
/// producer's bus writes broadcast the new values into the consumers'
/// caches, so the consumers' reads all hit; under RB each consumer
/// refetches each word (mitigated by the read broadcast: the first
/// consumer's fetch refills the others).
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, AddrRange};
/// use decache_workloads::ProducerConsumer;
///
/// let pc = ProducerConsumer::new(AddrRange::with_len(Addr::new(8), 4), Addr::new(0), 2);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .memory_words(64)
///     .processor(pc.producer())
///     .processor(pc.consumer())
///     .processor(pc.consumer())
///     .build();
/// machine.run_to_completion(100_000);
/// ```
#[derive(Debug, Clone)]
pub struct ProducerConsumer {
    buffer: AddrRange,
    flag: decache_mem::Addr,
    rounds: u64,
}

impl ProducerConsumer {
    /// Creates the workload: `rounds` cycles over `buffer`, synchronized
    /// through `flag` (which must lie outside the buffer).
    ///
    /// # Panics
    ///
    /// Panics if the flag lies inside the buffer or the buffer is empty.
    pub fn new(buffer: AddrRange, flag: decache_mem::Addr, rounds: u64) -> Self {
        assert!(!buffer.contains(flag), "the flag must not alias the buffer");
        assert!(!buffer.is_empty(), "the buffer must be non-empty");
        ProducerConsumer {
            buffer,
            flag,
            rounds,
        }
    }

    /// Builds the producer program.
    pub fn producer(&self) -> Box<dyn Processor + Send> {
        Box::new(Producer {
            buffer: self.buffer,
            flag: self.flag,
            rounds_left: self.rounds,
            round: 0,
            index: 0,
        })
    }

    /// Builds a consumer program.
    pub fn consumer(&self) -> Box<dyn Processor + Send> {
        Box::new(Consumer {
            buffer: self.buffer,
            flag: self.flag,
            rounds_left: self.rounds,
            round: 0,
            state: ConsumerState::AwaitFlag,
            index: 0,
        })
    }
}

#[derive(Debug)]
struct Producer {
    buffer: AddrRange,
    flag: decache_mem::Addr,
    rounds_left: u64,
    round: u64,
    index: u64,
}

impl Processor for Producer {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        if self.rounds_left == 0 {
            return Poll::Halt;
        }
        if self.index < self.buffer.len() {
            // Value encodes (round, index) so consumers can verify it.
            let value = Word::new((self.round + 1) << 16 | self.index);
            let op = MemOp::write(self.buffer.nth(self.index), value);
            self.index += 1;
            Poll::Op(op)
        } else {
            // Publish the round.
            self.round += 1;
            self.rounds_left -= 1;
            self.index = 0;
            Poll::Op(MemOp::write(self.flag, Word::new(self.round)))
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConsumerState {
    AwaitFlag,
    Reading,
}

#[derive(Debug)]
struct Consumer {
    buffer: AddrRange,
    flag: decache_mem::Addr,
    rounds_left: u64,
    round: u64,
    state: ConsumerState,
    index: u64,
}

impl Processor for Consumer {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        if self.rounds_left == 0 {
            return Poll::Halt;
        }
        match self.state {
            ConsumerState::AwaitFlag => {
                if let Some(OpResult::Read(v)) = last {
                    if v.value() > self.round {
                        // New round published. The producer may have
                        // published several rounds since our last look;
                        // those buffers are already overwritten, so count
                        // the skipped rounds as consumed and read the
                        // latest contents (the one extra decrement
                        // happens when the read pass completes).
                        let skipped = v.value() - self.round - 1;
                        self.rounds_left = self.rounds_left.saturating_sub(skipped).max(1);
                        self.round = v.value();
                        self.state = ConsumerState::Reading;
                        self.index = 0;
                        return self.next_op(None);
                    }
                }
                Poll::Op(MemOp::read(self.flag))
            }
            ConsumerState::Reading => {
                if self.index < self.buffer.len() {
                    let op = MemOp::read(self.buffer.nth(self.index));
                    self.index += 1;
                    Poll::Op(op)
                } else {
                    self.rounds_left -= 1;
                    self.state = ConsumerState::AwaitFlag;
                    if self.rounds_left == 0 {
                        Poll::Halt
                    } else {
                        Poll::Op(MemOp::read(self.flag))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;
    use decache_mem::Addr;

    fn run(kind: ProtocolKind, consumers: usize, rounds: u64) -> decache_machine::Machine {
        let pc = ProducerConsumer::new(AddrRange::with_len(Addr::new(8), 8), Addr::new(0), rounds);
        let mut builder = MachineBuilder::new(kind);
        builder
            .memory_words(64)
            .cache_lines(32)
            .processor(pc.producer());
        for _ in 0..consumers {
            builder.processor(pc.consumer());
        }
        let mut machine = builder.build();
        machine.run_to_completion(1_000_000);
        machine
    }

    #[test]
    fn completes_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let machine = run(kind, 2, 2);
            // The flag reached the final round.
            assert_eq!(
                machine.memory().peek(Addr::new(0)).unwrap(),
                Word::new(2),
                "{kind}"
            );
        }
    }

    #[test]
    fn rwb_consumers_read_mostly_from_cache() {
        // After warmup, RWB write broadcasts refresh consumer caches in
        // place, so consumers generate almost no read traffic; RB
        // consumers must refetch after each invalidation.
        let rb = run(ProtocolKind::Rb, 2, 4);
        let rwb = run(ProtocolKind::Rwb, 2, 4);
        let reads = |m: &decache_machine::Machine| m.traffic().count(decache_bus::BusOpKind::Read);
        assert!(
            reads(&rwb) < reads(&rb),
            "RWB bus reads {} should be fewer than RB {}",
            reads(&rwb),
            reads(&rb)
        );
    }

    #[test]
    fn write_once_costs_more_reads_than_rb() {
        // Without the read broadcast, every consumer fetches separately.
        let rb = run(ProtocolKind::Rb, 3, 3);
        let wo = run(ProtocolKind::WriteOnce, 3, 3);
        let reads = |m: &decache_machine::Machine| m.traffic().count(decache_bus::BusOpKind::Read);
        assert!(
            reads(&wo) > reads(&rb),
            "write-once reads {} should exceed RB {}",
            reads(&wo),
            reads(&rb)
        );
    }

    #[test]
    #[should_panic(expected = "must not alias")]
    fn flag_inside_buffer_panics() {
        let _ = ProducerConsumer::new(AddrRange::with_len(Addr::new(0), 8), Addr::new(3), 1);
    }
}
