//! The array-initialization workload of Section 5 (experiment E11).

use decache_cache::RefClass;
use decache_machine::{MemOp, Poll, Processor};
use decache_mem::{AddrRange, Word};

/// Initializes a (cache-overflowing) array element by element, writing
/// each element `writes_per_element` times.
///
/// The paper's claim: "Consider the initialization of an array that is
/// much too large to fit in a cache. Under the RB scheme, there would be
/// two bus writes for each item; one for the first CPU write initializing
/// the element and one again later as a writeback when the address line
/// is reused. In RWB, there will be only one bus write per item"
/// (Section 5). The RB write-through puts each line in `L`, which must be
/// written back on the inevitable conflict eviction; the RWB write leaves
/// the line in `F`, memory already current, evicted silently.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, AddrRange};
/// use decache_workloads::ArrayInit;
///
/// let array = AddrRange::with_len(Addr::new(0), 64);
/// let mut rb = MachineBuilder::new(ProtocolKind::Rb)
///     .memory_words(128).cache_lines(16)
///     .processor(Box::new(ArrayInit::new(array)))
///     .build();
/// rb.run_to_completion(10_000);
/// // Every element reached memory:
/// assert_eq!(rb.memory().peek(Addr::new(63)).unwrap().value(), 63);
/// ```
#[derive(Debug, Clone)]
pub struct ArrayInit {
    array: AddrRange,
    writes_per_element: u64,
    index: u64,
    writes_done: u64,
}

impl ArrayInit {
    /// Creates an initializer writing each element of `array` once.
    pub fn new(array: AddrRange) -> Self {
        ArrayInit {
            array,
            writes_per_element: 1,
            index: 0,
            writes_done: 0,
        }
    }

    /// Writes each element `writes` times before moving on (exposes the
    /// RWB `k`-threshold interplay: `writes >= k` drives lines local).
    ///
    /// # Panics
    ///
    /// Panics if `writes` is zero.
    #[must_use]
    pub fn writes_per_element(mut self, writes: u64) -> Self {
        assert!(writes > 0, "each element needs at least one write");
        self.writes_per_element = writes;
        self
    }

    /// The array being initialized.
    pub fn array(&self) -> AddrRange {
        self.array
    }
}

impl Processor for ArrayInit {
    fn next_op(&mut self, _last: Option<&decache_machine::OpResult>) -> Poll {
        if self.index >= self.array.len() {
            return Poll::Halt;
        }
        let addr = self.array.nth(self.index);
        // Element value = its index, so tests can verify contents.
        let op = MemOp::write(addr, Word::new(self.index)).with_class(RefClass::Local);
        self.writes_done += 1;
        if self.writes_done == self.writes_per_element {
            self.writes_done = 0;
            self.index += 1;
        }
        Poll::Op(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_bus::BusOpKind;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;
    use decache_mem::Addr;

    /// Runs the workload on a small machine; array 4x the cache.
    fn run(kind: ProtocolKind, writes_per_element: u64) -> decache_machine::Machine {
        let array = AddrRange::with_len(Addr::new(0), 64);
        let mut machine = MachineBuilder::new(kind)
            .memory_words(128)
            .cache_lines(16)
            .processor(Box::new(
                ArrayInit::new(array).writes_per_element(writes_per_element),
            ))
            .build();
        machine.run_to_completion(100_000);
        machine
    }

    #[test]
    fn rb_pays_two_bus_writes_per_element() {
        let machine = run(ProtocolKind::Rb, 1);
        let bw = machine.traffic().count(BusOpKind::Write);
        // 64 write-throughs + 48 write-backs (the last 16 lines stay
        // cached): (2n - cache) bus writes.
        assert_eq!(bw, 64 + 48);
        assert_eq!(machine.stats().writebacks, 48);
    }

    #[test]
    fn rwb_pays_one_bus_write_per_element() {
        let machine = run(ProtocolKind::Rwb, 1);
        let bw = machine.traffic().count(BusOpKind::Write);
        assert_eq!(bw, 64, "RWB: exactly one bus write per element");
        assert_eq!(machine.stats().writebacks, 0);
        assert_eq!(machine.traffic().count(BusOpKind::Invalidate), 0);
    }

    #[test]
    fn every_element_lands_in_memory() {
        for kind in ProtocolKind::ALL {
            let machine = run(kind, 1);
            for i in 0..64u64 {
                // Elements still cached in L are the latest; everything
                // written back or written through must be in memory.
                let mem = machine.memory().peek(Addr::new(i)).unwrap();
                let cached = (0..1).find_map(|pe| machine.cache_line(pe, Addr::new(i)));
                let latest = cached
                    .filter(|(s, _)| s.owns_latest())
                    .map_or(mem, |(_, d)| d);
                assert_eq!(latest, Word::new(i), "{kind} element {i}");
            }
        }
    }

    #[test]
    fn double_writes_trigger_rwb_locality_claims() {
        // Two writes per element under RWB (k=2): BW then BI, then a
        // write-back at eviction — the pattern inverts, showing the
        // k-threshold trade-off.
        let machine = run(ProtocolKind::Rwb, 2);
        let t = machine.traffic();
        assert_eq!(t.count(BusOpKind::Write), 64 + 48); // 64 first-writes + 48 write-backs
        assert_eq!(t.count(BusOpKind::Invalidate), 64); // every second write
        assert_eq!(machine.stats().writebacks, 48);
    }

    #[test]
    #[should_panic(expected = "at least one write")]
    fn zero_writes_per_element_panics() {
        let _ = ArrayInit::new(AddrRange::with_len(Addr::new(0), 4)).writes_per_element(0);
    }
}
