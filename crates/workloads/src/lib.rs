//! # decache-workloads
//!
//! Workload generators for the `decache` experiments.
//!
//! Two families:
//!
//! * **Reference streams** ([`Reference`], [`CmStarApp`]) — flat streams
//!   of classified memory references fed to the Cm*-style emulation
//!   cache to regenerate Table 1-1. The paper's numbers come from
//!   Raskin's Cm* traces, which no longer exist; the substitution (see
//!   DESIGN.md) is a synthetic stream whose **LRU stack-distance profile
//!   is fitted to the measured miss ratios**, with the local-write and
//!   shared-reference fractions taken directly from the table (8%/5% for
//!   application A, 6.7%/10% for application B).
//! * **Machine programs** ([`ArrayInit`], [`ProducerConsumer`],
//!   [`MixWorkload`], [`SystolicStage`], [`MatVec`]) — `Processor` implementations
//!   that drive full simulated machines for the protocol-comparison,
//!   array-initialization, cyclic-sharing, and systolic-pipeline
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array_init;
mod cmstar;
mod matrix;
mod mix;
mod producer_consumer;
mod reference;
mod systolic;

pub use array_init::ArrayInit;
pub use cmstar::{CmStarApp, CMSTAR_CACHE_SIZES};
pub use matrix::{MatVec, MatVecLayout};
pub use mix::{MixConfig, MixWorkload};
pub use producer_consumer::ProducerConsumer;
pub use reference::{Reference, StackProfile, StackStream};
pub use systolic::SystolicStage;
