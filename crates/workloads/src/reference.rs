//! Classified reference streams with a controlled locality profile.

use decache_cache::{AccessKind, RefClass};
use decache_mem::Addr;
use decache_rng::Rng;

/// One classified memory reference of a flat stream (no data values:
/// these streams feed miss-ratio emulation, not the full machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// Read or write.
    pub kind: AccessKind,
    /// The referenced address.
    pub addr: Addr,
    /// Ground-truth class.
    pub class: RefClass,
}

/// A piecewise LRU **stack-distance profile**: for each cache size `s`,
/// the fraction of cachable reads whose reuse distance exceeds `s`
/// (i.e. the target miss ratio of a size-`s` cache).
///
/// Sampling a reuse distance from this profile produces a stream whose
/// miss ratio, measured at each of the profile's sizes, approximates the
/// targets — which is exactly how we substitute for the unavailable Cm*
/// traces behind Table 1-1 (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use decache_workloads::StackProfile;
///
/// // 30% of reads reuse beyond 256 words, 7% beyond 2048.
/// let profile = StackProfile::new(vec![
///     (256, 0.30),
///     (512, 0.25),
///     (1024, 0.13),
///     (2048, 0.07),
/// ]);
/// assert_eq!(profile.miss_target(256), Some(0.30));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StackProfile {
    /// `(cache size, target miss ratio)`, ascending in size, descending
    /// in miss ratio.
    points: Vec<(u64, f64)>,
}

impl StackProfile {
    /// Creates a profile from `(size, miss ratio)` points.
    ///
    /// # Panics
    ///
    /// Panics if the points are empty, not strictly ascending in size,
    /// not non-increasing in miss ratio, or have ratios outside `[0,1]`.
    pub fn new(points: Vec<(u64, f64)>) -> Self {
        assert!(
            !points.is_empty(),
            "a stack profile needs at least one point"
        );
        for window in points.windows(2) {
            assert!(
                window[0].0 < window[1].0,
                "profile sizes must strictly ascend: {points:?}"
            );
            assert!(
                window[0].1 >= window[1].1,
                "profile miss ratios must not increase with size: {points:?}"
            );
        }
        for &(_, m) in &points {
            assert!((0.0..=1.0).contains(&m), "miss ratio {m} outside [0, 1]");
        }
        StackProfile { points }
    }

    /// The target miss ratio at exactly `size`, if `size` is a profile
    /// point.
    pub fn miss_target(&self, size: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, m)| *m)
    }

    /// The profile's `(size, miss ratio)` points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Samples a reuse distance: with the bucket probabilities implied by
    /// the profile, uniform within each bucket; `None` means "beyond the
    /// largest size" (a cold/capacity miss at every profiled size).
    fn sample_distance(&self, rng: &mut Rng) -> Option<u64> {
        let u = rng.next_f64();
        // P(distance <= smallest size) = 1 - miss(smallest).
        let mut cumulative = 1.0 - self.points[0].1;
        if u < cumulative {
            let hi = self.points[0].0;
            return Some(rng.gen_range(1..=hi));
        }
        for window in self.points.windows(2) {
            let (lo, m_lo) = window[0];
            let (hi, m_hi) = window[1];
            let bucket = m_lo - m_hi;
            cumulative += bucket;
            if u < cumulative {
                return Some(rng.gen_range(lo + 1..=hi));
            }
        }
        None
    }
}

/// An infinite stream of read references over a private region whose
/// reuse distances follow a [`StackProfile`]; maintains the true LRU
/// stack so sampled distances translate into concrete addresses.
#[derive(Debug)]
pub struct StackStream {
    profile: StackProfile,
    region_base: u64,
    stack: Vec<u64>, // most recent first
    next_fresh: u64,
    rng: Rng,
    max_stack: usize,
}

impl StackStream {
    /// Creates a stream over addresses starting at `region_base`.
    pub fn new(profile: StackProfile, region_base: Addr, seed: u64) -> Self {
        let max_stack = profile.points.last().map_or(8192, |(s, _)| *s as usize * 4);
        StackStream {
            profile,
            region_base: region_base.index(),
            stack: Vec::new(),
            next_fresh: 0,
            rng: Rng::from_seed(seed),
            max_stack,
        }
    }

    /// Pre-populates the LRU stack with `count` fresh addresses, as if
    /// the program had already been running for a long time. Without
    /// this, early samples of large reuse distances find the stack too
    /// short and degrade into cold misses, inflating measured miss
    /// ratios above the profile's targets.
    pub fn prefill(&mut self, count: u64) {
        for _ in 0..count {
            self.stack.push(self.next_fresh);
            self.next_fresh += 1;
        }
        self.stack.truncate(self.max_stack);
    }

    /// Produces the next address of the stream.
    pub fn next_addr(&mut self) -> Addr {
        let raw = match self.profile.sample_distance(&mut self.rng) {
            Some(d) if (d as usize) <= self.stack.len() => {
                // Reuse the d-th most recently used address.
                self.stack.remove(d as usize - 1)
            }
            _ => {
                // Cold: a never-seen address.
                let a = self.next_fresh;
                self.next_fresh += 1;
                a
            }
        };
        self.stack.insert(0, raw);
        self.stack.truncate(self.max_stack);
        Addr::new(self.region_base + raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_cache::CmStarCache;

    #[test]
    fn profile_validation() {
        let p = StackProfile::new(vec![(256, 0.3), (512, 0.2)]);
        assert_eq!(p.miss_target(256), Some(0.3));
        assert_eq!(p.miss_target(123), None);
        assert_eq!(p.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn unsorted_profile_panics() {
        let _ = StackProfile::new(vec![(512, 0.3), (256, 0.2)]);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn increasing_miss_panics() {
        let _ = StackProfile::new(vec![(256, 0.1), (512, 0.2)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_profile_panics() {
        let _ = StackProfile::new(vec![]);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let profile = StackProfile::new(vec![(64, 0.3), (128, 0.1)]);
        let mut a = StackStream::new(profile.clone(), Addr::new(0), 9);
        let mut b = StackStream::new(profile, Addr::new(0), 9);
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    fn measured_miss_ratio_tracks_profile() {
        // Feed the stream to fully-associative LRU caches of the
        // profiled sizes; the measured read miss ratio should closely
        // match the target (LRU realizes the stack-distance model).
        let profile = StackProfile::new(vec![(256, 0.30), (1024, 0.12)]);
        for (size, target) in [(256usize, 0.30f64), (1024, 0.12)] {
            let mut stream = StackStream::new(profile.clone(), Addr::new(0), 42);
            let mut cache = CmStarCache::fully_associative(size);
            let n = 40_000;
            let mut misses = 0u32;
            for _ in 0..n {
                if !cache.access(stream.next_addr(), AccessKind::Read, RefClass::Code) {
                    misses += 1;
                }
            }
            let measured = f64::from(misses) / f64::from(n);
            assert!(
                (measured - target).abs() < 0.03,
                "size {size}: measured {measured:.3} vs target {target:.3}"
            );
        }
    }

    #[test]
    fn addresses_respect_region_base() {
        let profile = StackProfile::new(vec![(16, 0.5)]);
        let mut stream = StackStream::new(profile, Addr::new(1000), 1);
        for _ in 0..50 {
            assert!(stream.next_addr().index() >= 1000);
        }
    }
}
