//! Conducted execution: drive a machine one directed operation at a time.

use decache_machine::{Machine, MemOp, OpResult, Poll, Processor};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Shared state between the conductor and one conducted processor.
#[derive(Debug, Default)]
struct Slot {
    queue: VecDeque<MemOp>,
    results: Vec<OpResult>,
}

/// A processor that executes exactly the operations the [`Conductor`]
/// hands it, waiting otherwise.
#[derive(Debug)]
struct ConductedProcessor {
    slot: Arc<Mutex<Slot>>,
}

impl Processor for ConductedProcessor {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        let mut slot = self.slot.lock().expect("conductor slot poisoned");
        if let Some(result) = last {
            slot.results.push(*result);
        }
        match slot.queue.pop_front() {
            Some(op) => Poll::Op(op),
            None => Poll::Wait,
        }
    }
}

/// Orchestrates a machine whose processors execute only on direction:
/// push operations to chosen PEs, run the machine to quiescence, observe
/// (snapshot, traffic), repeat. This is how the row-per-observable-event
/// tables of Figures 6-1/6-2/6-3 are regenerated with exact control over
/// which PE does what, when.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::{MachineBuilder, MemOp, OpResult};
/// use decache_mem::{Addr, Word};
/// use decache_sync::Conductor;
///
/// let mut conductor = Conductor::new(2);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rb)
///     .processors(2, |pe| conductor.processor(pe))
///     .build();
///
/// conductor.run_op(&mut machine, 0, MemOp::write(Addr::new(0), Word::ONE));
/// let r = conductor.run_op(&mut machine, 1, MemOp::read(Addr::new(0)));
/// assert_eq!(r, OpResult::Read(Word::ONE));
/// ```
#[derive(Debug)]
pub struct Conductor {
    slots: Vec<Arc<Mutex<Slot>>>,
}

/// Cycle budget for one conducted step; conducted ops are short (at most
/// a few bus transactions), so this is generous.
const STEP_BUDGET: u64 = 10_000;

impl Conductor {
    /// Creates a conductor for `pes` processing elements.
    pub fn new(pes: usize) -> Self {
        Conductor {
            slots: (0..pes)
                .map(|_| Arc::new(Mutex::new(Slot::default())))
                .collect(),
        }
    }

    /// The number of conducted processors.
    pub fn pe_count(&self) -> usize {
        self.slots.len()
    }

    /// Produces the conducted processor for PE `pe`; hand it to
    /// [`MachineBuilder::processor`].
    ///
    /// [`MachineBuilder::processor`]: decache_machine::MachineBuilder::processor
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn processor(&self, pe: usize) -> Box<dyn Processor + Send> {
        Box::new(ConductedProcessor {
            slot: Arc::clone(&self.slots[pe]),
        })
    }

    /// Queues `op` on PE `pe` without running the machine.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn push(&self, pe: usize, op: MemOp) {
        self.slots[pe]
            .lock()
            .expect("conductor slot poisoned")
            .queue
            .push_back(op);
    }

    /// Runs the machine until all queued operations complete and the
    /// machine is quiescent.
    ///
    /// # Panics
    ///
    /// Panics if quiescence is not reached within the step budget (a
    /// conducted op that spins forever is a scenario bug).
    pub fn settle(&self, machine: &mut Machine) {
        // Machine::settle, not run_until_quiescent: a machine with a
        // freshly queued op still *looks* quiescent until the target
        // PE gets a cycle to poll its conductor slot, so the first
        // step must be unconditional.
        assert!(
            machine.settle(STEP_BUDGET),
            "conducted step did not settle within {STEP_BUDGET} cycles"
        );
        // Results are handed to processors at the next poll; take one
        // more (idle) step so every conducted processor records its
        // result.
        machine.step();
        assert!(
            machine.is_quiescent(),
            "result-delivery step started new work"
        );
        // Quiescent with empty conductor queues means every op finished.
        debug_assert!(self.slots.iter().all(|s| s
            .lock()
            .expect("conductor slot poisoned")
            .queue
            .is_empty()));
    }

    /// Convenience: queue one op on one PE, settle, and return its
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range or the machine does not settle.
    pub fn run_op(&self, machine: &mut Machine, pe: usize, op: MemOp) -> OpResult {
        self.push(pe, op);
        self.settle(machine);
        self.last_result(pe).expect("op completed, result recorded")
    }

    /// Convenience: queue one op on each of several PEs (concurrently),
    /// then settle.
    pub fn run_ops(&self, machine: &mut Machine, ops: &[(usize, MemOp)]) {
        for &(pe, op) in ops {
            self.push(pe, op);
        }
        self.settle(machine);
    }

    /// The most recent result observed by PE `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn last_result(&self, pe: usize) -> Option<OpResult> {
        self.slots[pe]
            .lock()
            .expect("conductor slot poisoned")
            .results
            .last()
            .copied()
    }

    /// All results observed by PE `pe`, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn results(&self, pe: usize) -> Vec<OpResult> {
        self.slots[pe]
            .lock()
            .expect("conductor slot poisoned")
            .results
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::{LineState, ProtocolKind};
    use decache_machine::MachineBuilder;
    use decache_mem::{Addr, Word};

    fn setup(kind: ProtocolKind, pes: usize) -> (Conductor, Machine) {
        let conductor = Conductor::new(pes);
        let machine = MachineBuilder::new(kind)
            .processors(pes, |pe| conductor.processor(pe))
            .build();
        (conductor, machine)
    }

    #[test]
    fn conducted_ops_execute_in_order() {
        let (c, mut m) = setup(ProtocolKind::Rb, 2);
        let x = Addr::new(4);
        assert_eq!(
            c.run_op(&mut m, 0, MemOp::write(x, Word::new(3))),
            OpResult::Write
        );
        assert_eq!(
            c.run_op(&mut m, 1, MemOp::read(x)),
            OpResult::Read(Word::new(3))
        );
        assert_eq!(c.results(1).len(), 1);
    }

    #[test]
    fn concurrent_ops_settle_together() {
        let (c, mut m) = setup(ProtocolKind::Rb, 3);
        let x = Addr::new(0);
        c.run_op(&mut m, 1, MemOp::write(x, Word::ONE));
        c.run_ops(&mut m, &[(0, MemOp::read(x)), (2, MemOp::read(x))]);
        assert_eq!(c.last_result(0), Some(OpResult::Read(Word::ONE)));
        assert_eq!(c.last_result(2), Some(OpResult::Read(Word::ONE)));
    }

    #[test]
    fn conducted_ts_reports_acquisition() {
        let (c, mut m) = setup(ProtocolKind::Rwb, 2);
        let s = Addr::new(0);
        let r = c.run_op(&mut m, 0, MemOp::test_and_set(s, Word::ONE));
        assert_eq!(
            r,
            OpResult::TestAndSet {
                old: Word::ZERO,
                acquired: true
            }
        );
        let r = c.run_op(&mut m, 1, MemOp::test_and_set(s, Word::ONE));
        assert_eq!(
            r,
            OpResult::TestAndSet {
                old: Word::ONE,
                acquired: false
            }
        );
    }

    #[test]
    fn machine_idles_between_directions() {
        let (c, mut m) = setup(ProtocolKind::Rb, 1);
        c.run_op(&mut m, 0, MemOp::read(Addr::new(0)));
        let cycles_before = m.cycles();
        // No queued work: already quiescent, so the check-then-step
        // runner answers without consuming any cycles...
        assert!(m.run_until_quiescent(10));
        assert_eq!(m.cycles(), cycles_before);
        // ...while settle takes its mandatory step and re-settles.
        assert!(m.settle(10));
        assert!(m.cycles() > cycles_before);
        assert_eq!(
            m.cache_line(0, Addr::new(0)).map(|(s, _)| s),
            Some(LineState::Readable)
        );
    }
}
