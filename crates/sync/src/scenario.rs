//! The three-processor lock scenario of Figures 6-1, 6-2, and 6-3.

use crate::{Conductor, Primitive};
use decache_core::ProtocolKind;
use decache_machine::{Machine, MachineBuilder, MemOp, SnapshotTable};
use decache_mem::{Addr, Word};

/// The lock variable `S` of the figures.
const LOCK: Addr = Addr::new(0);
/// Processing elements in the scenario ("1 process per processor"); the
/// figures use P1, P2, Pm — three columns.
const PES: usize = 3;
/// In the figures P2 (zero-based PE 1) takes the lock first.
const HOLDER: usize = 1;
/// P1 (zero-based PE 0) acquires after the release.
const NEXT: usize = 0;

/// One executed scenario: the figure's table plus the bus transactions
/// each phase generated.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The protocol simulated.
    pub protocol: ProtocolKind,
    /// The primitive used by the contending processors.
    pub primitive: Primitive,
    /// The figure's row-per-observation table.
    pub table: SnapshotTable,
    /// `(observation label, bus transactions during that phase)` — the
    /// figures' "(Bus Traffic)" / "(No Bus Traffic)" annotations, made
    /// quantitative.
    pub phase_traffic: Vec<(String, u64)>,
    /// The machine in its final state, for further inspection.
    pub machine: Machine,
}

impl ScenarioReport {
    /// Renders the table in the figures' layout.
    pub fn render(&self) -> String {
        self.table.render(PES)
    }

    /// The transactions generated during the phase with the given label.
    ///
    /// # Panics
    ///
    /// Panics if no phase has that label.
    pub fn traffic_of(&self, label: &str) -> u64 {
        self.phase_traffic
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no phase labelled {label:?}"))
            .1
    }
}

/// Reproduces the synchronization figures: "an example of synchronization
/// between M processes (1 process per processor) using a shared data
/// structure lock S" (Section 6.1), with M = 3 as drawn.
///
/// * `SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndSet)` —
///   Figure 6-1;
/// * `SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet)`
///   — Figure 6-2;
/// * `SyncScenario::new(ProtocolKind::Rwb, Primitive::TestAndTestAndSet)`
///   — Figure 6-3.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_sync::{Primitive, SyncScenario};
///
/// let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet).run();
/// // TTS spins generate zero bus traffic while the lock is held:
/// assert_eq!(report.traffic_of("Others spin on S (in cache)"), 0);
/// ```
#[derive(Debug, Clone)]
pub struct SyncScenario {
    protocol: ProtocolKind,
    primitive: Primitive,
    spin_rounds: u64,
}

impl SyncScenario {
    /// Creates the scenario for a protocol and primitive.
    pub fn new(protocol: ProtocolKind, primitive: Primitive) -> Self {
        SyncScenario {
            protocol,
            primitive,
            spin_rounds: 3,
        }
    }

    /// Sets how many failed acquisition rounds the waiting processors
    /// perform while the lock is held (default 3).
    #[must_use]
    pub fn spin_rounds(mut self, rounds: u64) -> Self {
        self.spin_rounds = rounds;
        self
    }

    /// Runs the scenario and produces the figure.
    pub fn run(&self) -> ScenarioReport {
        let conductor = Conductor::new(PES);
        let mut machine = MachineBuilder::new(self.protocol)
            .memory_words(64)
            .cache_lines(16)
            .processors(PES, |pe| conductor.processor(pe))
            .build();

        let mut table = SnapshotTable::new();
        let mut phase_traffic = Vec::new();
        let mut last_total = 0u64;

        let mut observe = |machine: &Machine,
                           table: &mut SnapshotTable,
                           phases: &mut Vec<(String, u64)>,
                           label: &str| {
            let total = machine.traffic().total_transactions();
            table.push(label, machine.snapshot(LOCK));
            phases.push((label.to_owned(), total - last_total));
            last_total = total;
        };

        let others: Vec<usize> = (0..PES).filter(|&pe| pe != HOLDER).collect();

        // Row 1 — "Initial State": every processor has read S once.
        let reads: Vec<(usize, MemOp)> = (0..PES).map(|pe| (pe, MemOp::read(LOCK))).collect();
        conductor.run_ops(&mut machine, &reads);
        observe(&machine, &mut table, &mut phase_traffic, "Initial State");

        // Row 2 — "P2 Locks S".
        let r = conductor.run_op(&mut machine, HOLDER, MemOp::test_and_set(LOCK, Word::ONE));
        assert!(r.acquired(), "the scenario lock starts free");
        observe(&machine, &mut table, &mut phase_traffic, "P2 Locks S");

        // Row 3 — "Others try to get S" while held.
        match self.primitive {
            Primitive::TestAndSet => {
                // Every attempt is a full (failing) test-and-set.
                let attempts: Vec<(usize, MemOp)> = others
                    .iter()
                    .map(|&pe| (pe, MemOp::test_and_set(LOCK, Word::ONE)))
                    .collect();
                conductor.run_ops(&mut machine, &attempts);
                observe(
                    &machine,
                    &mut table,
                    &mut phase_traffic,
                    "Others try to get S (TS)",
                );
                // Continued spinning: each extra round is more bus traffic.
                for _ in 0..self.spin_rounds {
                    conductor.run_ops(&mut machine, &attempts);
                }
                observe(
                    &machine,
                    &mut table,
                    &mut phase_traffic,
                    "Others keep trying (TS spin)",
                );
            }
            Primitive::TestAndTestAndSet => {
                // The first test may fetch the value; after that the spin
                // lives entirely in the caches.
                let tests: Vec<(usize, MemOp)> =
                    others.iter().map(|&pe| (pe, MemOp::read(LOCK))).collect();
                conductor.run_ops(&mut machine, &tests);
                observe(
                    &machine,
                    &mut table,
                    &mut phase_traffic,
                    "Others test S (first test)",
                );
                for _ in 0..self.spin_rounds {
                    conductor.run_ops(&mut machine, &tests);
                }
                observe(
                    &machine,
                    &mut table,
                    &mut phase_traffic,
                    "Others spin on S (in cache)",
                );
            }
        }

        // Row 4 — "P2 releases S" with an ordinary write of zero.
        conductor.run_op(&mut machine, HOLDER, MemOp::write(LOCK, Word::ZERO));
        observe(&machine, &mut table, &mut phase_traffic, "P2 releases S");

        // Row 5 (TTS figures) — "A Bus Read to S": the spinners' next
        // test observes the release.
        if self.primitive == Primitive::TestAndTestAndSet {
            let tests: Vec<(usize, MemOp)> =
                others.iter().map(|&pe| (pe, MemOp::read(LOCK))).collect();
            conductor.run_ops(&mut machine, &tests);
            observe(&machine, &mut table, &mut phase_traffic, "A Bus Read to S");
        }

        // Row 6 — "P1 gets the S".
        let r = conductor.run_op(&mut machine, NEXT, MemOp::test_and_set(LOCK, Word::ONE));
        assert!(r.acquired(), "P1 acquires the released lock");
        observe(&machine, &mut table, &mut phase_traffic, "P1 gets the S");

        // Row 7 — "Others try to get S" again.
        let rest: Vec<usize> = (0..PES).filter(|&pe| pe != NEXT).collect();
        let attempts: Vec<(usize, MemOp)> = rest
            .iter()
            .map(|&pe| match self.primitive {
                Primitive::TestAndSet => (pe, MemOp::test_and_set(LOCK, Word::ONE)),
                Primitive::TestAndTestAndSet => (pe, MemOp::read(LOCK)),
            })
            .collect();
        conductor.run_ops(&mut machine, &attempts);
        observe(
            &machine,
            &mut table,
            &mut phase_traffic,
            "Others try to get S",
        );

        ScenarioReport {
            protocol: self.protocol,
            primitive: self.primitive,
            table,
            phase_traffic,
            machine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::{Configuration, LineState};
    use LineState::{FirstWrite, Invalid, Local, Readable};

    fn states(report: &ScenarioReport, row: usize) -> Vec<Option<LineState>> {
        let (_, snap) = &report.table.rows()[row];
        (0..PES).map(|pe| snap.line(pe).map(|(s, _)| s)).collect()
    }

    #[test]
    fn figure_6_1_ts_on_rb() {
        let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndSet).run();
        // Row 0 "Initial State": R(0) R(0) R(0).
        assert_eq!(states(&report, 0), vec![Some(Readable); 3]);
        // Row 1 "P2 Locks S": I(-) L(1) I(-).
        assert_eq!(
            states(&report, 1),
            vec![Some(Invalid), Some(Local), Some(Invalid)]
        );
        // Row 2 "Others try to get S": R(1) R(1) R(1), with bus traffic.
        assert_eq!(states(&report, 2), vec![Some(Readable); 3]);
        assert!(report.traffic_of("Others try to get S (TS)") > 0);
        // TS spinning keeps burning the bus.
        assert!(report.traffic_of("Others keep trying (TS spin)") > 0);
        // Row 4 "P2 releases S": I(-) L(0) I(-).
        assert_eq!(
            states(&report, 4),
            vec![Some(Invalid), Some(Local), Some(Invalid)]
        );
        // Row 5 "P1 gets the S": L(1) I(-) I(-).
        assert_eq!(
            states(&report, 5),
            vec![Some(Local), Some(Invalid), Some(Invalid)]
        );
        // Row 6 "Others try to get S": R(1) R(1) R(1).
        assert_eq!(states(&report, 6), vec![Some(Readable); 3]);
    }

    #[test]
    fn figure_6_2_tts_on_rb() {
        let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndTestAndSet).run();
        assert_eq!(states(&report, 0), vec![Some(Readable); 3]);
        assert_eq!(
            states(&report, 1),
            vec![Some(Invalid), Some(Local), Some(Invalid)]
        );
        // "Others test S": the first test costs one bus read (supplied by
        // the Local holder)...
        assert_eq!(states(&report, 2), vec![Some(Readable); 3]);
        assert!(report.traffic_of("Others test S (first test)") > 0);
        // ... after which spinning is free: the headline TTS property.
        assert_eq!(report.traffic_of("Others spin on S (in cache)"), 0);
        // "P2 releases S": I(-) L(0) I(-).
        assert_eq!(
            states(&report, 4),
            vec![Some(Invalid), Some(Local), Some(Invalid)]
        );
        // "A Bus Read to S": R(0) R(0) R(0).
        assert_eq!(states(&report, 5), vec![Some(Readable); 3]);
        // "P1 gets the S": L(1) I(-) I(-).
        assert_eq!(
            states(&report, 6),
            vec![Some(Local), Some(Invalid), Some(Invalid)]
        );
        // "Others try to get S": R(1) R(1) R(1).
        assert_eq!(states(&report, 7), vec![Some(Readable); 3]);
    }

    #[test]
    fn figure_6_3_tts_on_rwb() {
        let report = SyncScenario::new(ProtocolKind::Rwb, Primitive::TestAndTestAndSet).run();
        assert_eq!(states(&report, 0), vec![Some(Readable); 3]);
        // "P2 Locks S": R(1) F(1) R(1) — the RWB shared configuration.
        assert_eq!(
            states(&report, 1),
            vec![Some(Readable), Some(FirstWrite(1)), Some(Readable)]
        );
        // The others' tests hit in their caches immediately: even the
        // FIRST test is free, unlike RB ("substantial minimization of
        // cache invalidation").
        assert_eq!(report.traffic_of("Others test S (first test)"), 0);
        assert_eq!(report.traffic_of("Others spin on S (in cache)"), 0);
        assert_eq!(
            states(&report, 2),
            vec![Some(Readable), Some(FirstWrite(1)), Some(Readable)]
        );
        // "P2 releases S": I(-) L(0) I(-) — the release is P2's second
        // uninterrupted write, so it goes local via BI.
        assert_eq!(
            states(&report, 4),
            vec![Some(Invalid), Some(Local), Some(Invalid)]
        );
        // "A Bus Read to S": R(0) R(0) R(0).
        assert_eq!(states(&report, 5), vec![Some(Readable); 3]);
        // "P1 gets the S": F(1) R(1) R(1).
        assert_eq!(
            states(&report, 6),
            vec![Some(FirstWrite(1)), Some(Readable), Some(Readable)]
        );
        // "Others try to get S": states unchanged, and free.
        assert_eq!(report.traffic_of("Others try to get S"), 0);
    }

    #[test]
    fn every_row_is_a_legal_configuration() {
        for (kind, primitive) in [
            (ProtocolKind::Rb, Primitive::TestAndSet),
            (ProtocolKind::Rb, Primitive::TestAndTestAndSet),
            (ProtocolKind::Rwb, Primitive::TestAndTestAndSet),
            (ProtocolKind::Rwb, Primitive::TestAndSet),
        ] {
            let report = SyncScenario::new(kind, primitive).run();
            for (label, snap) in report.table.rows() {
                assert_ne!(
                    snap.configuration(),
                    Configuration::Illegal,
                    "{kind} {primitive} row {label:?}"
                );
            }
        }
    }

    #[test]
    fn render_produces_figure_layout() {
        let report = SyncScenario::new(ProtocolKind::Rb, Primitive::TestAndSet).run();
        let text = report.render();
        assert!(text.contains("P1"));
        assert!(text.contains("Observation"));
        assert!(text.contains("P2 Locks S"));
        assert!(text.contains("L(1)"));
    }
}
