//! TS and TTS spinlock processor programs.

use decache_machine::{MemOp, OpResult, Poll, Processor};
use decache_mem::{Addr, Word};
use std::fmt;

/// Which synchronization primitive a [`LockWorker`] spins with.
///
/// * `TestAndSet`: every acquisition attempt is a full read-modify-write
///   bus cycle — the classic hot spot. "If many PE's simultaneously
///   test-and-set the same memory location ... high bus traffic and
///   memory contention will result" (Section 6).
/// * `TestAndTestAndSet`: each attempt first *tests* with an ordinary
///   read — which spins silently in the cache — and only issues the
///   test-and-set once the test observes zero. "The initial test part of
///   the instruction could be executed in the local cache, without
///   generating bus traffic" (Section 6). This is the software TTS the
///   paper advocates for off-the-shelf processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Spin on the atomic test-and-set itself.
    TestAndSet,
    /// Test in the cache first; test-and-set only when the lock looks
    /// free.
    TestAndTestAndSet,
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::TestAndSet => write!(f, "TS"),
            Primitive::TestAndTestAndSet => write!(f, "TTS"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// TTS only: reading the lock until it looks free.
    Testing,
    /// A test-and-set is in flight.
    Attempting,
    /// Holding the lock; `left` critical-section references remain.
    Critical { left: u64 },
    /// The release write is in flight.
    Releasing,
    /// All acquisitions performed.
    Finished,
}

/// A processor program that acquires a shared lock `rounds` times,
/// performing `cs_refs` private-data references inside each critical
/// section, then releasing with an ordinary write of zero.
///
/// The lock variable is `1` when held and `0` when free, exactly as in
/// the figures' scenario ("The lock S is 1 if the data structure is
/// currently reserved ... and is 0 if the data structure is not in use").
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, Word};
/// use decache_sync::{LockWorker, Primitive};
///
/// let lock = Addr::new(0);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rb)
///     .processors(4, |pe| {
///         Box::new(LockWorker::new(lock, Primitive::TestAndTestAndSet)
///             .rounds(3)
///             .critical_section(Addr::new(16 + pe as u64), 2))
///     })
///     .build();
/// machine.run_to_completion(100_000);
/// assert_eq!(machine.stats().ts_successes, 12); // 4 PEs x 3 rounds
/// // The final release may be a silent local write, so the latest value
/// // (0 = free) is either in memory or in the releasing cache's L line:
/// let snap = machine.snapshot(lock);
/// let owner = (0..4).find_map(|pe| snap.line(pe).filter(|(s, _)| s.owns_latest()));
/// match owner {
///     Some((_, data)) => assert_eq!(data, Word::ZERO),
///     None => assert_eq!(snap.memory(), Word::ZERO),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LockWorker {
    lock: Addr,
    primitive: Primitive,
    rounds_left: u64,
    cs_refs: u64,
    private: Addr,
    phase: Phase,
}

impl LockWorker {
    /// Creates a worker that acquires `lock` once with no critical-section
    /// work; tune with [`LockWorker::rounds`] and
    /// [`LockWorker::critical_section`].
    pub fn new(lock: Addr, primitive: Primitive) -> Self {
        LockWorker {
            lock,
            primitive,
            rounds_left: 1,
            cs_refs: 0,
            private: lock, // placeholder; unused while cs_refs == 0
            phase: Phase::start(primitive),
        }
    }

    /// Sets the number of acquisitions to perform.
    #[must_use]
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds_left = rounds;
        if rounds == 0 {
            self.phase = Phase::Finished;
        }
        self
    }

    /// Holds the lock for `refs` reads of the worker's `private` word
    /// per acquisition (models critical-section work; the private word
    /// caches after its first touch, so the hold time is `refs` cycles).
    #[must_use]
    pub fn critical_section(mut self, private: Addr, refs: u64) -> Self {
        self.private = private;
        self.cs_refs = refs;
        self
    }

    /// The primitive this worker spins with.
    pub fn primitive(&self) -> Primitive {
        self.primitive
    }

    fn acquire_op(&self) -> MemOp {
        MemOp::test_and_set(self.lock, Word::ONE)
    }

    fn enter_critical(&mut self) -> Poll {
        if self.cs_refs > 0 {
            // Issue the first critical-section reference now.
            self.phase = Phase::Critical {
                left: self.cs_refs - 1,
            };
            Poll::Op(MemOp::read(self.private).with_class(decache_cache::RefClass::Local))
        } else {
            self.phase = Phase::Releasing;
            Poll::Op(MemOp::write(self.lock, Word::ZERO))
        }
    }
}

impl Phase {
    fn start(primitive: Primitive) -> Phase {
        match primitive {
            Primitive::TestAndSet => Phase::Attempting,
            Primitive::TestAndTestAndSet => Phase::Testing,
        }
    }
}

impl Processor for LockWorker {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        match self.phase {
            Phase::Finished => Poll::Halt,

            Phase::Testing => match last {
                // "If V != 0 Then nil Else <test-and-set>": the test spins
                // in the cache until the lock looks free.
                Some(OpResult::Read(v)) if v.is_zero() => {
                    self.phase = Phase::Attempting;
                    Poll::Op(self.acquire_op())
                }
                _ => Poll::Op(MemOp::read(self.lock)),
            },

            Phase::Attempting => match last {
                Some(OpResult::TestAndSet { acquired: true, .. }) => self.enter_critical(),
                Some(OpResult::TestAndSet {
                    acquired: false, ..
                }) => match self.primitive {
                    // TS retries the read-modify-write immediately.
                    Primitive::TestAndSet => Poll::Op(self.acquire_op()),
                    // TTS falls back to testing in the cache.
                    Primitive::TestAndTestAndSet => {
                        self.phase = Phase::Testing;
                        Poll::Op(MemOp::read(self.lock))
                    }
                },
                // First call (no previous result): start with an attempt.
                _ => Poll::Op(self.acquire_op()),
            },

            Phase::Critical { left } => {
                if left > 0 {
                    self.phase = Phase::Critical { left: left - 1 };
                    Poll::Op(MemOp::read(self.private).with_class(decache_cache::RefClass::Local))
                } else {
                    self.phase = Phase::Releasing;
                    Poll::Op(MemOp::write(self.lock, Word::ZERO))
                }
            }

            Phase::Releasing => {
                self.rounds_left -= 1;
                if self.rounds_left == 0 {
                    self.phase = Phase::Finished;
                    Poll::Halt
                } else {
                    self.phase = Phase::start(self.primitive);
                    self.next_op(None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(worker: &mut LockWorker, results: Vec<OpResult>) -> Vec<MemOp> {
        let mut ops = Vec::new();
        let mut last: Option<OpResult> = None;
        let mut results = results.into_iter();
        loop {
            match worker.next_op(last.as_ref()) {
                Poll::Op(op) => {
                    ops.push(op);
                    last = results.next();
                    if last.is_none() {
                        return ops;
                    }
                }
                Poll::Halt => return ops,
                Poll::Wait => unreachable!("LockWorker never waits"),
            }
        }
    }

    #[test]
    fn ts_worker_spins_with_test_and_set() {
        let lock = Addr::new(0);
        let mut w = LockWorker::new(lock, Primitive::TestAndSet);
        let ops = drive(
            &mut w,
            vec![
                OpResult::TestAndSet {
                    old: Word::ONE,
                    acquired: false,
                },
                OpResult::TestAndSet {
                    old: Word::ONE,
                    acquired: false,
                },
                OpResult::TestAndSet {
                    old: Word::ZERO,
                    acquired: true,
                },
                OpResult::Write,
            ],
        );
        // Three TS attempts, then the release write.
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0], MemOp::test_and_set(lock, Word::ONE));
        assert_eq!(ops[1], MemOp::test_and_set(lock, Word::ONE));
        assert_eq!(ops[2], MemOp::test_and_set(lock, Word::ONE));
        assert_eq!(ops[3], MemOp::write(lock, Word::ZERO));
    }

    #[test]
    fn tts_worker_tests_before_setting() {
        let lock = Addr::new(0);
        let mut w = LockWorker::new(lock, Primitive::TestAndTestAndSet);
        let ops = drive(
            &mut w,
            vec![
                OpResult::Read(Word::ONE),  // busy: keep testing
                OpResult::Read(Word::ONE),  // busy
                OpResult::Read(Word::ZERO), // looks free: attempt
                OpResult::TestAndSet {
                    old: Word::ZERO,
                    acquired: true,
                },
                OpResult::Write,
            ],
        );
        assert_eq!(ops[0], MemOp::read(lock));
        assert_eq!(ops[1], MemOp::read(lock));
        assert_eq!(ops[2], MemOp::read(lock));
        assert_eq!(ops[3], MemOp::test_and_set(lock, Word::ONE));
        assert_eq!(ops[4], MemOp::write(lock, Word::ZERO));
    }

    #[test]
    fn tts_lost_race_returns_to_testing() {
        let lock = Addr::new(0);
        let mut w = LockWorker::new(lock, Primitive::TestAndTestAndSet);
        let ops = drive(
            &mut w,
            vec![
                OpResult::Read(Word::ZERO), // looks free
                OpResult::TestAndSet {
                    old: Word::ONE,
                    acquired: false,
                }, // lost the race
                OpResult::Read(Word::ONE),  // back to testing
            ],
        );
        assert_eq!(ops[0], MemOp::read(lock));
        assert_eq!(ops[1], MemOp::test_and_set(lock, Word::ONE));
        assert_eq!(ops[2], MemOp::read(lock)); // testing again, not TS
        assert_eq!(ops[3], MemOp::read(lock));
    }

    #[test]
    fn critical_section_reads_private_word() {
        let lock = Addr::new(0);
        let private = Addr::new(32);
        let mut w = LockWorker::new(lock, Primitive::TestAndSet).critical_section(private, 2);
        let ops = drive(
            &mut w,
            vec![
                OpResult::TestAndSet {
                    old: Word::ZERO,
                    acquired: true,
                },
                OpResult::Read(Word::ZERO),
                OpResult::Read(Word::ZERO),
                OpResult::Write,
            ],
        );
        assert_eq!(ops[1].access, decache_machine::Access::Read(private));
        assert_eq!(ops[2].access, decache_machine::Access::Read(private));
        assert_eq!(ops[3], MemOp::write(lock, Word::ZERO));
    }

    #[test]
    fn multiple_rounds_restart_the_cycle() {
        let lock = Addr::new(0);
        let mut w = LockWorker::new(lock, Primitive::TestAndSet).rounds(2);
        let ops = drive(
            &mut w,
            vec![
                OpResult::TestAndSet {
                    old: Word::ZERO,
                    acquired: true,
                },
                OpResult::Write,
                OpResult::TestAndSet {
                    old: Word::ZERO,
                    acquired: true,
                },
                OpResult::Write,
            ],
        );
        // TS, release, TS, release, halt.
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[2], MemOp::test_and_set(lock, Word::ONE));
    }

    #[test]
    fn zero_rounds_halts_immediately() {
        let mut w = LockWorker::new(Addr::new(0), Primitive::TestAndSet).rounds(0);
        assert_eq!(w.next_op(None), Poll::Halt);
    }

    #[test]
    fn primitive_display() {
        assert_eq!(Primitive::TestAndSet.to_string(), "TS");
        assert_eq!(Primitive::TestAndTestAndSet.to_string(), "TTS");
    }
}
