//! A centralized barrier built from the paper's primitives.
//!
//! "The behavior of a parallel computation can be characterized as a
//! series of parallel actions alternated by phases of communication
//! and/or synchronization" (Section 6). The barrier is the canonical
//! such phase: every processor arrives, and none proceeds until all
//! have. This implementation composes the paper's TTS lock with a
//! shared arrival counter and a generation word that waiters spin on —
//! in their caches, thanks to the coherence schemes.
//!
//! Memory layout (three consecutive shared words):
//! `base + 0` = mutex lock, `base + 1` = arrival counter,
//! `base + 2` = generation (number of completed episodes).

use decache_machine::{MemOp, OpResult, Poll, Processor};
use decache_mem::{Addr, Word};

/// Which step of the barrier protocol a worker is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// TTS test of the mutex.
    Test,
    /// Test-and-set in flight.
    Attempt,
    /// Reading the arrival counter (mutex held).
    ReadCounter,
    /// Writing the incremented counter (not the last arriver).
    BumpCounter,
    /// Writing the counter back to zero (last arriver).
    ResetCounter,
    /// Releasing the mutex; `then_publish` distinguishes the last
    /// arriver (who must still bump the generation).
    ReleaseLock { then_publish: bool },
    /// Publishing the new generation (last arriver only).
    PublishGeneration,
    /// Spinning on the generation word.
    SpinGeneration,
    /// All episodes done.
    Finished,
}

/// One processor's barrier program: arrive at the barrier `episodes`
/// times, spinning (in cache) between arrivals.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::MachineBuilder;
/// use decache_mem::{Addr, Word};
/// use decache_sync::BarrierWorker;
///
/// let base = Addr::new(0);
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .processors(4, |_| Box::new(BarrierWorker::new(base, 4, 3)))
///     .build();
/// machine.run_to_completion(1_000_000);
/// // The generation word counts completed episodes:
/// assert_eq!(machine.memory().peek(Addr::new(2)).unwrap(), Word::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct BarrierWorker {
    lock: Addr,
    counter: Addr,
    generation: Addr,
    total: u64,
    episodes: u64,
    episode: u64,
    phase: Phase,
}

impl BarrierWorker {
    /// Creates a worker for a barrier of `total` processors at `base`
    /// (which claims three consecutive words), performing `episodes`
    /// barrier episodes.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(base: Addr, total: u64, episodes: u64) -> Self {
        assert!(total > 0, "a barrier needs at least one participant");
        BarrierWorker {
            lock: base,
            counter: base.offset(1),
            generation: base.offset(2),
            total,
            episodes,
            episode: 0,
            phase: if episodes == 0 {
                Phase::Finished
            } else {
                Phase::Test
            },
        }
    }

    /// The number of episodes this worker has completed.
    pub fn completed_episodes(&self) -> u64 {
        self.episode
    }

    fn finish_episode(&mut self) -> Poll {
        self.episode += 1;
        if self.episode == self.episodes {
            self.phase = Phase::Finished;
            Poll::Halt
        } else {
            self.phase = Phase::Test;
            Poll::Op(MemOp::read(self.lock))
        }
    }
}

impl Processor for BarrierWorker {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        match self.phase {
            Phase::Finished => Poll::Halt,

            Phase::Test => match last {
                Some(OpResult::Read(v)) if v.is_zero() => {
                    self.phase = Phase::Attempt;
                    Poll::Op(MemOp::test_and_set(self.lock, Word::ONE))
                }
                _ => Poll::Op(MemOp::read(self.lock)),
            },

            Phase::Attempt => match last {
                Some(OpResult::TestAndSet { acquired: true, .. }) => {
                    self.phase = Phase::ReadCounter;
                    Poll::Op(MemOp::read(self.counter))
                }
                Some(OpResult::TestAndSet {
                    acquired: false, ..
                }) => {
                    self.phase = Phase::Test;
                    Poll::Op(MemOp::read(self.lock))
                }
                _ => Poll::Op(MemOp::test_and_set(self.lock, Word::ONE)),
            },

            Phase::ReadCounter => match last {
                Some(OpResult::Read(c)) => {
                    let arrivals = c.value() + 1;
                    if arrivals == self.total {
                        self.phase = Phase::ResetCounter;
                        Poll::Op(MemOp::write(self.counter, Word::ZERO))
                    } else {
                        self.phase = Phase::BumpCounter;
                        Poll::Op(MemOp::write(self.counter, Word::new(arrivals)))
                    }
                }
                _ => unreachable!("ReadCounter expects a read result"),
            },

            Phase::BumpCounter => {
                self.phase = Phase::ReleaseLock {
                    then_publish: false,
                };
                Poll::Op(MemOp::write(self.lock, Word::ZERO))
            }

            Phase::ResetCounter => {
                self.phase = Phase::ReleaseLock { then_publish: true };
                Poll::Op(MemOp::write(self.lock, Word::ZERO))
            }

            Phase::ReleaseLock { then_publish } => {
                if then_publish {
                    self.phase = Phase::PublishGeneration;
                    Poll::Op(MemOp::write(self.generation, Word::new(self.episode + 1)))
                } else {
                    self.phase = Phase::SpinGeneration;
                    Poll::Op(MemOp::read(self.generation))
                }
            }

            Phase::PublishGeneration => self.finish_episode(),

            Phase::SpinGeneration => match last {
                Some(OpResult::Read(g)) if g.value() > self.episode => self.finish_episode(),
                _ => Poll::Op(MemOp::read(self.generation)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_core::ProtocolKind;
    use decache_machine::MachineBuilder;

    fn run(kind: ProtocolKind, workers: u64, episodes: u64) -> decache_machine::Machine {
        let base = Addr::new(0);
        let mut machine = MachineBuilder::new(kind)
            .memory_words(64)
            .processors(workers as usize, |_| {
                Box::new(BarrierWorker::new(base, workers, episodes))
            })
            .build();
        machine.run_to_completion(10_000_000);
        machine
    }

    #[test]
    fn all_workers_pass_all_episodes_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let machine = run(kind, 4, 3);
            // Generation counts completed episodes.
            let gen = machine.snapshot(Addr::new(2));
            let latest = (0..4)
                .find_map(|pe| {
                    machine
                        .cache_line(pe, Addr::new(2))
                        .filter(|(s, _)| s.owns_latest())
                        .map(|(_, d)| d)
                })
                .unwrap_or(gen.memory());
            assert_eq!(latest, Word::new(3), "{kind}");
            // Each episode acquires the mutex once per worker.
            assert_eq!(machine.stats().ts_successes, 12, "{kind}");
        }
    }

    #[test]
    fn single_worker_barrier_is_trivial() {
        let machine = run(ProtocolKind::Rb, 1, 5);
        assert_eq!(machine.stats().ts_successes, 5);
    }

    #[test]
    fn counter_resets_between_episodes() {
        let machine = run(ProtocolKind::Rwb, 3, 2);
        // After the last episode the counter is back at zero (latest
        // value, wherever it lives).
        let snap = machine.snapshot(Addr::new(1));
        let latest = (0..3)
            .find_map(|pe| {
                machine
                    .cache_line(pe, Addr::new(1))
                    .filter(|(s, _)| s.owns_latest())
                    .map(|(_, d)| d)
            })
            .unwrap_or(snap.memory());
        assert_eq!(latest, Word::ZERO);
    }

    #[test]
    fn spinning_between_arrivals_is_cache_local_under_rwb() {
        // Compare bus traffic: barrier spinning under RWB should cost
        // far less than the total references issued.
        let machine = run(ProtocolKind::Rwb, 8, 4);
        let refs = machine.total_cache_stats().total_references();
        let bus = machine.traffic().total_transactions();
        assert!(
            bus < refs / 2,
            "barrier spins should mostly hit in cache: {bus} bus tx for {refs} refs"
        );
    }

    #[test]
    fn zero_episode_worker_halts_immediately() {
        let mut w = BarrierWorker::new(Addr::new(0), 2, 0);
        assert_eq!(w.next_op(None), Poll::Halt);
        assert_eq!(w.completed_episodes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = BarrierWorker::new(Addr::new(0), 0, 1);
    }
}
