//! # decache-sync
//!
//! Synchronization on the simulated caches (Section 6 of the paper):
//! the classic **Test-and-Set** (TS) spinlock, the paper's
//! **Test-and-Test-and-Set** (TTS) refinement, and the machinery to
//! measure and visualize what they do to the shared bus.
//!
//! * [`LockWorker`] — a processing-element program that repeatedly
//!   acquires a lock (by TS or TTS), holds it for a configurable
//!   critical section, and releases it.
//! * [`Conductor`] — drives a machine one directed operation at a time,
//!   so experiments can take a [`Snapshot`] after each observable event:
//!   this regenerates the row-per-event tables of Figures 6-1, 6-2, and
//!   6-3 exactly.
//! * [`SyncScenario`] — the three-processor lock scenario of those
//!   figures, parameterized by primitive (TS/TTS) and protocol (RB/RWB).
//! * [`ContentionExperiment`] — the quantitative hot-spot measurement
//!   (E8): how much bus traffic m contending processors generate under
//!   each primitive and protocol.
//! * [`BarrierWorker`] — a centralized sense-style barrier composed from
//!   the TTS lock and an in-cache generation spin, exercising the
//!   "parallel actions alternated by phases of synchronization" pattern
//!   the paper opens Section 6 with.
//!
//! [`Snapshot`]: decache_machine::Snapshot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod conduct;
mod contention;
mod lock;
mod scenario;

pub use barrier::BarrierWorker;
pub use conduct::Conductor;
pub use contention::{ContentionExperiment, ContentionReport};
pub use lock::{LockWorker, Primitive};
pub use scenario::{ScenarioReport, SyncScenario};
