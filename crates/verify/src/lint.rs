//! Dead-transition lint: static coverage of a protocol's transition
//! table under exhaustive product-machine exploration.
//!
//! While the checker explores the per-address product machine, a
//! [`Coverage`] recorder notes every `(state, input)` table cell the
//! exploration exercises. Comparing that against the full table domain
//! (from [`decache_core::introspect`]) yields a lint report: states the
//! protocol declares but never reaches, table rows that exist but can
//! never fire, and rows whose handling panics (non-total tables).
//!
//! Dead rows are not bugs by themselves — e.g. RB's `L --snoop:BR`
//! totality arm cannot fire because a legal configuration has at most
//! one owner and the owner intercepts the read *before* the broadcast.
//! They are, however, exactly the rows a regression can silently grow:
//! a protocol change that makes a previously-live row dead (or adds new
//! dead rows) changes reachable behaviour. The expected dead set is
//! pinned by the **static** analyzer baseline in `static_baseline.txt`
//! (see [`crate::static_check`]), whose abstraction-based dead-rule
//! detection provably subsumes this coverage lint at every `n`; the
//! per-`n` report here remains for exploration diagnostics and the
//! subsumption test itself.

use decache_core::introspect::{probe_outcome, transition_domain, TableInput, TransitionKey};
use decache_core::{introspect::SnoopKind, LineState, Protocol};
use std::collections::BTreeSet;

/// Records which transition-table cells fired during an exploration.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    fired: BTreeSet<TransitionKey>,
    seen: Vec<LineState>,
}

impl Coverage {
    /// Notes that the table cell `(state, input)` fired.
    pub(crate) fn record(&mut self, state: Option<LineState>, input: TableInput) {
        self.fired.insert(TransitionKey { state, input });
    }

    /// Notes that some reachable product state contains a cell in
    /// `state`.
    pub(crate) fn see_state(&mut self, state: LineState) {
        if !self.seen.contains(&state) {
            self.seen.push(state);
        }
    }

    /// Whether the cell `(state, input)` ever fired.
    pub fn has_fired(&self, state: Option<LineState>, input: TableInput) -> bool {
        self.fired.contains(&TransitionKey { state, input })
    }

    /// Whether any reachable product state contains a cell in `state`.
    pub fn state_reached(&self, state: LineState) -> bool {
        self.seen.contains(&state)
    }

    /// The number of distinct cells that fired.
    pub fn fired_count(&self) -> usize {
        self.fired.len()
    }
}

/// The dead-transition lint result for one protocol at one checker
/// configuration.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The protocol's display name (the baseline key).
    pub protocol: String,
    /// The number of caches explored.
    pub n: usize,
    /// The size of the (configuration-restricted) table domain.
    pub domain: usize,
    /// How many domain cells fired during exploration.
    pub fired: usize,
    /// Declared states no reachable product state ever contains.
    pub unreachable_states: Vec<LineState>,
    /// Domain cells that are handled (total) but never fire.
    pub dead: Vec<TransitionKey>,
    /// Domain cells whose handling panics — non-total tables.
    pub non_total: Vec<TransitionKey>,
}

impl LintReport {
    /// `true` iff the table is total over the explored domain.
    pub fn is_total(&self) -> bool {
        self.non_total.is_empty()
    }

    /// The dead cells, rendered as stable baseline entries.
    pub fn dead_rendered(&self) -> Vec<String> {
        self.dead.iter().map(ToString::to_string).collect()
    }

    /// This report's baseline line: `NAME: entry; entry; …`.
    pub fn baseline_line(&self) -> String {
        format!("{}: {}", self.protocol, self.dead_rendered().join("; "))
    }

    /// Dead entries in this report that the baseline does not expect —
    /// the regressions a CI gate fails on.
    pub fn new_dead_versus(&self, baseline: &[String]) -> Vec<String> {
        self.dead_rendered()
            .into_iter()
            .filter(|e| !baseline.iter().any(|b| b == e))
            .collect()
    }

    /// Baseline entries that are no longer dead — improvements worth a
    /// baseline refresh, but not failures.
    pub fn fixed_versus(&self, baseline: &[String]) -> Vec<String> {
        let dead = self.dead_rendered();
        baseline
            .iter()
            .filter(|b| !dead.iter().any(|e| e == *b))
            .cloned()
            .collect()
    }
}

/// Builds the lint report for a protocol from exploration coverage.
/// `evictions`/`test_and_set` restrict the domain to the events the
/// checker actually generated, so disabled event families do not show
/// up as dead.
pub(crate) fn build_report(
    protocol: &dyn Protocol,
    coverage: &Coverage,
    n: usize,
    evictions: bool,
    test_and_set: bool,
) -> LintReport {
    let mut domain = transition_domain(protocol);
    if !test_and_set {
        domain.retain(|k| {
            !matches!(
                k.input,
                TableInput::OwnLockedRead
                    | TableInput::OwnUnlockWrite
                    | TableInput::Snoop(SnoopKind::LockedRead | SnoopKind::UnlockWrite)
            )
        });
    }
    if !evictions {
        domain.retain(|k| k.input != TableInput::Evict);
    }

    let mut dead = Vec::new();
    let mut non_total = Vec::new();
    let mut fired = 0usize;
    for &key in &domain {
        if coverage.has_fired(key.state, key.input) {
            fired += 1;
        } else if probe_outcome(protocol, key).is_none() {
            non_total.push(key);
        } else {
            dead.push(key);
        }
    }
    let unreachable_states = protocol
        .states()
        .into_iter()
        .filter(|&s| !coverage.state_reached(s))
        .collect();

    LintReport {
        protocol: protocol.name(),
        n,
        domain: domain.len(),
        fired,
        unreachable_states,
        dead,
        non_total,
    }
}

#[cfg(test)]
mod tests {

    use crate::ProductChecker;
    use decache_core::ProtocolKind;

    /// The seven protocol variants the workspace checks everywhere.
    const KINDS: [ProtocolKind; 7] = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(1),
        ProtocolKind::RwbThreshold(3),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
    ];

    #[test]
    fn every_kind_is_total_and_reaches_all_states_at_the_canonical_config() {
        for kind in KINDS {
            let checker = ProductChecker::new(kind, 3);
            let report = checker.explore();
            assert!(report.holds());
            let lint = checker.lint(&report);
            assert!(lint.is_total(), "{kind}: non-total {:?}", lint.non_total);
            assert!(
                lint.unreachable_states.is_empty(),
                "{kind}: unreachable {:?}",
                lint.unreachable_states
            );
        }
    }

    #[test]
    fn every_kind_fires_most_of_its_table() {
        // The lint is only meaningful if exploration exercises the bulk
        // of the table; a protocol firing under half its rows would mean
        // the event generator lost a whole family of events.
        for kind in KINDS {
            let checker = ProductChecker::new(kind, 3);
            let report = checker.explore();
            let lint = checker.lint(&report);
            assert!(
                lint.fired * 2 > lint.domain,
                "{kind}: only {}/{} rows fired",
                lint.fired,
                lint.domain
            );
        }
    }

    #[test]
    fn disabling_event_families_shrinks_the_domain_not_the_dead_set() {
        let full = ProductChecker::new(ProtocolKind::Rb, 3);
        let full_lint = full.lint(&full.explore());
        let plain = ProductChecker::new(ProtocolKind::Rb, 3)
            .without_test_and_set()
            .without_evictions();
        let plain_lint = plain.lint(&plain.explore());
        assert!(plain_lint.domain < full_lint.domain);
        // Restricting events must not surface them as dead rows.
        for entry in plain_lint.dead_rendered() {
            assert!(
                !entry.contains("BRL") && !entry.contains("BWU") && !entry.contains("evict"),
                "restricted domain leaked {entry}"
            );
        }
    }
}
