//! Counterexample witnesses: the shortest event sequence from the
//! initial product state to an invariant violation.
//!
//! The product checker's breadth-first exploration records, for every
//! discovered state, the predecessor state and the event that produced
//! it. On the first violation it walks those edges back to the initial
//! state and renders each intermediate state with the paper's letters
//! (`R`, `L`, `F2`, `NP`, …) — turning a bare "the lemma fails" into a
//! replayable trace a protocol author can step through against the
//! transition table.

use std::fmt;

/// One event of the product machine, attributed to the processing
/// element that performed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessEvent {
    /// PE `i` issued a CPU read.
    CpuRead(usize),
    /// PE `i` issued a CPU write.
    CpuWrite(usize),
    /// PE `i` began a Test-and-Set (the locked bus read).
    TsLock(usize),
    /// PE `i` committed its Test-and-Set (the unlocking bus write).
    TsCommit(usize),
    /// PE `i` abandoned its Test-and-Set (the value looked taken).
    TsAbort(usize),
    /// PE `i`'s cache evicted the line.
    Evict(usize),
}

impl fmt::Display for WitnessEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessEvent::CpuRead(i) => write!(f, "P{i} CPU read"),
            WitnessEvent::CpuWrite(i) => write!(f, "P{i} CPU write"),
            WitnessEvent::TsLock(i) => write!(f, "P{i} TS locked read"),
            WitnessEvent::TsCommit(i) => write!(f, "P{i} TS unlock write"),
            WitnessEvent::TsAbort(i) => write!(f, "P{i} TS abort"),
            WitnessEvent::Evict(i) => write!(f, "P{i} evict"),
        }
    }
}

/// The invariant a witness violates — the checkable pieces of the
/// Section 4 lemma and theorem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// The lemma's configuration half: the reached state vector is
    /// neither shared, local, nor (where allowed) intermediate.
    IllegalConfiguration,
    /// The lemma's value half: the owning cache does not hold the
    /// latest written value.
    OwnerStale,
    /// The lemma's value half: no cache owns the line yet memory is
    /// stale — the latest value has been lost.
    NoOwnerStaleMemory,
    /// The lemma's value half: a locally-readable copy is stale while
    /// no owner exists to supply the latest value.
    StaleReadableCopy,
    /// The theorem ("each PE always reads the latest value written"):
    /// a CPU read hit returned stale data.
    StaleReadHit,
    /// The theorem: a bus read (plain or locked) was served from stale
    /// memory with no owner interrupting to supply.
    StaleMemoryServed,
}

impl Invariant {
    /// A short stable identifier for assertions and reports.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::IllegalConfiguration => "illegal-configuration",
            Invariant::OwnerStale => "owner-stale",
            Invariant::NoOwnerStaleMemory => "no-owner-stale-memory",
            Invariant::StaleReadableCopy => "stale-readable-copy",
            Invariant::StaleReadHit => "stale-read-hit",
            Invariant::StaleMemoryServed => "stale-memory-served",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a witness: the event taken and the product state it
/// produced, rendered with the paper's state letters (a `*` marks
/// copies holding the latest written value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The event applied.
    pub event: WitnessEvent,
    /// The resulting product state, e.g. `"L* I NP | mem"`.
    pub state: String,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<18} => {}", self.event.to_string(), self.state)
    }
}

/// A reconstructed counterexample: the shortest event sequence from the
/// initial state to a state (or transition) violating an invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The violated invariant.
    pub invariant: Invariant,
    /// The checker's full violation message.
    pub message: String,
    /// The initial product state, rendered.
    pub initial: String,
    /// The events from the initial state to the violation, in order.
    /// The length equals the BFS depth of the violation — no shorter
    /// event sequence reaches it.
    pub steps: Vec<Step>,
}

impl Witness {
    /// The number of events in the witness (= the violation's BFS
    /// depth).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violated invariant: {}", self.invariant)?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "  witness ({} events):", self.steps.len())?;
        writeln!(f, "     start               {}", self.initial)?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>4}. {step}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_with_pe_attribution() {
        assert_eq!(WitnessEvent::CpuWrite(2).to_string(), "P2 CPU write");
        assert_eq!(WitnessEvent::TsLock(0).to_string(), "P0 TS locked read");
        assert_eq!(WitnessEvent::Evict(1).to_string(), "P1 evict");
    }

    #[test]
    fn invariant_names_are_stable() {
        assert_eq!(Invariant::StaleReadHit.name(), "stale-read-hit");
        assert_eq!(
            Invariant::IllegalConfiguration.to_string(),
            "illegal-configuration"
        );
    }

    #[test]
    fn witness_display_numbers_steps_from_the_initial_state() {
        let w = Witness {
            invariant: Invariant::OwnerStale,
            message: "RB: owner P0 does not hold the latest value".to_owned(),
            initial: "NP NP | mem*".to_owned(),
            steps: vec![
                Step {
                    event: WitnessEvent::CpuWrite(0),
                    state: "L* NP | mem".to_owned(),
                },
                Step {
                    event: WitnessEvent::CpuRead(1),
                    state: "R* R* | mem*".to_owned(),
                },
            ],
        };
        assert_eq!(w.depth(), 2);
        let text = w.to_string();
        assert!(text.contains("violated invariant: owner-stale"));
        assert!(text.contains("start"));
        assert!(text.contains("1. P0 CPU write"));
        assert!(text.contains("2. P1 CPU read"));
    }
}
