//! Monotonic-read checking on free-running concurrent machines.
//!
//! The serial oracle checks conducted (one-at-a-time) operations; this
//! checker attacks the *racing* case the paper's theorem is really
//! about: a writer streams ascending versions into a shared word while
//! readers hammer it concurrently. Coherence demands every reader's
//! observed sequence be **non-decreasing** — observing version 5 and
//! then version 3 means a stale copy was read after a newer value was
//! serialized, exactly the failure the Section 4 proof rules out.

use decache_core::ProtocolKind;
use decache_machine::{MachineBuilder, MemOp, OpResult, Poll, Processor};
use decache_mem::{Addr, Word};
use std::sync::{Arc, Mutex};

/// A reader that records every value it observes.
struct RecordingReader {
    addr: Addr,
    reads_left: u64,
    log: Arc<Mutex<Vec<u64>>>,
}

impl Processor for RecordingReader {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        if let Some(OpResult::Read(w)) = last {
            self.log
                .lock()
                .expect("reader log poisoned")
                .push(w.value());
        }
        if self.reads_left == 0 {
            return Poll::Halt;
        }
        self.reads_left -= 1;
        Poll::Op(MemOp::read(self.addr))
    }
}

/// The outcome of a monotonic-reads run.
#[derive(Debug, Clone)]
pub struct MonotonicReport {
    /// Values observed by each reader, in order.
    pub observations: Vec<Vec<u64>>,
    /// The number of versions the writer produced.
    pub versions: u64,
    /// Violations: `(reader, position, earlier value, later value)`.
    pub violations: Vec<(usize, usize, u64, u64)>,
}

impl MonotonicReport {
    /// `true` iff every reader's sequence was non-decreasing.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one writer streaming versions `1..=versions` into a shared word
/// against `readers` concurrent readers, and checks every observation
/// sequence for monotonicity.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_verify::check_monotonic_reads;
///
/// let report = check_monotonic_reads(ProtocolKind::Rwb, 3, 50);
/// assert!(report.holds());
/// ```
///
/// # Panics
///
/// Panics if the machine does not finish (it always does: both sides
/// issue a bounded number of operations).
pub fn check_monotonic_reads(kind: ProtocolKind, readers: usize, versions: u64) -> MonotonicReport {
    let addr = Addr::new(0);
    let logs: Vec<Arc<Mutex<Vec<u64>>>> = (0..readers)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();

    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(64).cache_lines(16);
    // The writer: one bus-visible version after another.
    let mut script = decache_machine::Script::new();
    for v in 1..=versions {
        script = script.write(addr, Word::new(v));
    }
    builder.processor(script.build());
    for log in &logs {
        builder.processor(Box::new(RecordingReader {
            addr,
            // Readers outlast the writer so late versions are observed.
            reads_left: versions * 2,
            log: Arc::clone(log),
        }));
    }
    let mut machine = builder.build();
    machine.run_to_completion(10_000_000);

    let observations: Vec<Vec<u64>> = logs
        .iter()
        .map(|l| l.lock().expect("reader log poisoned").clone())
        .collect();
    let mut violations = Vec::new();
    for (reader, seq) in observations.iter().enumerate() {
        for (i, pair) in seq.windows(2).enumerate() {
            if pair[1] < pair[0] {
                violations.push((reader, i, pair[0], pair[1]));
            }
        }
    }
    MonotonicReport {
        observations,
        versions,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_read_monotonically() {
        for kind in ProtocolKind::ALL {
            let report = check_monotonic_reads(kind, 3, 40);
            assert!(
                report.holds(),
                "{kind}: version regressions {:?}",
                report.violations
            );
            // Readers actually observed something.
            assert!(report.observations.iter().all(|o| !o.is_empty()));
        }
    }

    #[test]
    fn ablation_variants_read_monotonically() {
        for kind in [
            ProtocolKind::RbNoBroadcast,
            ProtocolKind::RwbThreshold(1),
            ProtocolKind::RwbThreshold(4),
        ] {
            assert!(check_monotonic_reads(kind, 2, 30).holds(), "{kind}");
        }
    }

    #[test]
    fn readers_eventually_see_the_final_version() {
        let report = check_monotonic_reads(ProtocolKind::Rwb, 2, 25);
        for obs in &report.observations {
            assert_eq!(*obs.last().unwrap(), 25, "reader ended on a stale version");
        }
    }

    #[test]
    fn many_readers_under_contention() {
        let report = check_monotonic_reads(ProtocolKind::Rb, 7, 60);
        assert!(report.holds(), "{:?}", report.violations);
    }
}
