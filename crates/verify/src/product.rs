//! The Section 4 product-machine model checker.

use decache_core::{
    BusIntent, Configuration, CpuOutcome, LineState, Protocol, ProtocolKind, SnoopEvent,
};
use decache_mem::Word;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// One cache's cell in the product state: the line state and whether the
/// cached copy equals the latest written value. `None` = not present
/// (the proof sketch's `NP` state).
type Cell = Option<(LineState, bool)>;

/// A state of the product machine for a single address.
///
/// "For each value of N (the number of processors), define a product
/// machine, M, as the collection of the N finite state automata plus one
/// more to represent the function of the common memory" (Section 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PState {
    cells: Vec<Cell>,
    /// Whether memory holds the latest written value ("the memory will be
    /// tagged with an L" initially).
    mem_latest: bool,
    /// Which cache holds the read-modify-write lock, if any.
    locked_by: Option<usize>,
}

impl PState {
    fn initial(n: usize) -> Self {
        PState {
            cells: vec![None; n],
            mem_latest: true,
            locked_by: None,
        }
    }

    fn held_states(&self) -> Vec<LineState> {
        self.cells
            .iter()
            .filter_map(|c| c.map(|(s, _)| s))
            .collect()
    }
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cell in &self.cells {
            match cell {
                None => write!(f, "NP ")?,
                Some((s, latest)) => write!(f, "{}{} ", s, if *latest { "*" } else { "" })?,
            }
        }
        write!(
            f,
            "| mem{}{}",
            if self.mem_latest { "*" } else { "" },
            match self.locked_by {
                Some(i) => format!(" locked-by-{i}"),
                None => String::new(),
            }
        )
    }
}

/// The events of the product machine. A `TsLock` begins a Test-and-Set's
/// locked read; the holder later either `TsCommit`s (the unlocking write
/// — the value looked free) or `TsAbort`s (it did not) —
/// nondeterministically, since the checker abstracts values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    CpuRead(usize),
    CpuWrite(usize),
    TsLock(usize),
    TsCommit(usize),
    TsAbort(usize),
    Evict(usize),
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ProductReport {
    /// Number of distinct reachable product states.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Invariant violations found (empty = the lemma and theorem hold).
    pub violations: Vec<String>,
    /// Every reachable configuration classification (for reporting).
    pub configurations: Vec<Configuration>,
}

impl ProductReport {
    /// `true` iff no violations were found.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explores the product machine of `n` caches plus memory
/// under a protocol, checking the Section 4 lemma and theorem at every
/// reachable state.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_verify::ProductChecker;
///
/// let report = ProductChecker::new(ProtocolKind::Rb, 3).explore();
/// assert!(report.holds());
/// assert!(report.states > 1);
/// ```
#[derive(Debug)]
pub struct ProductChecker {
    protocol: Box<dyn Protocol>,
    /// Whether the intermediate configuration is legal (RWB-family and
    /// write-once/write-through) or only shared/local (RB).
    allow_intermediate: bool,
    n: usize,
    evictions: bool,
    test_and_set: bool,
    max_states: usize,
}

impl ProductChecker {
    /// Creates a checker for `n` caches (the paper examines the machine
    /// for each N; state count grows exponentially, so keep `n ≤ 5`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(kind: ProtocolKind, n: usize) -> Self {
        let allow_intermediate = !matches!(kind, ProtocolKind::Rb | ProtocolKind::RbNoBroadcast);
        Self::from_protocol(kind.build(), allow_intermediate, n)
    }

    /// Creates a checker for an arbitrary [`Protocol`] implementation —
    /// including deliberately broken ones, for mutation-testing the
    /// checker itself. `allow_intermediate` selects the legality rule
    /// (false = RB's shared/local only).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn from_protocol(protocol: Box<dyn Protocol>, allow_intermediate: bool, n: usize) -> Self {
        assert!(n > 0, "the product machine needs at least one cache");
        ProductChecker {
            protocol,
            allow_intermediate,
            n,
            evictions: true,
            test_and_set: true,
            max_states: 5_000_000,
        }
    }

    /// Disables eviction events (the paper's first lemma assumes "the
    /// caches contain the entire address space so that the issue of
    /// overwrites can be ignored").
    #[must_use]
    pub fn without_evictions(mut self) -> Self {
        self.evictions = false;
        self
    }

    /// Disables Test-and-Set events, restricting to plain reads/writes.
    #[must_use]
    pub fn without_test_and_set(mut self) -> Self {
        self.test_and_set = false;
        self
    }

    fn legal(&self, c: Configuration) -> bool {
        if self.allow_intermediate {
            c.is_rwb_legal()
        } else {
            c.is_rb_legal()
        }
    }

    fn enabled_events(&self, s: &PState) -> Vec<Event> {
        let mut events = Vec::new();
        match s.locked_by {
            Some(h) => {
                // Between the locked read and the unlock, reads proceed,
                // writes are rejected by the lock, and the holder either
                // commits or aborts.
                for i in 0..self.n {
                    if i != h {
                        events.push(Event::CpuRead(i));
                    }
                }
                events.push(Event::TsCommit(h));
                events.push(Event::TsAbort(h));
            }
            None => {
                for i in 0..self.n {
                    events.push(Event::CpuRead(i));
                    events.push(Event::CpuWrite(i));
                    if self.test_and_set {
                        events.push(Event::TsLock(i));
                    }
                    if self.evictions && s.cells[i].is_some() {
                        events.push(Event::Evict(i));
                    }
                }
            }
        }
        events
    }

    /// Applies the effects of a completed bus read: memory (made current
    /// beforehand if a supplier interrupted) broadcasts the value to
    /// every snooping holder.
    fn bus_read_effects(&self, s: &mut PState, initiator: usize, locked: bool) {
        // Interrupt-and-supply: an owning cache kills the read, writes
        // its (latest) data to memory, and demotes. The initiator's own
        // cache participates: a locked read bypasses the cache, so an
        // issuer holding the line Local flushes it first (mirroring
        // `decache-machine`).
        if let Some(supplier) = (0..self.n)
            .find(|&j| s.cells[j].is_some_and(|(st, _)| self.protocol.supplies_on_snoop_read(st)))
        {
            let (st, latest) = s.cells[supplier].expect("supplier holds the line");
            s.mem_latest = latest;
            s.cells[supplier] = Some((self.protocol.after_supply(st), latest));
            // The substituted write is snooped by the other holders.
            let probe = Word::ZERO;
            for j in 0..self.n {
                if j == supplier || j == initiator {
                    continue;
                }
                if let Some((st, _)) = s.cells[j] {
                    let out = self.protocol.snoop(st, SnoopEvent::Write(probe));
                    // A capture copies the supplier's (latest) data.
                    let now_latest = out.capture && latest;
                    s.cells[j] = Some((out.next, now_latest));
                }
            }
        }
        // The (retried) read returns the memory value and broadcasts it.
        let probe = Word::ZERO;
        let event = if locked {
            SnoopEvent::LockedRead(probe)
        } else {
            SnoopEvent::Read(probe)
        };
        for j in 0..self.n {
            if j == initiator {
                continue;
            }
            if let Some((st, was_latest)) = s.cells[j] {
                let out = self.protocol.snoop(st, event);
                let now_latest = if out.capture {
                    s.mem_latest
                } else {
                    was_latest
                };
                s.cells[j] = Some((out.next, now_latest));
            }
        }
    }

    /// Applies the effects of a bus write (data or unlocking): memory is
    /// updated with the new latest value and every holder snoops it.
    fn bus_write_effects(&self, s: &mut PState, initiator: usize, unlock: bool) {
        s.mem_latest = true;
        let probe = Word::ZERO;
        let event = if unlock {
            SnoopEvent::UnlockWrite(probe)
        } else {
            SnoopEvent::Write(probe)
        };
        for j in 0..self.n {
            if j == initiator {
                continue;
            }
            if let Some((st, _)) = s.cells[j] {
                let out = self.protocol.snoop(st, event);
                // Whatever was cached is superseded; only captures of the
                // new value are latest.
                s.cells[j] = Some((out.next, out.capture));
            }
        }
    }

    /// Applies one event; returns the successor state, or `None` with a
    /// violation pushed.
    fn apply(&self, s: &PState, event: Event, violations: &mut Vec<String>) -> Option<PState> {
        let mut next = s.clone();
        match event {
            Event::CpuRead(i) => {
                let state_i = s.cells[i].map(|(st, _)| st);
                match self.protocol.cpu_read(state_i) {
                    CpuOutcome::Hit { next: to } => {
                        let (_, latest) = s.cells[i].expect("hit requires a held line");
                        // THE THEOREM: "Each PE always reads the latest
                        // value written."
                        if !latest {
                            violations.push(format!(
                                "{}: P{i} read HIT on stale data in {s}",
                                self.protocol.name()
                            ));
                        }
                        next.cells[i] = Some((to, latest));
                    }
                    CpuOutcome::Miss { intent } => {
                        debug_assert_eq!(intent, BusIntent::Read);
                        self.bus_read_effects(&mut next, i, false);
                        // The initiator reads from (now current) memory.
                        if !next.mem_latest {
                            violations.push(format!(
                                "{}: P{i} bus read served stale memory in {s}",
                                self.protocol.name()
                            ));
                        }
                        let to = self.protocol.own_complete(state_i, BusIntent::Read);
                        next.cells[i] = Some((to, next.mem_latest));
                    }
                }
            }
            Event::CpuWrite(i) => {
                let state_i = s.cells[i].map(|(st, _)| st);
                match self.protocol.cpu_write(state_i) {
                    CpuOutcome::Hit { next: to } => {
                        // A silent local write creates a new latest value
                        // visible only in this cache.
                        next.mem_latest = false;
                        for j in 0..self.n {
                            if j != i {
                                if let Some((st, _)) = next.cells[j] {
                                    next.cells[j] = Some((st, false));
                                }
                            }
                        }
                        next.cells[i] = Some((to, true));
                    }
                    CpuOutcome::Miss { intent } => {
                        match intent {
                            BusIntent::Write => {
                                self.bus_write_effects(&mut next, i, false);
                                let to = self.protocol.own_complete(state_i, BusIntent::Write);
                                next.cells[i] = Some((to, true));
                            }
                            BusIntent::Invalidate => {
                                // Event-only: memory keeps the OLD value.
                                next.mem_latest = false;
                                for j in 0..self.n {
                                    if j == i {
                                        continue;
                                    }
                                    if let Some((st, _)) = next.cells[j] {
                                        let out = self.protocol.snoop(st, SnoopEvent::Invalidate);
                                        next.cells[j] = Some((out.next, false));
                                    }
                                }
                                let to = self.protocol.own_complete(state_i, BusIntent::Invalidate);
                                next.cells[i] = Some((to, true));
                            }
                            BusIntent::Read => unreachable!("write misses never read"),
                        }
                    }
                }
            }
            Event::TsLock(i) => {
                // The locked read bypasses the cache, reads (current)
                // memory, and broadcasts.
                self.bus_read_effects(&mut next, i, true);
                if !next.mem_latest {
                    violations.push(format!(
                        "{}: P{i} locked read served stale memory in {s}",
                        self.protocol.name()
                    ));
                }
                let state_i = s.cells[i].map(|(st, _)| st);
                let to = self.protocol.own_locked_read_complete(state_i);
                next.cells[i] = Some((to, next.mem_latest));
                next.locked_by = Some(i);
            }
            Event::TsCommit(i) => {
                self.bus_write_effects(&mut next, i, true);
                let state_i = s.cells[i].map(|(st, _)| st);
                let to = self.protocol.own_unlock_write_complete(state_i);
                next.cells[i] = Some((to, true));
                next.locked_by = None;
            }
            Event::TsAbort(_i) => {
                // Release without writing: nothing changes but the lock.
                next.locked_by = None;
            }
            Event::Evict(i) => {
                let (st, latest) = s.cells[i].expect("evicting a held line");
                if self.protocol.writeback_on_evict(st) {
                    next.mem_latest = latest;
                }
                next.cells[i] = None;
            }
        }
        Some(next)
    }

    /// Checks the state invariants (the Lemma).
    fn check(&self, s: &PState, violations: &mut Vec<String>) -> Configuration {
        let config = Configuration::classify(&s.held_states());
        if !self.legal(config) {
            violations.push(format!(
                "{}: illegal configuration {config} in {s}",
                self.protocol.name()
            ));
        }
        // Value half of the lemma: "the latest value written is contained
        // either in some cache that is in state L or else in any cache
        // that contains this variable" (and in memory when no owner).
        let owner = (0..self.n).find(|&i| s.cells[i].is_some_and(|(st, _)| st.owns_latest()));
        match owner {
            Some(i) => {
                let (_, latest) = s.cells[i].expect("owner holds the line");
                if !latest {
                    violations.push(format!(
                        "{}: owner P{i} does not hold the latest value in {s}",
                        self.protocol.name()
                    ));
                }
            }
            None => {
                if !s.mem_latest {
                    violations.push(format!(
                        "{}: no owner and stale memory in {s}",
                        self.protocol.name()
                    ));
                }
                for i in 0..self.n {
                    if let Some((st, latest)) = s.cells[i] {
                        if st.is_readable_locally() && !latest {
                            violations.push(format!(
                                "{}: readable copy at P{i} is stale in {s}",
                                self.protocol.name()
                            ));
                        }
                    }
                }
            }
        }
        config
    }

    /// Runs the exhaustive breadth-first exploration.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds the safety bound (it cannot for
    /// the supported protocols and `n ≤ 5`).
    pub fn explore(&self) -> ProductReport {
        let mut seen: HashSet<PState> = HashSet::new();
        let mut queue: VecDeque<PState> = VecDeque::new();
        let mut violations = Vec::new();
        let mut configurations = HashSet::new();
        let mut transitions = 0usize;

        let initial = PState::initial(self.n);
        configurations.insert(self.check(&initial, &mut violations));
        seen.insert(initial.clone());
        queue.push_back(initial);

        while let Some(state) = queue.pop_front() {
            assert!(
                seen.len() <= self.max_states,
                "product machine exceeded {} states",
                self.max_states
            );
            for event in self.enabled_events(&state) {
                let Some(next) = self.apply(&state, event, &mut violations) else {
                    continue;
                };
                transitions += 1;
                if seen.insert(next.clone()) {
                    configurations.insert(self.check(&next, &mut violations));
                    queue.push_back(next);
                }
            }
            // Stop exploring on the first violations; they only multiply.
            if violations.len() > 16 {
                break;
            }
        }

        let mut configurations: Vec<Configuration> = configurations.into_iter().collect();
        configurations.sort_by_key(|c| format!("{c}"));
        ProductReport {
            states: seen.len(),
            transitions,
            violations,
            configurations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rb_lemma_and_theorem_hold_for_small_n() {
        for n in 1..=4 {
            let report = ProductChecker::new(ProtocolKind::Rb, n).explore();
            assert!(report.holds(), "n={n}: {:?}", report.violations);
            assert!(report.states > 0);
        }
    }

    #[test]
    fn rb_reaches_only_shared_and_local_configurations() {
        let report = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(report.holds());
        for c in &report.configurations {
            assert!(c.is_rb_legal(), "RB reached {c}");
        }
        assert!(report.configurations.contains(&Configuration::Shared));
        assert!(report.configurations.contains(&Configuration::Local));
    }

    #[test]
    fn rwb_adds_the_intermediate_configuration() {
        let report = ProductChecker::new(ProtocolKind::Rwb, 3).explore();
        assert!(report.holds(), "{:?}", report.violations);
        assert!(report.configurations.contains(&Configuration::Intermediate));
        assert!(!report.configurations.contains(&Configuration::Illegal));
    }

    #[test]
    fn rwb_k_thresholds_hold() {
        for k in [1, 3, 4] {
            let report = ProductChecker::new(ProtocolKind::RwbThreshold(k), 3).explore();
            assert!(report.holds(), "k={k}: {:?}", report.violations);
        }
    }

    #[test]
    fn baselines_hold() {
        for kind in [ProtocolKind::WriteOnce, ProtocolKind::WriteThrough] {
            let report = ProductChecker::new(kind, 3).explore();
            assert!(report.holds(), "{kind}: {:?}", report.violations);
        }
    }

    #[test]
    fn rb_without_broadcast_still_consistent() {
        // Disabling the read broadcast costs performance, not safety.
        let report = ProductChecker::new(ProtocolKind::RbNoBroadcast, 3).explore();
        assert!(report.holds(), "{:?}", report.violations);
    }

    #[test]
    fn no_evictions_matches_papers_simplified_lemma() {
        let report = ProductChecker::new(ProtocolKind::Rb, 3)
            .without_evictions()
            .explore();
        assert!(report.holds());
        // Without the NP state the machine is strictly smaller.
        let full = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(report.states < full.states);
    }

    #[test]
    fn without_ts_is_smaller_still() {
        let plain = ProductChecker::new(ProtocolKind::Rb, 3)
            .without_test_and_set()
            .explore();
        let with_ts = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(plain.holds());
        assert!(plain.states <= with_ts.states);
    }

    #[test]
    fn a_deliberately_broken_invariant_is_caught() {
        // Sanity-check the checker itself: classify a two-owner vector.
        assert_eq!(
            Configuration::classify(&[LineState::Local, LineState::Local]),
            Configuration::Illegal
        );
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_panics() {
        let _ = ProductChecker::new(ProtocolKind::Rb, 0);
    }
}
