//! The Section 4 product-machine model checker.

use crate::lint::{self, Coverage, LintReport};
use crate::witness::{Invariant, Step, Witness, WitnessEvent};
use decache_core::introspect::{SnoopKind, TableInput};
use decache_core::{
    BusIntent, Configuration, CpuOutcome, LineState, Protocol, ProtocolKind, SnoopEvent,
};
use decache_mem::Word;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// One cache's cell in the product state: the line state and whether the
/// cached copy equals the latest written value. `None` = not present
/// (the proof sketch's `NP` state).
type Cell = Option<(LineState, bool)>;

/// A state of the product machine for a single address.
///
/// "For each value of N (the number of processors), define a product
/// machine, M, as the collection of the N finite state automata plus one
/// more to represent the function of the common memory" (Section 4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PState {
    cells: Vec<Cell>,
    /// Whether memory holds the latest written value ("the memory will be
    /// tagged with an L" initially).
    mem_latest: bool,
    /// Which cache holds the read-modify-write lock, if any.
    locked_by: Option<usize>,
}

impl PState {
    fn initial(n: usize) -> Self {
        PState {
            cells: vec![None; n],
            mem_latest: true,
            locked_by: None,
        }
    }

    fn held_states(&self) -> Vec<LineState> {
        self.cells
            .iter()
            .filter_map(|c| c.map(|(s, _)| s))
            .collect()
    }
}

impl fmt::Display for PState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cell in &self.cells {
            match cell {
                None => write!(f, "NP ")?,
                Some((s, latest)) => write!(f, "{}{} ", s, if *latest { "*" } else { "" })?,
            }
        }
        write!(
            f,
            "| mem{}{}",
            if self.mem_latest { "*" } else { "" },
            match self.locked_by {
                Some(i) => format!(" locked-by-{i}"),
                None => String::new(),
            }
        )
    }
}

/// The events of the product machine. A `TsLock` begins a Test-and-Set's
/// locked read; the holder later either `TsCommit`s (the unlocking write
/// — the value looked free) or `TsAbort`s (it did not) —
/// nondeterministically, since the checker abstracts values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    CpuRead(usize),
    CpuWrite(usize),
    TsLock(usize),
    TsCommit(usize),
    TsAbort(usize),
    Evict(usize),
}

impl Event {
    fn witness(self) -> WitnessEvent {
        match self {
            Event::CpuRead(i) => WitnessEvent::CpuRead(i),
            Event::CpuWrite(i) => WitnessEvent::CpuWrite(i),
            Event::TsLock(i) => WitnessEvent::TsLock(i),
            Event::TsCommit(i) => WitnessEvent::TsCommit(i),
            Event::TsAbort(i) => WitnessEvent::TsAbort(i),
            Event::Evict(i) => WitnessEvent::Evict(i),
        }
    }
}

/// The result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ProductReport {
    /// Number of distinct reachable product states.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Invariant violations found (empty = the lemma and theorem hold).
    pub violations: Vec<String>,
    /// A shortest-path counterexample for the first violation found.
    pub witness: Option<Witness>,
    /// Every reachable configuration classification (for reporting).
    pub configurations: Vec<Configuration>,
    /// Which transition-table cells fired (input to the lint).
    pub coverage: Coverage,
}

impl ProductReport {
    /// `true` iff no violations were found.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explores the product machine of `n` caches plus memory
/// under a protocol, checking the Section 4 lemma and theorem at every
/// reachable state.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_verify::ProductChecker;
///
/// let report = ProductChecker::new(ProtocolKind::Rb, 3).explore();
/// assert!(report.holds());
/// assert!(report.states > 1);
/// ```
#[derive(Debug)]
pub struct ProductChecker {
    protocol: Box<dyn Protocol>,
    /// Whether the intermediate configuration is legal (RWB-family and
    /// write-once/write-through) or only shared/local (RB).
    allow_intermediate: bool,
    n: usize,
    evictions: bool,
    test_and_set: bool,
    max_states: usize,
}

/// The exploration bookkeeping: interned states, predecessor edges, and
/// the accumulating violation/witness record.
struct Exploration {
    states: Vec<PState>,
    index: HashMap<PState, usize>,
    /// For each state (except the initial), the predecessor state index
    /// and the event that produced it. BFS discovery order makes the
    /// parent chain a shortest path.
    parent: Vec<Option<(usize, Event)>>,
    violations: Vec<String>,
    witness: Option<Witness>,
    coverage: Coverage,
}

impl Exploration {
    fn new(n: usize) -> Self {
        let initial = PState::initial(n);
        Exploration {
            index: HashMap::from([(initial.clone(), 0)]),
            states: vec![initial],
            parent: vec![None],
            violations: Vec::new(),
            witness: None,
            coverage: Coverage::default(),
        }
    }

    /// The shortest event path from the initial state to `idx`.
    fn path_to(&self, mut idx: usize) -> Vec<Step> {
        let mut steps = Vec::new();
        while let Some((pred, event)) = self.parent[idx] {
            steps.push(Step {
                event: event.witness(),
                state: self.states[idx].to_string(),
            });
            idx = pred;
        }
        steps.reverse();
        steps
    }

    /// Records violations found *in* state `idx` (lemma checks); the
    /// witness is the path to the state itself.
    fn record_state_violations(&mut self, idx: usize, found: Vec<(Invariant, String)>) {
        for (invariant, message) in found {
            if self.witness.is_none() {
                self.witness = Some(Witness {
                    invariant,
                    message: message.clone(),
                    initial: self.states[0].to_string(),
                    steps: self.path_to(idx),
                });
            }
            self.violations.push(message);
        }
    }

    /// Records violations found *on* a transition out of state `idx`
    /// (theorem checks); the witness is the path to `idx` plus the
    /// violating event itself.
    fn record_transition_violations(
        &mut self,
        idx: usize,
        event: Event,
        successor: &PState,
        found: Vec<(Invariant, String)>,
    ) {
        for (invariant, message) in found {
            if self.witness.is_none() {
                let mut steps = self.path_to(idx);
                steps.push(Step {
                    event: event.witness(),
                    state: successor.to_string(),
                });
                self.witness = Some(Witness {
                    invariant,
                    message: message.clone(),
                    initial: self.states[0].to_string(),
                    steps,
                });
            }
            self.violations.push(message);
        }
    }
}

impl ProductChecker {
    /// Creates a checker for `n` caches (the paper examines the machine
    /// for each N; state count grows exponentially, so keep `n ≤ 5`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(kind: ProtocolKind, n: usize) -> Self {
        let allow_intermediate = !matches!(kind, ProtocolKind::Rb | ProtocolKind::RbNoBroadcast);
        Self::from_protocol(kind.build(), allow_intermediate, n)
    }

    /// Creates a checker for an arbitrary [`Protocol`] implementation —
    /// including deliberately broken ones, for mutation-testing the
    /// checker itself. `allow_intermediate` selects the legality rule
    /// (false = RB's shared/local only).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn from_protocol(protocol: Box<dyn Protocol>, allow_intermediate: bool, n: usize) -> Self {
        assert!(n > 0, "the product machine needs at least one cache");
        ProductChecker {
            protocol,
            allow_intermediate,
            n,
            evictions: true,
            test_and_set: true,
            max_states: 5_000_000,
        }
    }

    /// Disables eviction events (the paper's first lemma assumes "the
    /// caches contain the entire address space so that the issue of
    /// overwrites can be ignored").
    #[must_use]
    pub fn without_evictions(mut self) -> Self {
        self.evictions = false;
        self
    }

    /// Disables Test-and-Set events, restricting to plain reads/writes.
    #[must_use]
    pub fn without_test_and_set(mut self) -> Self {
        self.test_and_set = false;
        self
    }

    /// The display name of the protocol under check.
    pub fn protocol_name(&self) -> String {
        self.protocol.name()
    }

    fn legal(&self, c: Configuration) -> bool {
        if self.allow_intermediate {
            c.is_rwb_legal()
        } else {
            c.is_rb_legal()
        }
    }

    fn enabled_events(&self, s: &PState) -> Vec<Event> {
        let mut events = Vec::new();
        match s.locked_by {
            Some(h) => {
                // Between the locked read and the unlock, reads proceed,
                // writes are rejected by the lock, and the holder either
                // commits or aborts.
                for i in 0..self.n {
                    if i != h {
                        events.push(Event::CpuRead(i));
                    }
                }
                events.push(Event::TsCommit(h));
                events.push(Event::TsAbort(h));
            }
            None => {
                for i in 0..self.n {
                    events.push(Event::CpuRead(i));
                    events.push(Event::CpuWrite(i));
                    if self.test_and_set {
                        events.push(Event::TsLock(i));
                    }
                    if self.evictions && s.cells[i].is_some() {
                        events.push(Event::Evict(i));
                    }
                }
            }
        }
        events
    }

    /// Applies the effects of a completed bus read: memory (made current
    /// beforehand if a supplier interrupted) broadcasts the value to
    /// every snooping holder. Returns whether any *other* cache held the
    /// line readable — the sharer bit for guarded fills, sampled after
    /// the supply settles but before the broadcast, exactly where the
    /// machine samples it.
    fn bus_read_effects(
        &self,
        s: &mut PState,
        initiator: usize,
        locked: bool,
        cov: &mut Coverage,
    ) -> bool {
        // Interrupt-and-supply: an owning cache kills the read, writes
        // its (latest) data to memory, and demotes. The initiator's own
        // cache participates: a locked read bypasses the cache, so an
        // issuer holding the line Local flushes it first (mirroring
        // `decache-machine`).
        if let Some(supplier) = (0..self.n)
            .find(|&j| s.cells[j].is_some_and(|(st, _)| self.protocol.supplies_on_snoop_read(st)))
        {
            let (st, latest) = s.cells[supplier].expect("supplier holds the line");
            cov.record(Some(st), TableInput::Supply);
            s.mem_latest = latest;
            s.cells[supplier] = Some((self.protocol.after_supply(st), latest));
            // The substituted write is snooped by the other holders.
            let probe = Word::ZERO;
            for j in 0..self.n {
                if j == supplier || j == initiator {
                    continue;
                }
                if let Some((st, _)) = s.cells[j] {
                    cov.record(Some(st), TableInput::Snoop(SnoopKind::Write));
                    let out = self.protocol.snoop(st, SnoopEvent::Write(probe));
                    // A capture copies the supplier's (latest) data.
                    let now_latest = out.capture && latest;
                    s.cells[j] = Some((out.next, now_latest));
                }
            }
        }
        let shared = (0..self.n)
            .any(|j| j != initiator && s.cells[j].is_some_and(|(st, _)| st.is_readable_locally()));
        // The (retried) read returns the memory value and broadcasts it.
        let probe = Word::ZERO;
        let (event, kind) = if locked {
            (SnoopEvent::LockedRead(probe), SnoopKind::LockedRead)
        } else {
            (SnoopEvent::Read(probe), SnoopKind::Read)
        };
        for j in 0..self.n {
            if j == initiator {
                continue;
            }
            if let Some((st, was_latest)) = s.cells[j] {
                cov.record(Some(st), TableInput::Snoop(kind));
                let out = self.protocol.snoop(st, event);
                let now_latest = if out.capture {
                    s.mem_latest
                } else {
                    was_latest
                };
                s.cells[j] = Some((out.next, now_latest));
            }
        }
        shared
    }

    /// Applies the effects of a bus write (data or unlocking): memory is
    /// updated with the new latest value and every holder snoops it.
    fn bus_write_effects(
        &self,
        s: &mut PState,
        initiator: usize,
        unlock: bool,
        cov: &mut Coverage,
    ) {
        s.mem_latest = true;
        let probe = Word::ZERO;
        let (event, kind) = if unlock {
            (SnoopEvent::UnlockWrite(probe), SnoopKind::UnlockWrite)
        } else {
            (SnoopEvent::Write(probe), SnoopKind::Write)
        };
        for j in 0..self.n {
            if j == initiator {
                continue;
            }
            if let Some((st, _)) = s.cells[j] {
                cov.record(Some(st), TableInput::Snoop(kind));
                let out = self.protocol.snoop(st, event);
                // Whatever was cached is superseded; only captures of the
                // new value are latest.
                s.cells[j] = Some((out.next, out.capture));
            }
        }
    }

    /// Applies one event, recording table coverage and any transition
    /// (theorem) violations; returns the successor state.
    fn apply(
        &self,
        s: &PState,
        event: Event,
        violations: &mut Vec<(Invariant, String)>,
        cov: &mut Coverage,
    ) -> PState {
        let mut next = s.clone();
        match event {
            Event::CpuRead(i) => {
                let state_i = s.cells[i].map(|(st, _)| st);
                cov.record(state_i, TableInput::CpuRead);
                match self.protocol.cpu_read(state_i) {
                    CpuOutcome::Hit { next: to } => {
                        let (_, latest) = s.cells[i].expect("hit requires a held line");
                        // THE THEOREM: "Each PE always reads the latest
                        // value written."
                        if !latest {
                            violations.push((
                                Invariant::StaleReadHit,
                                format!(
                                    "{}: P{i} read HIT on stale data in {s}",
                                    self.protocol.name()
                                ),
                            ));
                        }
                        next.cells[i] = Some((to, latest));
                    }
                    CpuOutcome::Miss { intent } => {
                        debug_assert_eq!(intent, BusIntent::Read);
                        let shared = self.bus_read_effects(&mut next, i, false, cov);
                        // The initiator reads from (now current) memory.
                        if !next.mem_latest {
                            violations.push((
                                Invariant::StaleMemoryServed,
                                format!(
                                    "{}: P{i} bus read served stale memory in {s}",
                                    self.protocol.name()
                                ),
                            ));
                        }
                        cov.record(state_i, TableInput::OwnComplete(BusIntent::Read));
                        let to =
                            self.protocol
                                .own_complete_shared(state_i, BusIntent::Read, shared);
                        next.cells[i] = Some((to, next.mem_latest));
                    }
                }
            }
            Event::CpuWrite(i) => {
                let state_i = s.cells[i].map(|(st, _)| st);
                cov.record(state_i, TableInput::CpuWrite);
                match self.protocol.cpu_write(state_i) {
                    CpuOutcome::Hit { next: to } => {
                        // A silent local write creates a new latest value
                        // visible only in this cache.
                        next.mem_latest = false;
                        for j in 0..self.n {
                            if j != i {
                                if let Some((st, _)) = next.cells[j] {
                                    next.cells[j] = Some((st, false));
                                }
                            }
                        }
                        next.cells[i] = Some((to, true));
                    }
                    CpuOutcome::Miss { intent } => {
                        match intent {
                            BusIntent::Write => {
                                self.bus_write_effects(&mut next, i, false, cov);
                                cov.record(state_i, TableInput::OwnComplete(BusIntent::Write));
                                let to = self.protocol.own_complete(state_i, BusIntent::Write);
                                next.cells[i] = Some((to, true));
                            }
                            BusIntent::Invalidate => {
                                // Event-only: memory keeps the OLD value.
                                next.mem_latest = false;
                                for j in 0..self.n {
                                    if j == i {
                                        continue;
                                    }
                                    if let Some((st, _)) = next.cells[j] {
                                        cov.record(
                                            Some(st),
                                            TableInput::Snoop(SnoopKind::Invalidate),
                                        );
                                        let out = self.protocol.snoop(st, SnoopEvent::Invalidate);
                                        next.cells[j] = Some((out.next, false));
                                    }
                                }
                                cov.record(state_i, TableInput::OwnComplete(BusIntent::Invalidate));
                                let to = self.protocol.own_complete(state_i, BusIntent::Invalidate);
                                next.cells[i] = Some((to, true));
                            }
                            BusIntent::Read => unreachable!("write misses never read"),
                        }
                    }
                }
            }
            Event::TsLock(i) => {
                // The locked read bypasses the cache, reads (current)
                // memory, and broadcasts.
                let _ = self.bus_read_effects(&mut next, i, true, cov);
                if !next.mem_latest {
                    violations.push((
                        Invariant::StaleMemoryServed,
                        format!(
                            "{}: P{i} locked read served stale memory in {s}",
                            self.protocol.name()
                        ),
                    ));
                }
                let state_i = s.cells[i].map(|(st, _)| st);
                cov.record(state_i, TableInput::OwnLockedRead);
                let to = self.protocol.own_locked_read_complete(state_i);
                next.cells[i] = Some((to, next.mem_latest));
                next.locked_by = Some(i);
            }
            Event::TsCommit(i) => {
                self.bus_write_effects(&mut next, i, true, cov);
                let state_i = s.cells[i].map(|(st, _)| st);
                cov.record(state_i, TableInput::OwnUnlockWrite);
                let to = self.protocol.own_unlock_write_complete(state_i);
                next.cells[i] = Some((to, true));
                next.locked_by = None;
            }
            Event::TsAbort(_i) => {
                // Release without writing: nothing changes but the lock.
                next.locked_by = None;
            }
            Event::Evict(i) => {
                let (st, latest) = s.cells[i].expect("evicting a held line");
                cov.record(Some(st), TableInput::Evict);
                if self.protocol.writeback_on_evict(st) {
                    next.mem_latest = latest;
                }
                next.cells[i] = None;
            }
        }
        next
    }

    /// Checks the state invariants (the Lemma).
    fn check(&self, s: &PState, violations: &mut Vec<(Invariant, String)>) -> Configuration {
        let config = Configuration::classify(&s.held_states());
        if !self.legal(config) {
            violations.push((
                Invariant::IllegalConfiguration,
                format!(
                    "{}: illegal configuration {config} in {s}",
                    self.protocol.name()
                ),
            ));
        }
        // Value half of the lemma: "the latest value written is contained
        // either in some cache that is in state L or else in any cache
        // that contains this variable" (and in memory when no owner).
        let owner = (0..self.n).find(|&i| s.cells[i].is_some_and(|(st, _)| st.owns_latest()));
        match owner {
            Some(i) => {
                let (_, latest) = s.cells[i].expect("owner holds the line");
                if !latest {
                    violations.push((
                        Invariant::OwnerStale,
                        format!(
                            "{}: owner P{i} does not hold the latest value in {s}",
                            self.protocol.name()
                        ),
                    ));
                }
            }
            None => {
                if !s.mem_latest {
                    violations.push((
                        Invariant::NoOwnerStaleMemory,
                        format!("{}: no owner and stale memory in {s}", self.protocol.name()),
                    ));
                }
                for i in 0..self.n {
                    if let Some((st, latest)) = s.cells[i] {
                        if st.is_readable_locally() && !latest {
                            violations.push((
                                Invariant::StaleReadableCopy,
                                format!(
                                    "{}: readable copy at P{i} is stale in {s}",
                                    self.protocol.name()
                                ),
                            ));
                        }
                    }
                }
            }
        }
        config
    }

    /// Runs the exhaustive breadth-first exploration.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds the safety bound (it cannot for
    /// the supported protocols and `n ≤ 5`).
    pub fn explore(&self) -> ProductReport {
        let mut exp = Exploration::new(self.n);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        let mut configurations = HashSet::new();
        let mut transitions = 0usize;

        let mut found = Vec::new();
        configurations.insert(self.check(&exp.states[0], &mut found));
        exp.record_state_violations(0, found);

        while let Some(idx) = queue.pop_front() {
            assert!(
                exp.states.len() <= self.max_states,
                "product machine exceeded {} states",
                self.max_states
            );
            let state = exp.states[idx].clone();
            for event in self.enabled_events(&state) {
                let mut found = Vec::new();
                let next = self.apply(&state, event, &mut found, &mut exp.coverage);
                transitions += 1;
                if !found.is_empty() {
                    exp.record_transition_violations(idx, event, &next, found);
                }
                if !exp.index.contains_key(&next) {
                    let ni = exp.states.len();
                    exp.index.insert(next.clone(), ni);
                    exp.parent.push(Some((idx, event)));
                    for (st, _) in next.cells.iter().flatten() {
                        exp.coverage.see_state(*st);
                    }
                    let mut found = Vec::new();
                    configurations.insert(self.check(&next, &mut found));
                    exp.states.push(next);
                    exp.record_state_violations(ni, found);
                    queue.push_back(ni);
                }
            }
            // Stop exploring on the first violations; they only multiply.
            if exp.violations.len() > 16 {
                break;
            }
        }

        let mut configurations: Vec<Configuration> = configurations.into_iter().collect();
        configurations.sort_by_key(|c| format!("{c}"));
        ProductReport {
            states: exp.states.len(),
            transitions,
            violations: exp.violations,
            witness: exp.witness,
            configurations,
            coverage: exp.coverage,
        }
    }

    /// Builds the dead-transition lint report from an exploration of
    /// this checker (see [`crate::lint`]). The lint domain respects this
    /// checker's event restrictions, so `without_evictions` /
    /// `without_test_and_set` do not surface disabled families as dead.
    pub fn lint(&self, report: &ProductReport) -> LintReport {
        lint::build_report(
            self.protocol.as_ref(),
            &report.coverage,
            self.n,
            self.evictions,
            self.test_and_set,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rb_lemma_and_theorem_hold_for_small_n() {
        for n in 1..=4 {
            let report = ProductChecker::new(ProtocolKind::Rb, n).explore();
            assert!(report.holds(), "n={n}: {:?}", report.violations);
            assert!(report.states > 0);
            assert!(report.witness.is_none());
        }
    }

    #[test]
    fn rb_reaches_only_shared_and_local_configurations() {
        let report = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(report.holds());
        for c in &report.configurations {
            assert!(c.is_rb_legal(), "RB reached {c}");
        }
        assert!(report.configurations.contains(&Configuration::Shared));
        assert!(report.configurations.contains(&Configuration::Local));
    }

    #[test]
    fn rwb_adds_the_intermediate_configuration() {
        let report = ProductChecker::new(ProtocolKind::Rwb, 3).explore();
        assert!(report.holds(), "{:?}", report.violations);
        assert!(report.configurations.contains(&Configuration::Intermediate));
        assert!(!report.configurations.contains(&Configuration::Illegal));
    }

    #[test]
    fn rwb_k_thresholds_hold() {
        for k in [1, 3, 4] {
            let report = ProductChecker::new(ProtocolKind::RwbThreshold(k), 3).explore();
            assert!(report.holds(), "k={k}: {:?}", report.violations);
        }
    }

    #[test]
    fn baselines_hold() {
        for kind in [ProtocolKind::WriteOnce, ProtocolKind::WriteThrough] {
            let report = ProductChecker::new(kind, 3).explore();
            assert!(report.holds(), "{kind}: {:?}", report.violations);
        }
    }

    #[test]
    fn mesi_table_protocol_lemma_and_theorem_hold() {
        // MESI exists only as IR data; the generic interpreter must
        // satisfy the same lemma/theorem as the hand-coded protocols.
        for n in 1..=4 {
            let report = ProductChecker::new(ProtocolKind::Mesi, n).explore();
            assert!(report.holds(), "n={n}: {:?}", report.violations);
        }
        // The exclusive-clean fill actually happens: a lone reader's
        // line classifies as Intermediate (E), not just Shared.
        let report = ProductChecker::new(ProtocolKind::Mesi, 3).explore();
        assert!(report.configurations.contains(&Configuration::Intermediate));
    }

    #[test]
    fn rb_without_broadcast_still_consistent() {
        // Disabling the read broadcast costs performance, not safety.
        let report = ProductChecker::new(ProtocolKind::RbNoBroadcast, 3).explore();
        assert!(report.holds(), "{:?}", report.violations);
    }

    #[test]
    fn no_evictions_matches_papers_simplified_lemma() {
        let report = ProductChecker::new(ProtocolKind::Rb, 3)
            .without_evictions()
            .explore();
        assert!(report.holds());
        // Without the NP state the machine is strictly smaller.
        let full = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(report.states < full.states);
    }

    #[test]
    fn without_ts_is_smaller_still() {
        let plain = ProductChecker::new(ProtocolKind::Rb, 3)
            .without_test_and_set()
            .explore();
        let with_ts = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        assert!(plain.holds());
        assert!(plain.states <= with_ts.states);
    }

    #[test]
    fn a_deliberately_broken_invariant_is_caught() {
        // Sanity-check the checker itself: classify a two-owner vector.
        assert_eq!(
            Configuration::classify(&[LineState::Local, LineState::Local]),
            Configuration::Illegal
        );
    }

    #[test]
    fn coverage_fires_the_live_rb_rows() {
        let report = ProductChecker::new(ProtocolKind::Rb, 3).explore();
        let cov = &report.coverage;
        // The dynamic-classification core: a write-through makes the
        // writer local, a read broadcast re-shares.
        assert!(cov.has_fired(Some(LineState::Readable), TableInput::CpuWrite));
        assert!(cov.has_fired(Some(LineState::Local), TableInput::Supply));
        assert!(cov.has_fired(Some(LineState::Invalid), TableInput::Snoop(SnoopKind::Read)));
        assert!(cov.has_fired(None, TableInput::CpuRead));
        // But an owner can never snoop a plain bus read: the supply path
        // always intercepts first.
        assert!(!cov.has_fired(Some(LineState::Local), TableInput::Snoop(SnoopKind::Read)));
        assert!(cov.state_reached(LineState::Local));
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_caches_panics() {
        let _ = ProductChecker::new(ProtocolKind::Rb, 0);
    }
}
