//! # decache-verify
//!
//! The paper's Section 4 consistency proof, made executable.
//!
//! Two complementary checkers:
//!
//! * [`ProductChecker`] — the proof's **product machine**, literally: for
//!   one address and `N` caches (plus the memory automaton, "cache 0"),
//!   it enumerates every state reachable from the initial
//!   `L₀ I₁ … I_N` configuration under all interleavings of CPU reads,
//!   writes, Test-and-Set cycles, and evictions, and checks at every
//!   state that
//!   1. the configuration is *shared* or *local* (plus RWB's
//!      *intermediate*) — the Lemma, and
//!   2. the latest value written is held by the `L`-state cache if one
//!      exists, else by memory and every readable copy — the value half
//!      of the Lemma, and
//!   3. every CPU read hit returns the latest value — the Theorem.
//! * [`SerialOracle`] — a randomized end-to-end check of the *real*
//!   simulator in `decache-machine` against a flat reference memory:
//!   conducted operations are serialized one at a time, so every read
//!   must observe exactly the reference value, and after every operation
//!   the machine's caches and memory must agree with the reference
//!   (owners hold the latest value; readable copies match it).
//!
//! A third check, [`check_monotonic_reads`], attacks the *racing* case
//! directly: concurrent readers of a streamed shared word must never
//! observe a version regression.
//!
//! Around the product machine sit three static-analysis companions:
//!
//! * **Witness traces** ([`Witness`]) — any invariant violation is
//!   reconstructed as the shortest event sequence from the initial
//!   state to the bad configuration, rendered with the paper's state
//!   letters.
//! * **Dead-transition lint** ([`lint`], [`ProductChecker::lint`]) —
//!   transition-table rows that can never fire, unreachable states,
//!   and non-total handling under exhaustive exploration at one `n`.
//! * **Static analyzer gate** ([`static_check`]) — per-rule proofs of
//!   totality, determinism, PE-symmetry, and invariant preservation
//!   over **all** cache counts at once via
//!   [`decache_protocol_ir`]'s counting abstraction, whose dead-rule
//!   detection subsumes the dynamic lint; pinned by
//!   `static_baseline.txt` and gated in CI by the `protocol_lint`
//!   binary.
//! * **Live conformance oracle** ([`Refinement`]) — subscribes to a
//!   running [`decache_machine::Machine`]'s observation stream and
//!   replays every simulator step against the pure protocol tables,
//!   flagging any step the product model does not allow.
//!
//! Together these give the repository's strongest guarantee: the
//! protocol *specifications* are consistent (product machine), and the
//! *implementation* refines them (oracles + monotonic reads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod lint;
mod monotonic;
mod oracle;
mod product;
pub mod static_check;
mod witness;

pub use conformance::{ConformanceError, Refinement};
pub use lint::{Coverage, LintReport};
pub use monotonic::{check_monotonic_reads, MonotonicReport};
pub use oracle::{OracleError, OracleReport, SerialOracle};
pub use product::{ProductChecker, ProductReport};
pub use witness::{Invariant, Step, Witness, WitnessEvent};
