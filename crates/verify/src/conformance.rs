//! Live conformance oracle: replays the simulator's observed protocol
//! steps against the Section 4 product model.
//!
//! A [`Refinement`] subscribes to a [`Machine`]'s structured
//! [`Observer`](decache_machine::Observer) stream and maintains a
//! *shadow* per-address state vector — one `Option<LineState>` per PE,
//! exactly the product checker's cells. Every observation is checked
//! against what the pure [`Protocol`] tables allow from the shadow
//! state, and the shadow is advanced by the same table entries. Any
//! simulator step the model does not allow (a hit where the table says
//! miss, a missing interrupt-and-supply, a wrong writeback decision, an
//! illegal configuration after a completion) is recorded as a
//! [`ConformanceError`].
//!
//! The oracle is **pure**: it observes but never influences the
//! machine, so attaching it cannot perturb any simulated statistic —
//! the fingerprint suite asserts exactly that.
//!
//! # Examples
//!
//! ```
//! use decache_core::ProtocolKind;
//! use decache_machine::{MachineBuilder, Script};
//! use decache_mem::{Addr, Word};
//! use decache_verify::Refinement;
//!
//! let oracle = Refinement::new(ProtocolKind::Rb, 2);
//! let mut machine = MachineBuilder::new(ProtocolKind::Rb)
//!     .processor(Script::new().write(Addr::new(0), Word::ONE).build())
//!     .processor(Script::new().read(Addr::new(0)).build())
//!     .observer(oracle.observer())
//!     .build();
//! machine.run_to_completion(1_000);
//! oracle.assert_clean();
//! ```

use decache_core::{Configuration, CpuOutcome, LineState, Protocol, ProtocolKind, SnoopEvent};
use decache_machine::{CpuDecision, Observation, Observer};
use decache_mem::Word;
use std::fmt;
use std::sync::{Arc, Mutex};

/// How many errors the oracle keeps before it stops recording (the
/// first is almost always the interesting one; the rest are cascade).
const MAX_ERRORS: usize = 32;

/// One simulator step the product model does not allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceError {
    /// The bus cycle of the offending observation.
    pub cycle: u64,
    /// What the model expected versus what the machine did.
    pub message: String,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {:>5}] {}", self.cycle, self.message)
    }
}

/// The shared oracle state: the shadow cache model and the error log.
#[derive(Debug)]
struct Inner {
    protocol: Box<dyn Protocol>,
    allow_intermediate: bool,
    n: usize,
    /// Shadow line states per address: `lines[addr][pe]`, `None` = NP.
    /// Absent addresses are all-NP.
    lines: std::collections::HashMap<u64, Vec<Option<LineState>>>,
    errors: Vec<ConformanceError>,
    steps: u64,
}

impl Inner {
    fn cells(&mut self, addr: u64) -> &mut Vec<Option<LineState>> {
        let n = self.n;
        self.lines.entry(addr).or_insert_with(|| vec![None; n])
    }

    fn fail(&mut self, cycle: u64, message: String) {
        if self.errors.len() < MAX_ERRORS {
            self.errors.push(ConformanceError { cycle, message });
        }
    }

    /// Checks the lemma's configuration half on the shadow states of
    /// one address after a completion.
    fn check_configuration(&mut self, cycle: u64, addr: u64) {
        let held: Vec<LineState> = self
            .lines
            .get(&addr)
            .map(|cells| cells.iter().flatten().copied().collect())
            .unwrap_or_default();
        let config = Configuration::classify(&held);
        let legal = if self.allow_intermediate {
            config.is_rwb_legal()
        } else {
            config.is_rb_legal()
        };
        if !legal {
            let name = self.protocol.name();
            self.fail(
                cycle,
                format!("{name}: illegal configuration {config} at addr {addr} ({held:?})"),
            );
        }
    }

    /// Applies a snoop event to every holder except the listed PEs.
    fn snoop_others(&mut self, addr: u64, event: SnoopEvent, except: &[usize]) {
        let protocol = &self.protocol;
        let cells = {
            let n = self.n;
            self.lines.entry(addr).or_insert_with(|| vec![None; n])
        };
        for (j, cell) in cells.iter_mut().enumerate() {
            if except.contains(&j) {
                continue;
            }
            if let Some(st) = *cell {
                *cell = Some(protocol.snoop(st, event).next);
            }
        }
    }

    fn observe(&mut self, cycle: u64, observation: &Observation) {
        self.steps += 1;
        // Snoop decisions ignore the bus payload, so a zero probe is
        // exact for state tracking.
        let probe = Word::ZERO;
        match *observation {
            Observation::CpuAccess {
                pe,
                addr,
                write,
                decision,
            } => {
                let addr = addr.index();
                let state = self.cells(addr)[pe];
                let expected = if write {
                    self.protocol.cpu_write(state)
                } else {
                    self.protocol.cpu_read(state)
                };
                let kind = if write { "write" } else { "read" };
                match (expected, decision) {
                    (CpuOutcome::Hit { next }, CpuDecision::Hit) => {
                        self.cells(addr)[pe] = Some(next);
                    }
                    (CpuOutcome::Miss { intent }, CpuDecision::Miss(observed))
                        if intent == observed => {}
                    (expected, observed) => {
                        let name = self.protocol.name();
                        self.fail(
                            cycle,
                            format!(
                                "{name}: P{pe} CPU {kind} at addr {addr} in {state:?}: \
                                 model says {expected:?}, machine did {observed:?}"
                            ),
                        );
                    }
                }
            }
            Observation::LockedReadIssued { .. } => {
                // Always a bus operation; nothing to check at issue time.
            }
            Observation::Supplied {
                supplier,
                initiator,
                addr,
            } => {
                let addr = addr.index();
                let state = self.cells(addr)[supplier];
                match state {
                    Some(st) if self.protocol.supplies_on_snoop_read(st) => {
                        self.cells(addr)[supplier] = Some(self.protocol.after_supply(st));
                        // The substituted bus write is snooped by the
                        // other holders (the initiator's read retries).
                        self.snoop_others(addr, SnoopEvent::Write(probe), &[supplier, initiator]);
                    }
                    _ => {
                        let name = self.protocol.name();
                        self.fail(
                            cycle,
                            format!(
                                "{name}: P{supplier} supplied addr {addr} from {state:?}, \
                                 which the model says cannot supply"
                            ),
                        );
                    }
                }
            }
            Observation::ReadCompleted { pe, addr, locked } => {
                let addr = addr.index();
                // If any other holder still owes a supply, the machine
                // let a read complete from stale memory.
                let cells = self.cells(addr).clone();
                let skipped = cells.iter().enumerate().find(|&(j, cell)| {
                    j != pe && cell.is_some_and(|st| self.protocol.supplies_on_snoop_read(st))
                });
                if let Some((j, _)) = skipped {
                    let name = self.protocol.name();
                    self.fail(
                        cycle,
                        format!(
                            "{name}: P{pe} read of addr {addr} completed while P{j} \
                             still owes an interrupt-and-supply"
                        ),
                    );
                }
                // The sharer bit for guarded fills: any *other* holder
                // still readable, sampled post-supply (any Supplied
                // observation already replayed) and pre-broadcast —
                // exactly where the machine samples it.
                let shared = cells
                    .iter()
                    .enumerate()
                    .any(|(j, cell)| j != pe && cell.is_some_and(LineState::is_readable_locally));
                let event = if locked {
                    SnoopEvent::LockedRead(probe)
                } else {
                    SnoopEvent::Read(probe)
                };
                self.snoop_others(addr, event, &[pe]);
                let state = self.cells(addr)[pe];
                let next = if locked {
                    self.protocol.own_locked_read_complete(state)
                } else {
                    self.protocol
                        .own_complete_shared(state, decache_core::BusIntent::Read, shared)
                };
                self.cells(addr)[pe] = Some(next);
                self.check_configuration(cycle, addr);
            }
            Observation::WriteCompleted { pe, addr, unlock } => {
                let addr = addr.index();
                let event = if unlock {
                    SnoopEvent::UnlockWrite(probe)
                } else {
                    SnoopEvent::Write(probe)
                };
                self.snoop_others(addr, event, &[pe]);
                let state = self.cells(addr)[pe];
                let next = if unlock {
                    self.protocol.own_unlock_write_complete(state)
                } else {
                    self.protocol
                        .own_complete(state, decache_core::BusIntent::Write)
                };
                self.cells(addr)[pe] = Some(next);
                self.check_configuration(cycle, addr);
            }
            Observation::InvalidateCompleted { pe, addr } => {
                let addr = addr.index();
                self.snoop_others(addr, SnoopEvent::Invalidate, &[pe]);
                let state = self.cells(addr)[pe];
                let next = self
                    .protocol
                    .own_complete(state, decache_core::BusIntent::Invalidate);
                self.cells(addr)[pe] = Some(next);
                self.check_configuration(cycle, addr);
            }
            Observation::BroadcastSatisfied { pe, addr } => {
                let addr = addr.index();
                // The snoop that satisfied the read already ran via
                // ReadCompleted/WriteCompleted; the line must now be
                // locally readable or the machine returned garbage.
                let state = self.cells(addr)[pe];
                let readable = state.is_some_and(LineState::is_readable_locally);
                if !readable {
                    let name = self.protocol.name();
                    self.fail(
                        cycle,
                        format!(
                            "{name}: P{pe} read of addr {addr} satisfied by broadcast \
                             but its shadow line is {state:?}"
                        ),
                    );
                }
            }
            Observation::Evicted {
                pe,
                addr,
                writeback,
            } => {
                let addr = addr.index();
                let state = self.cells(addr)[pe];
                match state {
                    Some(st) => {
                        let expected = self.protocol.writeback_on_evict(st);
                        if expected != writeback {
                            let name = self.protocol.name();
                            self.fail(
                                cycle,
                                format!(
                                    "{name}: P{pe} evicted addr {addr} in {st} with \
                                     writeback={writeback}, model says {expected}"
                                ),
                            );
                        }
                        self.cells(addr)[pe] = None;
                    }
                    None => {
                        let name = self.protocol.name();
                        self.fail(
                            cycle,
                            format!("{name}: P{pe} evicted addr {addr} it does not hold"),
                        );
                    }
                }
            }
            Observation::FaultInjected { .. } | Observation::FaultDetected { .. } => {
                // Injection touches data and parity, never protocol
                // state; detection is pure bookkeeping.
            }
            Observation::MemoryRepaired { .. } | Observation::BroadcastHealed { .. } => {
                // Repair restores a data word; no line changes state.
            }
            Observation::LineScrubbed { pe, addr, .. } => {
                // The corrupted line is invalidated out of the cache:
                // the shadow copy is gone too, so the refetch is
                // checked as an ordinary miss.
                let addr = addr.index();
                self.cells(addr)[pe] = None;
            }
            Observation::PeFailStopped { pe, .. } => {
                // The dead PE's cache goes dark: clear its column in
                // every shadow vector. Whatever it owned is forfeit
                // (drained to memory or lost), which every protocol's
                // configuration lemma tolerates — fewer holders is
                // always legal.
                for cells in self.lines.values_mut() {
                    cells[pe] = None;
                }
            }
        }
    }
}

/// The observer adapter handed to the machine; forwards every
/// observation into the shared [`Inner`].
#[derive(Debug)]
struct RefinementObserver {
    inner: Arc<Mutex<Inner>>,
}

impl Observer for RefinementObserver {
    fn observe(&mut self, cycle: u64, observation: &Observation) {
        self.inner
            .lock()
            .expect("conformance oracle poisoned")
            .observe(cycle, observation);
    }
}

/// A live refinement check: the simulator's observed steps must all be
/// allowed by the product model of the protocol.
///
/// Create one per machine, attach [`Refinement::observer`] via the
/// builder, run the machine, then inspect [`Refinement::violations`]
/// (or call [`Refinement::assert_clean`]).
#[derive(Debug, Clone)]
pub struct Refinement {
    inner: Arc<Mutex<Inner>>,
}

impl Refinement {
    /// Creates an oracle for `n` PEs under `kind`'s protocol tables.
    pub fn new(kind: ProtocolKind, n: usize) -> Self {
        let allow_intermediate = !matches!(kind, ProtocolKind::Rb | ProtocolKind::RbNoBroadcast);
        Refinement {
            inner: Arc::new(Mutex::new(Inner {
                protocol: kind.build(),
                allow_intermediate,
                n,
                lines: std::collections::HashMap::new(),
                errors: Vec::new(),
                steps: 0,
            })),
        }
    }

    /// Creates an oracle with an explicit (possibly mismatched) model —
    /// for testing that the oracle itself has teeth.
    pub fn from_protocol(protocol: Box<dyn Protocol>, allow_intermediate: bool, n: usize) -> Self {
        Refinement {
            inner: Arc::new(Mutex::new(Inner {
                protocol,
                allow_intermediate,
                n,
                lines: std::collections::HashMap::new(),
                errors: Vec::new(),
                steps: 0,
            })),
        }
    }

    /// A boxed observer to attach to the machine under check. Multiple
    /// observers from one `Refinement` share the same shadow model.
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(RefinementObserver {
            inner: Arc::clone(&self.inner),
        })
    }

    /// The conformance violations recorded so far (capped at an
    /// internal limit; the first is the interesting one).
    pub fn violations(&self) -> Vec<ConformanceError> {
        self.inner
            .lock()
            .expect("conformance oracle poisoned")
            .errors
            .clone()
    }

    /// How many observations the oracle has replayed.
    pub fn checked_steps(&self) -> u64 {
        self.inner
            .lock()
            .expect("conformance oracle poisoned")
            .steps
    }

    /// `true` iff no violations were recorded.
    pub fn is_clean(&self) -> bool {
        self.inner
            .lock()
            .expect("conformance oracle poisoned")
            .errors
            .is_empty()
    }

    /// Panics with the recorded violations unless the run conformed.
    ///
    /// # Panics
    ///
    /// Panics if any observed step diverged from the product model, or
    /// if no steps were observed at all (a mis-wired observer would
    /// otherwise pass vacuously).
    pub fn assert_clean(&self) {
        let inner = self.inner.lock().expect("conformance oracle poisoned");
        assert!(
            inner.steps > 0,
            "conformance oracle observed nothing — is the observer attached?"
        );
        assert!(
            inner.errors.is_empty(),
            "conformance violations:\n{}",
            inner
                .errors
                .iter()
                .map(|e| format!("  {e}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decache_machine::{MachineBuilder, MemOp, Script};
    use decache_mem::Addr;

    const KINDS: [ProtocolKind; 8] = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(1),
        ProtocolKind::RwbThreshold(3),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
        ProtocolKind::Mesi,
    ];

    fn sharing_machine(kind: ProtocolKind, oracle: &Refinement) -> decache_machine::Machine {
        let a = Addr::new(3);
        let b = Addr::new(17);
        MachineBuilder::new(kind)
            .processor(
                Script::new()
                    .write(a, Word::new(1))
                    .read(b)
                    .write(a, Word::new(2))
                    .read(a)
                    .build(),
            )
            .processor(
                Script::new()
                    .read(a)
                    .write(b, Word::new(3))
                    .read(a)
                    .write(a, Word::new(4))
                    .build(),
            )
            .processor(Script::new().read(b).read(a).read(b).build())
            .observer(oracle.observer())
            .build()
    }

    #[test]
    fn all_kinds_conform_on_a_sharing_script() {
        for kind in KINDS {
            let oracle = Refinement::new(kind, 3);
            let mut machine = sharing_machine(kind, &oracle);
            machine.run_to_completion(10_000);
            assert!(oracle.checked_steps() > 0);
            assert!(oracle.is_clean(), "{kind}: {:?}", oracle.violations());
        }
    }

    #[test]
    fn test_and_set_contention_conforms() {
        use decache_machine::LoopProcessor;
        for kind in KINDS {
            let lock = Addr::new(0);
            let oracle = Refinement::new(kind, 2);
            let mut machine = MachineBuilder::new(kind)
                .processor(Box::new(LoopProcessor::new(
                    vec![
                        MemOp::test_and_set(lock, Word::ONE),
                        MemOp::write(lock, Word::ZERO),
                    ],
                    4,
                )))
                .processor(Box::new(LoopProcessor::new(
                    vec![MemOp::test_and_set(lock, Word::ONE), MemOp::read(lock)],
                    4,
                )))
                .observer(oracle.observer())
                .build();
            machine.run_to_completion(50_000);
            oracle.assert_clean();
        }
    }

    #[test]
    fn a_mismatched_model_is_detected() {
        // Attach a write-through shadow model to an RB machine: RB's
        // write-miss installs an owning copy and later *hits* locally,
        // which the write-through table (every write is a miss) rejects.
        let oracle = Refinement::from_protocol(ProtocolKind::WriteThrough.build(), true, 2);
        let a = Addr::new(5);
        let mut machine = MachineBuilder::new(ProtocolKind::Rb)
            .processor(
                Script::new()
                    .write(a, Word::new(1))
                    .write(a, Word::new(2))
                    .build(),
            )
            .processor(Script::new().read(a).build())
            .observer(oracle.observer())
            .build();
        machine.run_to_completion(10_000);
        assert!(!oracle.is_clean(), "oracle failed to flag a model mismatch");
    }

    #[test]
    fn assert_clean_rejects_an_unattached_oracle() {
        let oracle = Refinement::new(ProtocolKind::Rb, 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| oracle.assert_clean()));
        assert!(err.is_err());
    }
}
