//! The static protocol-analysis gate: per-rule proofs without
//! state-space exploration over any fixed `n`.
//!
//! This module orchestrates [`decache_protocol_ir`]'s analyzer into the
//! workspace's CI story. Where [`crate::ProductChecker`] explores the
//! exact product machine for `n ∈ {2, 3, 4}`, [`check_kind`] proves
//! totality, determinism, PE-symmetry, and invariant preservation
//! **for all n at once** from the protocol's rule table, via the
//! counting-abstraction small-model argument (see
//! [`decache_protocol_ir::analyze`]).
//!
//! The analyzer's dead-rule detection subsumes the old dynamic
//! coverage lint: because the abstraction over-approximates
//! reachability at every `n`, a statically dead rule is dead in every
//! explored product machine (the `static_dead_rules_subsume_…` test
//! pins that inclusion). The committed per-protocol dead set lives in
//! `static_baseline.txt`; the `protocol_lint` binary fails CI on any
//! deviation.

use decache_core::ProtocolKind;
pub use decache_protocol_ir::{analyze, Analysis, CheckKind, Diagnostic};

/// The committed statically-dead rule baseline. One line per protocol:
/// `NAME: rule-id; rule-id; …`. Regenerate with
/// `cargo run -p decache-bench --bin protocol_lint -- --print-baseline`.
const STATIC_BASELINE: &str = include_str!("static_baseline.txt");

/// Every protocol the static gate proves: the paper's seven schemes
/// plus the table-defined MESI.
pub const ANALYZED_KINDS: [ProtocolKind; 8] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
    ProtocolKind::Mesi,
];

/// Statically analyzes one protocol kind at its canonical legality
/// class (the same `allow_intermediate` choice the product checker and
/// conformance oracle use).
pub fn check_kind(kind: ProtocolKind) -> Analysis {
    decache_protocol_ir::analyze_kind(kind)
}

/// This analysis's baseline line: `NAME: rule-id; rule-id; …`.
pub fn baseline_line(analysis: &Analysis) -> String {
    format!("{}: {}", analysis.protocol, analysis.dead_rules.join("; "))
}

/// Looks up the committed statically-dead baseline for a protocol (by
/// display name). `None` if the protocol has no committed line — the
/// CI gate treats that as a failure, forcing new protocols to commit a
/// baseline.
pub fn committed_static_baseline(protocol_name: &str) -> Option<Vec<String>> {
    for line in STATIC_BASELINE.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, entries)) = line.split_once(':') else {
            continue;
        };
        if name.trim() == protocol_name {
            return Some(
                entries
                    .split(';')
                    .map(|e| e.trim().to_owned())
                    .filter(|e| !e.is_empty())
                    .collect(),
            );
        }
    }
    None
}

/// Dead rules in this analysis the baseline does not expect — the
/// regressions the CI gate fails on.
pub fn new_dead_versus(analysis: &Analysis, baseline: &[String]) -> Vec<String> {
    analysis
        .dead_rules
        .iter()
        .filter(|id| !baseline.iter().any(|b| b == *id))
        .cloned()
        .collect()
}

/// Baseline entries no longer dead — improvements worth a refresh, but
/// the gate fails on them too so the baseline can never drift.
pub fn fixed_versus(analysis: &Analysis, baseline: &[String]) -> Vec<String> {
    baseline
        .iter()
        .filter(|b| !analysis.dead_rules.iter().any(|id| id == *b))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProductChecker;
    use std::collections::BTreeSet;

    #[test]
    fn the_analyzer_proves_all_eight_protocols() {
        for kind in ANALYZED_KINDS {
            let analysis = check_kind(kind);
            assert!(analysis.proved(), "{kind}: {:?}", analysis.diagnostics);
            assert!(
                analysis.unreachable_states.is_empty(),
                "{kind}: unreachable {:?}",
                analysis.unreachable_states
            );
            assert!(analysis.abstract_states > 1, "{kind}: vacuous exploration");
        }
    }

    #[test]
    fn every_kind_matches_its_committed_static_baseline() {
        for kind in ANALYZED_KINDS {
            let analysis = check_kind(kind);
            let baseline = committed_static_baseline(&analysis.protocol)
                .unwrap_or_else(|| panic!("{kind}: no committed static baseline"));
            assert_eq!(
                new_dead_versus(&analysis, &baseline),
                Vec::<String>::new(),
                "{kind}: new dead rules (regenerate static_baseline.txt if intended)"
            );
            assert_eq!(
                fixed_versus(&analysis, &baseline),
                Vec::<String>::new(),
                "{kind}: stale baseline entries (regenerate static_baseline.txt)"
            );
        }
    }

    /// The subsumption theorem behind retiring the dynamic coverage
    /// lint: the abstraction over-approximates reachability at every
    /// `n`, so every rule that fires in the explored `n = 3` product
    /// machine also fires abstractly — statically dead ⊆ dynamically
    /// dead. (The converse need not hold; the abstraction may fire
    /// rules no small `n` can.)
    #[test]
    fn static_dead_rules_subsume_the_dynamic_coverage_lint() {
        for kind in ANALYZED_KINDS {
            let analysis = check_kind(kind);
            let checker = ProductChecker::new(kind, 3);
            let report = checker.explore();
            assert!(report.holds());
            let lint = checker.lint(&report);
            let dynamic_dead: BTreeSet<String> =
                lint.dead.iter().map(ToString::to_string).collect();
            for id in &analysis.dead_rules {
                // Rule ids extend the lint's cell keys with a guard
                // suffix; strip it for the comparison.
                let key = id.split(" [").next().unwrap_or(id);
                assert!(
                    dynamic_dead.contains(key),
                    "{kind}: statically dead rule {id} fired in the n=3 product machine"
                );
            }
        }
    }
}
