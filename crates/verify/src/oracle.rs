//! Randomized end-to-end refinement check of the real simulator.

use decache_core::{Configuration, ProtocolKind};
use decache_machine::{Machine, MachineBuilder, MemOp, OpResult};
use decache_mem::{Addr, Word};
use decache_rng::Rng;
use decache_sync::Conductor;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A consistency violation found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError {
    /// Step index at which the violation occurred.
    pub step: usize,
    /// Description of the violation.
    pub detail: String,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle violation at step {}: {}", self.step, self.detail)
    }
}

impl Error for OracleError {}

/// Outcome of an oracle run.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Operations executed.
    pub steps: usize,
    /// Reads checked against the reference.
    pub reads_checked: u64,
    /// Test-and-Sets checked.
    pub ts_checked: u64,
    /// Distinct addresses exercised.
    pub addresses: usize,
}

/// Drives a real machine with serialized pseudo-random operations and
/// checks every observable against a flat reference memory.
///
/// Because operations are conducted one at a time (each settles before
/// the next issues), the reference semantics are unambiguous: a read
/// must return exactly the last value written, and a Test-and-Set must
/// acquire iff the reference value is zero. After **every** operation
/// the oracle additionally sweeps all exercised addresses and asserts:
///
/// * the configuration of each address is legal (the Lemma, at runtime);
/// * if an owner (`L`/`D`) exists, its cached data equals the reference;
/// * otherwise memory equals the reference and every locally-readable
///   copy does too.
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_verify::SerialOracle;
///
/// let report = SerialOracle::new(ProtocolKind::Rwb, 3, 42).run(500).unwrap();
/// assert_eq!(report.steps, 500);
/// ```
#[derive(Debug)]
pub struct SerialOracle {
    kind: ProtocolKind,
    pes: usize,
    seed: u64,
    addresses: u64,
    cache_lines: usize,
}

impl SerialOracle {
    /// Creates an oracle over `pes` processors with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero.
    pub fn new(kind: ProtocolKind, pes: usize, seed: u64) -> Self {
        assert!(pes > 0, "the oracle needs at least one processor");
        SerialOracle {
            kind,
            pes,
            seed,
            addresses: 24,
            cache_lines: 16,
        }
    }

    /// Sets the number of distinct addresses exercised (default 24 — more
    /// addresses than cache lines, so evictions and write-backs occur).
    #[must_use]
    pub fn addresses(mut self, addresses: u64) -> Self {
        self.addresses = addresses.max(1);
        self
    }

    /// Runs `steps` random operations.
    ///
    /// # Errors
    ///
    /// Returns the first [`OracleError`] encountered.
    pub fn run(&self, steps: usize) -> Result<OracleReport, OracleError> {
        let conductor = Conductor::new(self.pes);
        let mut machine = MachineBuilder::new(self.kind)
            .memory_words(self.addresses.next_power_of_two().max(64))
            .cache_lines(self.cache_lines)
            .processors(self.pes, |pe| conductor.processor(pe))
            .build();

        let mut reference: HashMap<u64, Word> = HashMap::new();
        let mut rng = Rng::from_seed(self.seed);
        let mut reads_checked = 0;
        let mut ts_checked = 0;

        for step in 0..steps {
            let pe = rng.gen_range(0..self.pes);
            let raw = rng.gen_range(0..self.addresses);
            let addr = Addr::new(raw);
            let expected = reference.get(&raw).copied().unwrap_or(Word::ZERO);

            match rng.gen_range(0u64..3) {
                0 => {
                    // Read: must observe the reference value.
                    let got = conductor.run_op(&mut machine, pe, MemOp::read(addr));
                    reads_checked += 1;
                    if got != OpResult::Read(expected) {
                        return Err(OracleError {
                            step,
                            detail: format!(
                                "{}: P{pe} read {addr}: expected {expected}, got {got}",
                                self.kind
                            ),
                        });
                    }
                }
                1 => {
                    // Write a fresh distinguishable value.
                    let value = Word::new((step as u64) << 8 | 1);
                    conductor.run_op(&mut machine, pe, MemOp::write(addr, value));
                    reference.insert(raw, value);
                }
                _ => {
                    // Test-and-Set: acquires iff the reference is zero.
                    let got =
                        conductor.run_op(&mut machine, pe, MemOp::test_and_set(addr, Word::ONE));
                    ts_checked += 1;
                    let should_acquire = expected.is_zero();
                    let expect = OpResult::TestAndSet {
                        old: expected,
                        acquired: should_acquire,
                    };
                    if got != expect {
                        return Err(OracleError {
                            step,
                            detail: format!(
                                "{}: P{pe} TS {addr}: expected {expect}, got {got}",
                                self.kind
                            ),
                        });
                    }
                    if should_acquire {
                        reference.insert(raw, Word::ONE);
                    }
                }
            }

            self.sweep(&machine, &reference, step)?;
        }

        Ok(OracleReport {
            steps,
            reads_checked,
            ts_checked,
            addresses: reference.len(),
        })
    }

    /// Checks the whole-machine invariants against the reference.
    fn sweep(
        &self,
        machine: &Machine,
        reference: &HashMap<u64, Word>,
        step: usize,
    ) -> Result<(), OracleError> {
        for (&raw, &expected) in reference {
            let addr = Addr::new(raw);
            let snap = machine.snapshot(addr);
            let config = snap.configuration();
            if config == Configuration::Illegal {
                return Err(OracleError {
                    step,
                    detail: format!("{}: illegal configuration at {addr}: {snap}", self.kind),
                });
            }
            let owner =
                (0..self.pes).find(|&pe| snap.line(pe).is_some_and(|(s, _)| s.owns_latest()));
            match owner {
                Some(pe) => {
                    let (_, data) = snap.line(pe).expect("owner holds the line");
                    if data != expected {
                        return Err(OracleError {
                            step,
                            detail: format!(
                                "{}: owner P{pe} of {addr} holds {data}, expected {expected}",
                                self.kind
                            ),
                        });
                    }
                }
                None => {
                    if snap.memory() != expected {
                        return Err(OracleError {
                            step,
                            detail: format!(
                                "{}: memory at {addr} holds {}, expected {expected}",
                                self.kind,
                                snap.memory()
                            ),
                        });
                    }
                    for pe in 0..self.pes {
                        if let Some((state, data)) = snap.line(pe) {
                            if state.is_readable_locally() && data != expected {
                                return Err(OracleError {
                                    step,
                                    detail: format!(
                                        "{}: readable copy of {addr} at P{pe} holds {data}, \
                                         expected {expected}",
                                        self.kind
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_pass_a_short_run() {
        for kind in ProtocolKind::ALL {
            let report = SerialOracle::new(kind, 3, 7).run(200).unwrap();
            assert_eq!(report.steps, 200, "{kind}");
            assert!(report.reads_checked > 0);
            assert!(report.ts_checked > 0);
        }
    }

    #[test]
    fn ablation_variants_pass() {
        for kind in [
            ProtocolKind::RbNoBroadcast,
            ProtocolKind::RwbThreshold(1),
            ProtocolKind::RwbThreshold(3),
        ] {
            SerialOracle::new(kind, 3, 11).run(200).unwrap();
        }
    }

    #[test]
    fn evictions_are_exercised() {
        // More addresses than cache lines forces conflicts/write-backs;
        // the oracle still holds.
        let oracle = SerialOracle::new(ProtocolKind::Rb, 2, 3).addresses(40);
        oracle.run(300).unwrap();
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = SerialOracle::new(ProtocolKind::Rwb, 2, 5).run(100).unwrap();
        let b = SerialOracle::new(ProtocolKind::Rwb, 2, 5).run(100).unwrap();
        assert_eq!(a.reads_checked, b.reads_checked);
        assert_eq!(a.ts_checked, b.ts_checked);
    }

    #[test]
    fn error_display() {
        let e = OracleError {
            step: 3,
            detail: "boom".into(),
        };
        assert_eq!(e.to_string(), "oracle violation at step 3: boom");
    }
}
