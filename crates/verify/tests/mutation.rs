//! Mutation testing of the model checker: deliberately broken protocols
//! must be *caught* by the product machine. A checker that passes
//! everything proves nothing; these tests show each invariant has teeth.

use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, Rb, SnoopEvent, SnoopOutcome};
use decache_verify::ProductChecker;
use LineState::{Local, Readable};

/// Wraps RB and overrides selected behaviours to inject one bug each.
macro_rules! rb_mutant {
    ($name:ident, $display:expr, { $($override_fn:item)* }) => {
        #[derive(Debug)]
        struct $name(Rb);

        impl $name {
            fn new() -> Self {
                $name(Rb::new())
            }
        }

        impl Protocol for $name {
            fn name(&self) -> String {
                $display.to_owned()
            }
            fn states(&self) -> Vec<LineState> {
                self.0.states()
            }
            fn cpu_read(&self, s: Option<LineState>) -> CpuOutcome {
                self.0.cpu_read(s)
            }
            fn cpu_write(&self, s: Option<LineState>) -> CpuOutcome {
                self.0.cpu_write(s)
            }
            fn own_complete(&self, s: Option<LineState>, i: BusIntent) -> LineState {
                self.0.own_complete(s, i)
            }
            fn own_locked_read_complete(&self, s: Option<LineState>) -> LineState {
                self.0.own_locked_read_complete(s)
            }
            fn own_unlock_write_complete(&self, s: Option<LineState>) -> LineState {
                self.0.own_unlock_write_complete(s)
            }
            fn broadcasts_write_data(&self) -> bool {
                false
            }
            $($override_fn)*
        }
    };
}

rb_mutant!(NoInvalidateRb, "RB-broken-no-invalidate", {
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        // THE BUG: a readable holder ignores foreign writes, keeping a
        // stale copy readable.
        if state == Readable && matches!(event, SnoopEvent::Write(_)) {
            return SnoopOutcome::unchanged(Readable);
        }
        self.0.snoop(state, event)
    }
    fn supplies_on_snoop_read(&self, s: LineState) -> bool {
        self.0.supplies_on_snoop_read(s)
    }
    fn after_supply(&self, s: LineState) -> LineState {
        self.0.after_supply(s)
    }
    fn writeback_on_evict(&self, s: LineState) -> bool {
        self.0.writeback_on_evict(s)
    }
});

rb_mutant!(NoWritebackRb, "RB-broken-no-writeback", {
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        self.0.snoop(state, event)
    }
    fn supplies_on_snoop_read(&self, s: LineState) -> bool {
        self.0.supplies_on_snoop_read(s)
    }
    fn after_supply(&self, s: LineState) -> LineState {
        self.0.after_supply(s)
    }
    fn writeback_on_evict(&self, _s: LineState) -> bool {
        // THE BUG: Local lines are dropped without flushing, losing the
        // latest value.
        false
    }
});

rb_mutant!(NoSupplyRb, "RB-broken-no-supply", {
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        if state == Local && matches!(event, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) {
            // Pretend memory served the read; keep the Local copy.
            return SnoopOutcome::unchanged(Local);
        }
        self.0.snoop(state, event)
    }
    fn supplies_on_snoop_read(&self, _s: LineState) -> bool {
        // THE BUG: the owner never interrupts foreign reads, so they are
        // served from stale memory.
        false
    }
    fn after_supply(&self, s: LineState) -> LineState {
        self.0.after_supply(s)
    }
    fn writeback_on_evict(&self, s: LineState) -> bool {
        self.0.writeback_on_evict(s)
    }
});

rb_mutant!(DoubleOwnerRb, "RB-broken-double-owner", {
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        // THE BUG: a Local holder survives a foreign write as Local,
        // creating two owners (and violating the lemma's configuration
        // claim directly).
        if state == Local && matches!(event, SnoopEvent::Write(_)) {
            return SnoopOutcome::unchanged(Local);
        }
        self.0.snoop(state, event)
    }
    fn supplies_on_snoop_read(&self, s: LineState) -> bool {
        self.0.supplies_on_snoop_read(s)
    }
    fn after_supply(&self, s: LineState) -> LineState {
        self.0.after_supply(s)
    }
    fn writeback_on_evict(&self, s: LineState) -> bool {
        self.0.writeback_on_evict(s)
    }
});

#[test]
fn healthy_rb_passes() {
    let report = ProductChecker::from_protocol(Box::new(Rb::new()), false, 3).explore();
    assert!(report.holds(), "{:?}", report.violations);
}

#[test]
fn missing_invalidate_is_caught() {
    let report = ProductChecker::from_protocol(Box::new(NoInvalidateRb::new()), false, 3).explore();
    assert!(!report.holds(), "the checker must catch the stale-copy bug");
    assert!(
        report.violations.iter().any(|v| v.contains("stale")),
        "violations: {:?}",
        report.violations
    );
}

#[test]
fn missing_writeback_is_caught() {
    let report = ProductChecker::from_protocol(Box::new(NoWritebackRb::new()), false, 2).explore();
    assert!(
        !report.holds(),
        "the checker must catch the lost-update bug"
    );
    // The latest value vanishes: no owner and stale memory.
    assert!(
        report.violations.iter().any(|v| v.contains("stale memory")),
        "violations: {:?}",
        report.violations
    );
}

#[test]
fn missing_supply_is_caught() {
    let report = ProductChecker::from_protocol(Box::new(NoSupplyRb::new()), false, 2).explore();
    assert!(
        !report.holds(),
        "the checker must catch the stale-memory-read bug"
    );
}

#[test]
fn double_owner_is_caught_as_illegal_configuration() {
    let report = ProductChecker::from_protocol(Box::new(DoubleOwnerRb::new()), false, 2).explore();
    assert!(!report.holds());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("illegal configuration")),
        "violations: {:?}",
        report.violations
    );
}

#[test]
fn mutants_actually_differ_from_healthy() {
    let healthy = Rb::new();
    let e = SnoopEvent::Write(decache_mem::Word::ONE);
    assert_ne!(
        healthy.snoop(Readable, e),
        NoInvalidateRb::new().snoop(Readable, e)
    );
    assert!(healthy.supplies_on_snoop_read(Local));
    assert!(!NoSupplyRb::new().supplies_on_snoop_read(Local));
    assert!(healthy.writeback_on_evict(Local));
    assert!(!NoWritebackRb::new().writeback_on_evict(Local));
}
