//! Mutation testing of the model checker: deliberately broken protocols
//! must be *caught* by the product machine. A checker that passes
//! everything proves nothing; these tests show each invariant has teeth
//! — and that every catch comes with a reconstructed shortest witness
//! trace naming the violated invariant.

use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, Rb, Rwb, SnoopEvent, SnoopOutcome};
use decache_verify::{Invariant, ProductChecker, ProductReport};
use LineState::{FirstWrite, Local, Readable};

/// Wraps a healthy protocol and overrides selected behaviours through
/// optional function pointers — one injected bug per mutant. Everything
/// not overridden forwards to the base, so each mutant differs from
/// health in exactly one decision.
#[derive(Debug)]
struct Mutant<P: Protocol> {
    base: P,
    name: &'static str,
    cpu_write: Option<fn(&P, Option<LineState>) -> CpuOutcome>,
    snoop: Option<fn(&P, LineState, SnoopEvent) -> SnoopOutcome>,
    supplies: Option<fn(&P, LineState) -> bool>,
    writeback: Option<fn(&P, LineState) -> bool>,
}

impl<P: Protocol> Mutant<P> {
    fn of(base: P, name: &'static str) -> Self {
        Mutant {
            base,
            name,
            cpu_write: None,
            snoop: None,
            supplies: None,
            writeback: None,
        }
    }
}

impl<P: Protocol> Protocol for Mutant<P> {
    fn name(&self) -> String {
        self.name.to_owned()
    }
    fn states(&self) -> Vec<LineState> {
        self.base.states()
    }
    fn cpu_read(&self, s: Option<LineState>) -> CpuOutcome {
        self.base.cpu_read(s)
    }
    fn cpu_write(&self, s: Option<LineState>) -> CpuOutcome {
        match self.cpu_write {
            Some(f) => f(&self.base, s),
            None => self.base.cpu_write(s),
        }
    }
    fn own_complete(&self, s: Option<LineState>, i: BusIntent) -> LineState {
        self.base.own_complete(s, i)
    }
    fn own_locked_read_complete(&self, s: Option<LineState>) -> LineState {
        self.base.own_locked_read_complete(s)
    }
    fn own_unlock_write_complete(&self, s: Option<LineState>) -> LineState {
        self.base.own_unlock_write_complete(s)
    }
    fn snoop(&self, state: LineState, event: SnoopEvent) -> SnoopOutcome {
        match self.snoop {
            Some(f) => f(&self.base, state, event),
            None => self.base.snoop(state, event),
        }
    }
    fn supplies_on_snoop_read(&self, s: LineState) -> bool {
        match self.supplies {
            Some(f) => f(&self.base, s),
            None => self.base.supplies_on_snoop_read(s),
        }
    }
    fn after_supply(&self, s: LineState) -> LineState {
        self.base.after_supply(s)
    }
    fn writeback_on_evict(&self, s: LineState) -> bool {
        match self.writeback {
            Some(f) => f(&self.base, s),
            None => self.base.writeback_on_evict(s),
        }
    }
    fn broadcasts_write_data(&self) -> bool {
        self.base.broadcasts_write_data()
    }
    fn uses_bus_invalidate(&self) -> bool {
        self.base.uses_bus_invalidate()
    }
}

/// Asserts a mutant is caught *and* produces a well-formed witness: a
/// non-empty shortest event trace ending in the named invariant, whose
/// message matches the first recorded violation.
fn assert_caught(report: &ProductReport, invariant: Invariant) -> usize {
    assert!(!report.holds(), "the checker must catch this mutant");
    let witness = report
        .witness
        .as_ref()
        .expect("every violation must reconstruct a witness");
    assert_eq!(
        witness.invariant, invariant,
        "wrong invariant; witness:\n{witness}"
    );
    assert!(
        witness.depth() > 0,
        "a bug cannot hold in the initial state"
    );
    assert_eq!(
        witness.message, report.violations[0],
        "the witness must explain the first violation"
    );
    let rendered = witness.to_string();
    assert!(rendered.contains(invariant.name()));
    assert!(rendered.contains("start"));
    witness.depth()
}

// ----------------------------------------------------------------------
// The original RB mutants (one broken decision each).
// ----------------------------------------------------------------------

#[test]
fn healthy_rb_passes() {
    let report = ProductChecker::from_protocol(Box::new(Rb::new()), false, 3).explore();
    assert!(report.holds(), "{:?}", report.violations);
    assert!(report.witness.is_none());
}

#[test]
fn missing_invalidate_is_caught() {
    // THE BUG: a readable holder ignores foreign writes, keeping a stale
    // copy readable.
    let mut m = Mutant::of(Rb::new(), "RB-broken-no-invalidate");
    m.snoop = Some(|base, state, event| {
        if state == Readable && matches!(event, SnoopEvent::Write(_)) {
            SnoopOutcome::unchanged(Readable)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 3).explore();
    assert!(
        report.violations.iter().any(|v| v.contains("stale")),
        "violations: {:?}",
        report.violations
    );
    // The stale R copy survives alongside the writer's new L copy, so
    // the *shortest* counterexample is the resulting R+L configuration.
    assert_caught(&report, Invariant::IllegalConfiguration);
}

#[test]
fn missing_writeback_is_caught() {
    // THE BUG: Local lines are dropped without flushing, losing the
    // latest value.
    let mut m = Mutant::of(Rb::new(), "RB-broken-no-writeback");
    m.writeback = Some(|_base, _state| false);
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    assert!(
        report.violations.iter().any(|v| v.contains("stale memory")),
        "violations: {:?}",
        report.violations
    );
    assert_caught(&report, Invariant::NoOwnerStaleMemory);
}

#[test]
fn missing_supply_is_caught() {
    // THE BUG: the owner never interrupts foreign reads, so they are
    // served from stale memory.
    let mut m = Mutant::of(Rb::new(), "RB-broken-no-supply");
    m.supplies = Some(|_base, _state| false);
    m.snoop = Some(|base, state, event| {
        if state == Local && matches!(event, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) {
            // Pretend memory served the read; keep the Local copy.
            SnoopOutcome::unchanged(Local)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    // The owner keeps L while the reader installs R — the configuration
    // breaks one event before the stale memory would be served.
    assert_caught(&report, Invariant::IllegalConfiguration);
}

#[test]
fn double_owner_is_caught_as_illegal_configuration() {
    // THE BUG: a Local holder survives a foreign write as Local,
    // creating two owners (violating the lemma's configuration claim).
    let mut m = Mutant::of(Rb::new(), "RB-broken-double-owner");
    m.snoop = Some(|base, state, event| {
        if state == Local && matches!(event, SnoopEvent::Write(_)) {
            SnoopOutcome::unchanged(Local)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("illegal configuration")),
        "violations: {:?}",
        report.violations
    );
    assert_caught(&report, Invariant::IllegalConfiguration);
}

// ----------------------------------------------------------------------
// New mutants: RWB-family bugs and witness-depth checks.
// ----------------------------------------------------------------------

#[test]
fn rwb_skipping_the_bus_invalidate_is_caught() {
    // THE BUG: the threshold write that should broadcast BI instead
    // completes silently in the cache — other caches keep readable
    // copies while the writer privately owns the line.
    let mut m = Mutant::of(Rwb::new(), "RWB-broken-skip-bi");
    m.cpu_write = Some(|base, state| {
        if matches!(state, Some(FirstWrite(_))) {
            CpuOutcome::Hit { next: Local }
        } else {
            base.cpu_write(state)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), true, 3).explore();
    let depth = assert_caught(&report, Invariant::IllegalConfiguration);
    // Shortest trace: P_a write (F1), P_b read (R), P_a write (silent L).
    assert_eq!(depth, 3, "witness:\n{}", report.witness.as_ref().unwrap());
}

#[test]
fn rb_installing_local_on_snooped_read_is_caught() {
    // THE BUG: a readable holder "upgrades" to Local when it snoops a
    // foreign read broadcast — a reader manufactures ownership.
    let mut m = Mutant::of(Rb::new(), "RB-broken-snoop-read-local");
    m.snoop = Some(|base, state, event| {
        if state == Readable && matches!(event, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) {
            SnoopOutcome::capture(Local)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    let depth = assert_caught(&report, Invariant::IllegalConfiguration);
    // Shortest trace: P_a read (R), P_b read (R + bogus L).
    assert_eq!(depth, 2, "witness:\n{}", report.witness.as_ref().unwrap());
}

#[test]
fn rwb_dropping_the_write_broadcast_capture_is_caught() {
    // THE BUG: readable holders see the foreign bus write but do not
    // capture the broadcast data, keeping a stale copy readable — the
    // defining RWB behaviour ("the caches also note the data part of
    // the bus writes", Section 5), silently disabled.
    let mut m = Mutant::of(Rwb::new(), "RWB-broken-no-capture");
    m.snoop = Some(|base, state, event| {
        if state == Readable && matches!(event, SnoopEvent::Write(_)) {
            SnoopOutcome::unchanged(Readable)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), true, 2).explore();
    let depth = assert_caught(&report, Invariant::StaleReadableCopy);
    // Shortest trace: P_a read (R), P_b write (BW leaves the stale R).
    assert_eq!(depth, 2, "witness:\n{}", report.witness.as_ref().unwrap());
}

#[test]
fn rb_ignoring_the_unlock_write_is_caught() {
    // THE BUG: readable holders treat a foreign unlocking write (a
    // successful Test-and-Set's second half) as harmless, surviving the
    // transition to the local configuration.
    let mut m = Mutant::of(Rb::new(), "RB-broken-stale-unlock");
    m.snoop = Some(|base, state, event| {
        if state == Readable && matches!(event, SnoopEvent::UnlockWrite(_)) {
            SnoopOutcome::unchanged(Readable)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    let depth = assert_caught(&report, Invariant::IllegalConfiguration);
    assert!(
        depth <= 3,
        "witness longer than the obvious read/lock/commit trace:\n{}",
        report.witness.as_ref().unwrap()
    );
}

#[test]
fn rb_faking_the_supply_refresh_is_caught_serving_stale_memory() {
    // THE BUG: the owner stops interrupting foreign reads but demotes
    // itself as if the broadcast had refreshed everyone — so the read
    // is served from memory that was never made current.
    let mut m = Mutant::of(Rb::new(), "RB-broken-ghost-supply");
    m.supplies = Some(|_base, _state| false);
    m.snoop = Some(|base, state, event| {
        if state == Local && matches!(event, SnoopEvent::Read(_) | SnoopEvent::LockedRead(_)) {
            SnoopOutcome::capture(Readable)
        } else {
            base.snoop(state, event)
        }
    });
    let report = ProductChecker::from_protocol(Box::new(m), false, 2).explore();
    let depth = assert_caught(&report, Invariant::StaleMemoryServed);
    // Shortest trace: P_a write (L, memory current), P_a write again
    // (silent hit, memory now stale), P_b read served from memory.
    assert_eq!(depth, 3, "witness:\n{}", report.witness.as_ref().unwrap());
}

#[test]
fn mutants_actually_differ_from_healthy() {
    let healthy = Rb::new();
    let e = SnoopEvent::Write(decache_mem::Word::ONE);
    let mut no_invalidate = Mutant::of(Rb::new(), "RB-broken-no-invalidate");
    no_invalidate.snoop = Some(|base, state, event| {
        if state == Readable && matches!(event, SnoopEvent::Write(_)) {
            SnoopOutcome::unchanged(Readable)
        } else {
            base.snoop(state, event)
        }
    });
    assert_ne!(healthy.snoop(Readable, e), no_invalidate.snoop(Readable, e));
    // Un-overridden behaviour forwards to the base unchanged.
    assert_eq!(healthy.snoop(Local, e), no_invalidate.snoop(Local, e));
    assert!(no_invalidate.supplies_on_snoop_read(Local));
    assert!(no_invalidate.writeback_on_evict(Local));
    assert!(!no_invalidate.uses_bus_invalidate());
    let rwb_mutant = Mutant::of(Rwb::new(), "RWB-identity");
    assert!(rwb_mutant.uses_bus_invalidate());
    assert!(rwb_mutant.broadcasts_write_data());
}
