//! Seeded randomized conformance: the live [`Refinement`] oracle rides
//! along on machines driven by random operation streams, for every
//! protocol kind and machine size. Any simulator step the Section 4
//! product model does not allow fails the run with the offending cycle
//! and transition.
//!
//! Reproduce a failure with `DECACHE_TEST_SEED=<seed>`; widen the
//! search with `DECACHE_TEST_CASES=<n>`.

use decache_core::ProtocolKind;
use decache_machine::{FaultPlan, MachineBuilder, RecoveryPolicy, Script};
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::{testing::check, Rng};
use decache_verify::Refinement;

/// The eight protocol variants the workspace checks everywhere.
const KINDS: [ProtocolKind; 8] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
    ProtocolKind::Mesi,
];

/// A random mix of reads, writes, and Test-and-Sets over a small hot
/// address range (small enough that PEs genuinely collide).
fn random_script(rng: &mut Rng, addrs: u64) -> Script {
    let mut script = Script::new();
    for _ in 0..rng.gen_range(4usize..40) {
        let addr = Addr::new(rng.gen_range(0..addrs));
        let value = Word::new(rng.gen_range(1u64..1000));
        script = match rng.gen_range(0u8..10) {
            0..=4 => script.read(addr),
            5..=8 => script.write(addr, value),
            _ => script.test_and_set(addr, value),
        };
    }
    script
}

#[test]
fn random_op_streams_conform_to_the_product_model() {
    check("random_op_streams_conform_to_the_product_model", 8, |rng| {
        for kind in KINDS {
            let n = rng.gen_range(2usize..=4);
            let oracle = Refinement::new(kind, n);
            let mut builder = MachineBuilder::new(kind);
            // Four-line caches over sixteen addresses force evictions,
            // exercising the oracle's writeback check.
            builder.memory_words(32).cache_lines(4);
            for _ in 0..n {
                builder.processor(random_script(rng, 16).build());
            }
            builder.observer(oracle.observer());
            let mut machine = builder.build();
            machine.run_to_completion(1_000_000);
            assert!(
                oracle.checked_steps() > 0,
                "{kind}: the observer saw nothing"
            );
            oracle.assert_clean();
        }
    });
}

#[test]
fn conformance_holds_under_multiple_buses() {
    check("conformance_holds_under_multiple_buses", 4, |rng| {
        for kind in KINDS {
            let n = rng.gen_range(2usize..=4);
            let oracle = Refinement::new(kind, n);
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(32).cache_lines(8).buses(2);
            for _ in 0..n {
                builder.processor(random_script(rng, 16).build());
            }
            builder.observer(oracle.observer());
            let mut machine = builder.build();
            machine.run_to_completion(1_000_000);
            oracle.assert_clean();
        }
    });
}

#[test]
fn conformance_holds_under_fault_storms() {
    // Transient flips, bus losses, and fail-stops perturb data, parity,
    // and timing but never protocol *state* transitions; scrubs and
    // fail-stops only drop holders, which the product model always
    // allows. The oracle must therefore stay clean through a storm.
    check("conformance_holds_under_fault_storms", 6, |rng| {
        for kind in KINDS {
            let n = rng.gen_range(2usize..=4);
            let oracle = Refinement::new(kind, n);
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(32).cache_lines(4);
            for _ in 0..n {
                builder.processor(random_script(rng, 16).build());
            }
            builder
                .fault_plan(
                    FaultPlan::new(rng.next_u64())
                        .memory_flip_rate(0.04)
                        .cache_flip_rate(0.04)
                        .bus_loss_rate(0.02)
                        .fail_stop_rate(0.002)
                        .region(AddrRange::with_len(Addr::new(0), 16)),
                )
                .recovery_policy(if rng.gen_range(0u8..2) == 0 {
                    RecoveryPolicy::Majority
                } else {
                    RecoveryPolicy::OwnerOnly
                })
                .observer(oracle.observer());
            let mut machine = builder.build();
            let outcome = machine.run_outcome(1_000_000);
            assert!(outcome.is_complete(), "{kind}: {outcome}");
            assert!(
                oracle.checked_steps() > 0,
                "{kind}: the observer saw nothing"
            );
            oracle.assert_clean();
        }
    });
}
