//! End-to-end coherence behaviour of whole machines, protocol by
//! protocol: the textual walkthroughs of Sections 3, 5, and 6 executed on
//! the real simulator.

use decache_bus::BusOpKind;
use decache_core::{LineState, ProtocolKind};
use decache_machine::{MachineBuilder, MemOp, OpResult, Script, SpinReader};
use decache_mem::{Addr, Word};
use LineState::{FirstWrite, Invalid, Local, Readable};

fn addr(i: u64) -> Addr {
    Addr::new(i)
}

fn w(v: u64) -> Word {
    Word::new(v)
}

// ---------------------------------------------------------------------
// RB basics (Section 3).
// ---------------------------------------------------------------------

#[test]
fn rb_read_miss_fills_requester_readable() {
    let x = addr(5);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().read(x).build())
        .build();
    m.run_to_completion(100);
    assert_eq!(m.cache_line(0, x), Some((Readable, w(0))));
    assert_eq!(m.traffic().count(BusOpKind::Read), 1);
}

#[test]
fn rb_write_goes_through_and_tags_local() {
    let x = addr(5);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(x, w(9)).build())
        .build();
    m.run_to_completion(100);
    assert_eq!(m.cache_line(0, x), Some((Local, w(9))));
    // "For ease of implementation all cache writes should do so" —
    // memory is updated by the write-through.
    assert_eq!(m.memory().peek(x).unwrap(), w(9));
    assert_eq!(m.traffic().count(BusOpKind::Write), 1);
}

#[test]
fn rb_local_writes_generate_no_bus_traffic() {
    let x = addr(3);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(
            Script::new()
                .write(x, w(1)) // bus write -> Local
                .write(x, w(2)) // silent
                .write(x, w(3)) // silent
                .read(x) // silent
                .build(),
        )
        .build();
    m.run_to_completion(100);
    assert_eq!(m.traffic().total_transactions(), 1);
    assert_eq!(m.cache_line(0, x), Some((Local, w(3))));
    // Memory still holds the first written value: L is write-back.
    assert_eq!(m.memory().peek(x).unwrap(), w(1));
}

#[test]
fn rb_bus_write_invalidates_other_readers() {
    let x = addr(0);
    // P0 reads x (both end R via broadcast or fill), then P1 writes it.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().read(x).read(x).read(x).build())
        .processor(Script::new().read(x).write(x, w(4)).build())
        .build();
    m.run_to_completion(100);
    assert_eq!(m.cache_line(1, x), Some((Local, w(4))));
    assert_eq!(m.cache_line(0, x).map(|(s, _)| s), Some(Invalid));
}

#[test]
fn rb_read_broadcast_fills_invalid_holders() {
    let x = addr(0);
    // P0 writes x twice (Local), P1's read forces the supply; P2 reads
    // later and its bus read broadcast-fills nobody new, but the key
    // check: after P1's read, P0's cache is Readable with the value.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(x, w(8)).write(x, w(9)).build())
        .processor(Script::new().read(x).read(x).build())
        .build();
    m.run_to_completion(100);
    // Supply path ran: abort recorded, memory updated to 9.
    assert_eq!(m.traffic().aborted_reads, 1);
    assert_eq!(m.memory().peek(x).unwrap(), w(9));
    assert_eq!(m.cache_line(0, x), Some((Readable, w(9))));
    assert_eq!(m.cache_line(1, x), Some((Readable, w(9))));
}

#[test]
fn rb_interrupted_read_is_retried_and_counted() {
    let x = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(x, w(1)).write(x, w(2)).build())
        .processor(Script::new().read(x).build())
        .build();
    m.run_to_completion(100);
    let t = m.traffic();
    assert_eq!(t.aborted_reads, 1);
    assert_eq!(t.retries, 1);
    // P0's first write is a bus write (-> Local); its second is a silent
    // local hit. P1's read is interrupted and replaced by P0's supply
    // write, then retried: 2 bus writes + 1 bus read in total.
    assert_eq!(t.count(BusOpKind::Write), 2);
    assert_eq!(t.count(BusOpKind::Read), 1);
    assert_eq!(m.memory().peek(x).unwrap(), w(2));
}

#[test]
fn rb_concurrent_read_misses_share_one_bus_read() {
    let x = addr(7);
    // Three PEs read-miss the same word at the same time: the first
    // granted bus read broadcasts the value; the others are satisfied by
    // the broadcast... but only if their cache holds the line (tagged I).
    // Fresh caches don't hold it, so they're satisfied via their own
    // reads; after a writer invalidates them, the broadcast path engages.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(x, w(1)).read(x).build())
        .processor(Script::new().read(x).read(x).build())
        .processor(Script::new().read(x).read(x).build())
        .build();
    m.run_to_completion(200);
    // Everyone converges to Readable with the latest value.
    for pe in 0..3 {
        assert_eq!(m.cache_line(pe, x), Some((Readable, w(1))), "pe {pe}");
    }
}

// ---------------------------------------------------------------------
// Consistency: the latest value is always read (Section 4's theorem, in
// the small).
// ---------------------------------------------------------------------

#[test]
fn rb_reader_sees_latest_value_after_writer() {
    let x = addr(1);
    for kind in ProtocolKind::ALL {
        let mut m = MachineBuilder::new(kind)
            .processor(Script::new().write(x, w(42)).build())
            .processor(spin_reader(x, 42))
            .build();
        m.run_to_completion(10_000);
        assert_eq!(m.memory().peek(x).unwrap(), w(42), "{kind}");
    }
}

/// A boxed spin reader that halts once it observes the expected value.
fn spin_reader(x: Addr, expect: u64) -> Box<dyn decache_machine::Processor + Send> {
    Box::new(SpinReader::new(x, move |v| v == Word::new(expect)))
}

// ---------------------------------------------------------------------
// RWB specifics (Section 5).
// ---------------------------------------------------------------------

#[test]
fn rwb_first_write_broadcasts_then_second_claims_local() {
    let x = addr(2);
    // P0's two reads complete before P1's second write lands.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .processor(Script::new().read(x).read(x).build())
        .processor(Script::new().write(x, w(1)).write(x, w(2)).build())
        .build();
    m.run_to_completion(200);
    // P1's first write: BW, P1 -> F, P0 captures 1 -> R.
    // P1's second write: BI, P1 -> L(2), P0 -> I.
    assert_eq!(m.cache_line(1, x), Some((Local, w(2))));
    assert_eq!(m.cache_line(0, x).map(|(s, _)| s), Some(Invalid));
    let t = m.traffic();
    assert_eq!(t.count(BusOpKind::Invalidate), 1);
    // Memory got the first write only; the second stayed local.
    assert_eq!(m.memory().peek(x).unwrap(), w(1));
}

#[test]
fn rwb_local_holder_supplies_after_bi_claim() {
    let x = addr(2);
    // P1 claims x local via BW + BI; P0 then read-misses: P1 must
    // interrupt, supply the latest value, and demote to Readable.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .processor(Script::new().read(x).read(x).read(x).read(x).build())
        .processor(Script::new().write(x, w(1)).write(x, w(2)).build())
        .build();
    m.run_to_completion(200);
    assert_eq!(m.traffic().count(BusOpKind::Invalidate), 1);
    assert_eq!(m.traffic().aborted_reads, 1);
    assert_eq!(m.cache_line(0, x), Some((Readable, w(2))));
    assert_eq!(m.cache_line(1, x), Some((Readable, w(2))));
    assert_eq!(m.memory().peek(x).unwrap(), w(2));
}

#[test]
fn rwb_write_broadcast_updates_reader_caches_in_place() {
    let x = addr(2);
    // P0 reads x; P1 writes it once. Under RWB P0's copy is refreshed
    // (R with new value), so P0's subsequent reads hit with no traffic.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .processor(
            Script::new()
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .read(x)
                .build(),
        )
        .processor(Script::new().write(x, w(5)).build())
        .build();
    m.run_to_completion(200);
    assert_eq!(m.cache_line(0, x), Some((Readable, w(5))));
    assert_eq!(m.cache_line(1, x).map(|(s, _)| s), Some(FirstWrite(1)));
    // Exactly two transactions: P0's initial read, P1's write.
    assert_eq!(m.traffic().total_transactions(), 2);
}

#[test]
fn rwb_foreign_write_interrupts_first_write_streak() {
    let x = addr(2);
    // P0 writes once (F), then P1 writes once (F), then P0's next write
    // is again a "first" write (streak broken), so three bus writes and
    // no BI if writes keep alternating.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .processor(Script::new().write(x, w(1)).write(x, w(3)).build())
        .processor(Script::new().write(x, w(2)).build())
        .build();
    m.run_to_completion(200);
    let t = m.traffic();
    // With round-robin arbitration P0 and P1 alternate; every write is a
    // data write in some order; depending on interleaving at most one BI
    // occurs (if P0's two writes are consecutive).
    assert_eq!(
        t.count(BusOpKind::Write) + t.count(BusOpKind::Invalidate),
        3
    );
    assert!(m.traffic().count(BusOpKind::Invalidate) <= 1);
}

// ---------------------------------------------------------------------
// Write-once baseline.
// ---------------------------------------------------------------------

#[test]
fn write_once_second_write_is_silent_and_dirty_supplies() {
    let x = addr(4);
    let mut m = MachineBuilder::new(ProtocolKind::WriteOnce)
        .processor(Script::new().write(x, w(1)).write(x, w(2)).build())
        .processor(Script::new().read(x).build())
        .build();
    m.run_to_completion(200);
    // The Dirty holder supplied on P1's read and demoted to Valid.
    assert_eq!(m.cache_line(0, x), Some((LineState::Valid, w(2))));
    assert_eq!(m.cache_line(1, x), Some((LineState::Valid, w(2))));
    assert_eq!(m.memory().peek(x).unwrap(), w(2));
    assert_eq!(m.traffic().aborted_reads, 1);
}

#[test]
fn write_once_no_read_broadcast_for_invalid_holders() {
    let x = addr(4);
    // P0 holds x, gets invalidated by P1's write, then P2 reads: P0 must
    // NOT be refilled by P2's bus read (event broadcasting only).
    let mut m = MachineBuilder::new(ProtocolKind::WriteOnce)
        .processor(Script::new().read(x).build())
        .processor(Script::new().read(x).write(x, w(1)).build())
        .processor(Script::new().read(x).read(x).build())
        .build();
    m.run_to_completion(300);
    assert_eq!(m.cache_line(0, x).map(|(s, _)| s), Some(Invalid));
}

// ---------------------------------------------------------------------
// Write-through baseline.
// ---------------------------------------------------------------------

#[test]
fn write_through_every_write_costs_a_bus_cycle() {
    let x = addr(6);
    let mut m = MachineBuilder::new(ProtocolKind::WriteThrough)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(2))
                .write(x, w(3))
                .read(x)
                .build(),
        )
        .build();
    m.run_to_completion(200);
    assert_eq!(m.traffic().count(BusOpKind::Write), 3);
    assert_eq!(m.memory().peek(x).unwrap(), w(3));
    assert_eq!(m.cache_line(0, x), Some((LineState::Valid, w(3))));
}

// ---------------------------------------------------------------------
// Test-and-Set semantics (Section 6).
// ---------------------------------------------------------------------

#[test]
fn ts_acquires_free_lock() {
    let s = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().test_and_set(s, w(1)).build())
        .build();
    m.run_to_completion(100);
    assert_eq!(m.memory().peek(s).unwrap(), w(1));
    assert_eq!(m.stats().ts_successes, 1);
    assert_eq!(m.stats().ts_failures, 0);
    let t = m.traffic();
    assert_eq!(t.count(BusOpKind::ReadWithLock), 1);
    assert_eq!(t.count(BusOpKind::WriteWithUnlock), 1);
}

#[test]
fn ts_fails_on_held_lock_without_writing() {
    let s = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(s, w(1)).build()) // lock "held"
        .processor(Script::new().read(s).test_and_set(s, w(7)).build())
        .build();
    m.run_to_completion(200);
    assert_eq!(m.stats().ts_failures, 1);
    assert_eq!(m.stats().ts_successes, 0);
    assert_eq!(m.memory().peek(s).unwrap(), w(1));
    // No unlocking write ever happened.
    assert_eq!(m.traffic().count(BusOpKind::WriteWithUnlock), 0);
    // No memory lock is left behind.
    assert_eq!(m.memory().lock_holder(s), None);
}

#[test]
fn competing_ts_exactly_one_winner() {
    let s = addr(0);
    for kind in ProtocolKind::ALL {
        let mut m = MachineBuilder::new(kind)
            .processors(4, |_| Script::new().test_and_set(s, w(1)).build())
            .build();
        m.run_to_completion(1_000);
        assert_eq!(m.stats().ts_successes, 1, "{kind}");
        assert_eq!(m.stats().ts_failures, 3, "{kind}");
        assert_eq!(m.memory().peek(s).unwrap(), w(1), "{kind}");
        assert_eq!(m.memory().lock_holder(s), None, "{kind}");
    }
}

#[test]
fn rb_successful_ts_leaves_local_configuration() {
    // Figure 6-1 row "P2 Locks S": I(-) L(1) I(-).
    let s = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().read(s).build())
        .processor(Script::new().read(s).test_and_set(s, w(1)).build())
        .processor(Script::new().read(s).build())
        .build();
    m.run_to_completion(500);
    assert_eq!(m.cache_line(1, s).map(|(st, _)| st), Some(Local));
    assert_eq!(m.cache_line(0, s).map(|(st, _)| st), Some(Invalid));
    assert_eq!(m.cache_line(2, s).map(|(st, _)| st), Some(Invalid));
    assert_eq!(
        m.snapshot(s).configuration(),
        decache_core::Configuration::Local
    );
}

#[test]
fn rwb_successful_ts_leaves_shared_configuration() {
    // Figure 6-3 row "P2 locks S": R(1) F(1) R(1).
    let s = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .processor(Script::new().read(s).build())
        .processor(Script::new().read(s).test_and_set(s, w(1)).build())
        .processor(Script::new().read(s).build())
        .build();
    m.run_to_completion(500);
    assert_eq!(m.cache_line(1, s).map(|(st, _)| st), Some(FirstWrite(1)));
    assert_eq!(m.cache_line(0, s), Some((Readable, w(1))));
    assert_eq!(m.cache_line(2, s), Some((Readable, w(1))));
}

// ---------------------------------------------------------------------
// Eviction and write-back.
// ---------------------------------------------------------------------

#[test]
fn evicted_local_line_writes_back() {
    // Cache of 4 lines; write x (Local, silent second write), then touch
    // x + 4 which conflicts and evicts it.
    let x = addr(1);
    let conflicting = addr(5);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_lines(4)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(2)) // silent local write; memory stale at 1
                .read(conflicting) // evicts x
                .build(),
        )
        .build();
    m.run_to_completion(200);
    assert_eq!(m.stats().writebacks, 1);
    assert_eq!(m.memory().peek(x).unwrap(), w(2));
    assert!(m.cache_line(0, x).is_none());
}

#[test]
fn evicted_readable_line_is_dropped_silently() {
    let x = addr(1);
    let conflicting = addr(5);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_lines(4)
        .processor(Script::new().read(x).read(conflicting).build())
        .build();
    m.run_to_completion(200);
    assert_eq!(m.stats().writebacks, 0);
    assert!(m.cache_line(0, x).is_none());
}

// ---------------------------------------------------------------------
// Multi-bus machines (Section 7).
// ---------------------------------------------------------------------

#[test]
fn dual_bus_splits_traffic_by_address_parity() {
    let even = addr(2);
    let odd = addr(3);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .buses(2)
        .memory_words(64)
        .processor(Script::new().read(even).read(odd).write(even, w(1)).build())
        .build();
    m.run_to_completion(200);
    let per_bus = m.traffic_per_bus();
    assert_eq!(per_bus.bus(0).total_transactions(), 2); // read + write @2
    assert_eq!(per_bus.bus(1).total_transactions(), 1); // read @3
}

#[test]
fn dual_bus_machine_is_still_consistent() {
    let x = addr(2);
    let y = addr(3);
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .buses(2)
        .memory_words(64)
        .processor(Script::new().write(x, w(1)).write(y, w(2)).build())
        .processor(Script::new().read(x).read(y).read(x).read(y).build())
        .build();
    m.run_to_completion(500);
    assert_eq!(m.memory().peek(x).unwrap(), w(1));
    assert_eq!(m.memory().peek(y).unwrap(), w(2));
}

// ---------------------------------------------------------------------
// Statistics plumbing.
// ---------------------------------------------------------------------

#[test]
fn cache_stats_track_hits_and_misses_per_pe() {
    use decache_cache::{AccessKind, RefClass};
    let x = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(
            Script::new()
                .op(MemOp::read(x).with_class(RefClass::Code))
                .op(MemOp::read(x).with_class(RefClass::Code))
                .op(MemOp::read(x).with_class(RefClass::Code))
                .build(),
        )
        .build();
    m.run_to_completion(100);
    let s = m.cache_stats(0);
    assert_eq!(s.misses(AccessKind::Read, RefClass::Code), 1);
    assert_eq!(s.hits(AccessKind::Read, RefClass::Code), 2);
    assert_eq!(m.total_cache_stats().total_references(), 3);
}

#[test]
fn utilization_reflects_idle_cycles() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().read(addr(0)).build())
        .build();
    // Run longer than needed; extra cycles are pure idle once done...
    // (run() stops at done, so step manually).
    m.run_to_completion(100);
    let before = m.traffic();
    assert!(before.busy_cycles >= 1);
}

#[test]
fn last_result_reaches_the_processor() {
    // A reactive program: write 3, read it back, then write double.
    let x = addr(0);
    let mut saw = Vec::new();
    let mut step = 0;
    let program = move |last: Option<&OpResult>| {
        if let Some(OpResult::Read(v)) = last {
            saw.push(*v);
        }
        step += 1;
        decache_machine::Poll::from(match step {
            1 => Some(MemOp::write(x, w(3))),
            2 => Some(MemOp::read(x)),
            3 => Some(MemOp::write(x, w(6))),
            _ => None,
        })
    };
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Box::new(program))
        .build();
    m.run_to_completion(100);
    assert_eq!(m.cache_line(0, x).map(|(_, v)| v), Some(w(6)));
}

#[test]
fn reset_stats_clears_counters_but_not_state() {
    let x = addr(0);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().write(x, w(3)).read(x).build())
        .build();
    m.run_to_completion(100);
    assert!(m.traffic().total_transactions() > 0);
    m.reset_stats();
    assert_eq!(m.traffic().total_transactions(), 0);
    assert_eq!(m.total_cache_stats().total_references(), 0);
    assert_eq!(m.stats(), decache_machine::MachineStats::default());
    // Architectural state survives.
    assert_eq!(m.cache_line(0, x), Some((Local, w(3))));
    assert_eq!(m.memory().peek(x).unwrap(), w(3));
}
