//! Runner-semantics tests: the unified check-then-step loop behind
//! [`Machine::run`], [`Machine::run_until_quiescent`], and
//! [`Machine::settle`]; budget-independent stall verdicts; and the
//! wake-schedule engine's cycle accounting.

use decache_core::ProtocolKind;
use decache_machine::{
    HaltReason, Machine, MachineBuilder, MemOp, OpResult, Poll, Processor, Script, StallVerdict,
};
use decache_mem::Addr;

/// A conducted-style processor that waits forever — never issues.
struct WaitForever;

impl Processor for WaitForever {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        Poll::Wait
    }
}

/// Issues one read every `period` polls, forever — a deterministic
/// periodic completer whose progress gap at budget exhaustion is
/// bounded by `period` regardless of the budget.
struct SlowPoller {
    addr: Addr,
    period: u64,
    polls: u64,
}

impl Processor for SlowPoller {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        self.polls += 1;
        if self.polls >= self.period {
            self.polls = 0;
            Poll::Op(MemOp::read(self.addr))
        } else {
            Poll::Wait
        }
    }
}

fn one_read_machine() -> Machine {
    MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Script::new().read(Addr::new(3)).build())
        .build()
}

#[test]
fn run_checks_before_stepping() {
    let mut m = one_read_machine();
    // Work outstanding: a zero budget neither finishes nor steps.
    assert!(!m.run(0));
    assert_eq!(m.cycles(), 0);
    assert!(m.run(10_000));
    let done_at = m.cycles();
    // Already done: `run(0)` answers without advancing the clock.
    assert!(m.run(0));
    assert_eq!(m.cycles(), done_at);
}

#[test]
fn run_until_quiescent_checks_before_stepping() {
    // A machine with only waiting PEs is quiescent from cycle 0; the
    // check-then-step loop reports that without consuming any budget.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Box::new(WaitForever))
        .build();
    assert!(m.run_until_quiescent(0));
    assert_eq!(m.cycles(), 0);
    // Same loop as `run`: a settled machine stays settled.
    assert!(m.run_until_quiescent(1_000));
    assert_eq!(m.cycles(), 0);
}

#[test]
fn settle_steps_at_least_once() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Box::new(WaitForever))
        .build();
    // The forced first step distinguishes settle from
    // run_until_quiescent; with a zero budget it cannot be taken.
    assert!(!m.settle(0));
    assert_eq!(m.cycles(), 0);
    assert!(m.settle(1_000));
    assert!(m.cycles() >= 1, "settle must step at least once");
}

#[test]
fn run_exact_budget_edge() {
    // Find the exact completion cycle, then pin the boundary: one
    // cycle short fails, the exact budget succeeds.
    let mut probe = one_read_machine();
    assert!(probe.run(10_000));
    let exact = probe.cycles();
    assert!(exact >= 1);

    let mut short = one_read_machine();
    assert!(!short.run(exact - 1));
    let mut fit = one_read_machine();
    assert!(fit.run(exact));
    assert_eq!(fit.cycles(), exact);
}

/// The stall verdict must be a fact about the machine, not the budget:
/// the same periodic completer judged at a 10k and a 1M budget gets
/// the same verdict. Under the old budget-relative window
/// (`(max/4).clamp(16, 4096)`) a completer with a ~3500-cycle period
/// was deadlocked at 10k (gap ~3000 > 2500) yet livelocked at 1M
/// (gap < 4096).
#[test]
fn stall_verdict_is_budget_independent() {
    let verdict_at = |budget: u64| {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(64)
            .processor(Box::new(SlowPoller {
                addr: Addr::new(5),
                period: 3_500,
                polls: 0,
            }))
            .build();
        let outcome = m.run_outcome(budget);
        assert_eq!(
            outcome.progress_window,
            decache_machine::DEFAULT_PROGRESS_WINDOW
        );
        let HaltReason::BudgetExhausted { blame } = outcome.reason else {
            panic!("a never-halting poller cannot complete");
        };
        assert_eq!(blame.len(), 1);
        blame[0].verdict
    };
    let small = verdict_at(10_000);
    let large = verdict_at(1_000_000);
    assert_eq!(small, large, "verdict flipped with the cycle budget");
    assert_eq!(small, StallVerdict::Livelock, "gap 3500 < window 4096");
}

/// A machine stuck from cycle 0 is deadlocked at any budget larger
/// than the window.
#[test]
fn stuck_machine_is_deadlocked_at_any_budget() {
    for budget in [10_000u64, 1_000_000] {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(64)
            .processor(Box::new(WaitForever))
            .processor(Box::new(WaitForever))
            .build();
        let HaltReason::BudgetExhausted { blame } = m.run_outcome(budget).reason else {
            panic!("waiting PEs cannot complete");
        };
        assert!(blame.iter().all(|b| b.verdict == StallVerdict::Deadlock));
    }
}

/// A small window judges the same stuck state deadlocked; the builder
/// knob is honoured and recorded in the outcome.
#[test]
fn progress_window_is_configurable() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .progress_window(64)
        .processor(Box::new(SlowPoller {
            addr: Addr::new(5),
            period: 3_500,
            polls: 0,
        }))
        .build();
    let outcome = m.run_outcome(10_000);
    assert_eq!(outcome.progress_window, 64);
    let HaltReason::BudgetExhausted { blame } = outcome.reason else {
        panic!("a never-halting poller cannot complete");
    };
    // Gap ~3000 cycles > 64: under the tight window the poller's rare
    // completions no longer count as progress.
    assert_eq!(blame[0].verdict, StallVerdict::Deadlock);
}

/// The wake-schedule engine (`run` skipping provably dead cycles) must
/// report the same completion cycle and statistics as a step-by-step
/// loop, including with multi-cycle bus transactions, where whole
/// bus-occupancy spans are dead.
#[test]
fn bulk_skipped_cycles_match_single_stepping() {
    let build = || {
        let mut b = MachineBuilder::new(ProtocolKind::Rwb);
        b.memory_words(64).transaction_cycles(4);
        for pe in 0..4 {
            b.processor(
                Script::new()
                    .read(Addr::new(pe))
                    .write(Addr::new(pe + 4), decache_mem::Word::new(7))
                    .read(Addr::new(0))
                    .build(),
            );
        }
        b.build()
    };

    let mut stepped = build();
    let mut cycles_stepped = 0u64;
    while !stepped.is_done() {
        stepped.step();
        cycles_stepped += 1;
        assert!(cycles_stepped < 10_000, "runaway");
    }

    let mut jumped = build();
    assert!(jumped.run(10_000));

    assert_eq!(jumped.cycles(), stepped.cycles());
    assert_eq!(jumped.stats(), stepped.stats());
    assert_eq!(jumped.traffic(), stepped.traffic());
    for bus in 0..stepped.bus_count() {
        assert_eq!(
            jumped.traffic_per_bus().bus(bus),
            stepped.traffic_per_bus().bus(bus),
            "bus {bus} occupied/idle accounting must survive bulk skips"
        );
    }
}
