//! Seeded randomized invariant tests for the cycle engine's fast
//! paths: at any point during any run, the sharer/supplier indexes
//! must equal the sets recomputed by a brute-force scan of all tag
//! stores, the scheduler's idle/done/pending-read bookkeeping must
//! match the PE statuses it summarizes, the bus queues' lane
//! invariants must hold, and the wake schedule must be sane
//! ([`Machine::assert_fast_path_invariants`] performs the brute-force
//! comparison). A second test pins the wake schedule's *semantics*:
//! a run that bulk-skips dead cycles must be indistinguishable —
//! cycle count, every statistic, every cache line, all of memory —
//! from the same machine single-stepped.
//!
//! Runs under `decache_rng::testing::check`, so a divergence prints a
//! replayable seed (`DECACHE_TEST_SEED=<seed>`); `DECACHE_TEST_CASES`
//! widens the corpus when hunting rare interleavings.

use decache_bus::ServiceDiscipline;
use decache_core::ProtocolKind;
use decache_machine::{FaultPlan, Machine, MachineBuilder, Script};
use decache_mem::{Addr, Word};
use decache_rng::Rng;

const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

const MEMORY_WORDS: u64 = 256;
const GLOBAL_WORDS: u64 = 64;

/// The bus shapes a random machine may take.
#[derive(Clone, Copy)]
enum Shape {
    Single,
    Interleaved(usize),
    Clustered(usize),
}

/// A random address the given PE is allowed to touch under `shape`
/// (clustered machines impose the hierarchy's region discipline:
/// global words plus the PE's own cluster slice).
fn random_addr(rng: &mut Rng, shape: Shape, pe: usize, pes: usize) -> Addr {
    match shape {
        Shape::Single | Shape::Interleaved(_) => {
            if rng.gen_bool(0.7) {
                // Hot shared region: forces migration and invalidation.
                Addr::new(rng.gen_range(0..GLOBAL_WORDS))
            } else {
                Addr::new(rng.gen_range(0..MEMORY_WORDS))
            }
        }
        Shape::Clustered(clusters) => {
            if rng.gen_bool(0.5) {
                Addr::new(rng.gen_range(0..GLOBAL_WORDS))
            } else {
                let cluster = pe / (pes / clusters);
                let cluster_words = (MEMORY_WORDS - GLOBAL_WORDS) / clusters as u64;
                let base = GLOBAL_WORDS + cluster as u64 * cluster_words;
                Addr::new(base + rng.gen_range(0..cluster_words))
            }
        }
    }
}

/// Builds a machine with random protocol, PE count, bus shape, cache
/// size, and per-PE scripts mixing reads, writes, and Test-and-Set.
fn build_random(rng: &mut Rng) -> Machine {
    build_random_config(rng, 1, None)
}

/// [`build_random`] with an issue-phase worker count and an optional
/// seeded fault storm (memory/cache flips, bus losses, fail stops)
/// layered on the same drawn configuration — the RNG draw sequence is
/// untouched, so one seed pins one machine under every engine path.
fn build_random_config(rng: &mut Rng, threads: usize, fault_seed: Option<u64>) -> Machine {
    let kind = *rng.choose(&PROTOCOLS);
    let shape = *rng.choose(&[
        Shape::Single,
        Shape::Interleaved(2),
        Shape::Interleaved(4),
        Shape::Clustered(2),
    ]);
    let pes = match shape {
        Shape::Clustered(clusters) => clusters * rng.gen_range(1usize..4),
        _ => rng.gen_range(1usize..9),
    };
    // Tiny caches so conflict evictions churn the sharer index.
    let cache_lines = *rng.choose(&[4usize, 8, 16]);
    // Multi-cycle transactions create bus-held dead spans, the case
    // the wake schedule bulk-skips.
    let transaction_cycles = rng.gen_range(1u64..5);
    // Every service discipline, so the equivalence corpora cover the
    // FCFS arrival lane, batched grant gating, and split in-flight
    // phases alongside the default per-cycle arbitration.
    let discipline = *rng.choose(&ServiceDiscipline::ALL);

    let mut builder = MachineBuilder::new(kind);
    builder
        .memory_words(MEMORY_WORDS)
        .cache_lines(cache_lines)
        .transaction_cycles(transaction_cycles)
        .discipline(discipline);
    match shape {
        Shape::Single => {}
        Shape::Interleaved(buses) => {
            builder.buses(buses);
        }
        Shape::Clustered(clusters) => {
            builder.clusters(clusters, GLOBAL_WORDS);
        }
    }
    for pe in 0..pes {
        let ops = rng.gen_range(10u64..60);
        let mut script = Script::new();
        for i in 0..ops {
            let addr = random_addr(rng, shape, pe, pes);
            script = match rng.gen_range(0..10u32) {
                0 => script.test_and_set(addr, Word::ONE),
                1..=4 => script.write(addr, Word::new(pe as u64 * 1000 + i)),
                _ => script.read(addr),
            };
        }
        builder.processor(script.build());
    }
    builder.step_threads(threads);
    if let Some(seed) = fault_seed {
        builder.fault_plan(
            FaultPlan::new(seed)
                .memory_flip_rate(0.01)
                .cache_flip_rate(0.01)
                .bus_loss_rate(0.005)
                .fail_stop_rate(0.002),
        );
    }
    builder.build()
}

/// Asserts two finished machines agree on everything observable:
/// cycle count, machine/fault/cache/traffic statistics (per bus and
/// per PE, work-unit counters included via `MachineStats`'s equality),
/// every cache line, and all of memory.
fn assert_observably_identical(a: &Machine, b: &Machine, what: &str, seed: u64) {
    assert_eq!(a.cycles(), b.cycles(), "{what}: cycles (seed {seed})");
    assert_eq!(a.stats(), b.stats(), "{what}: machine stats (seed {seed})");
    assert_eq!(
        a.fault_stats(),
        b.fault_stats(),
        "{what}: fault stats (seed {seed})"
    );
    assert_eq!(a.traffic(), b.traffic(), "{what}: traffic (seed {seed})");
    for bus in 0..a.bus_count() {
        assert_eq!(
            a.traffic_per_bus().bus(bus),
            b.traffic_per_bus().bus(bus),
            "{what}: bus {bus} accounting (seed {seed})"
        );
    }
    for pe in 0..a.pe_count() {
        assert_eq!(
            a.cache_stats(pe),
            b.cache_stats(pe),
            "{what}: P{pe} cache stats (seed {seed})"
        );
    }
    for word in 0..a.memory().size() {
        let addr = Addr::new(word);
        assert_eq!(
            a.snapshot(addr),
            b.snapshot(addr),
            "{what}: {addr} (seed {seed})"
        );
    }
}

#[test]
fn sharer_index_matches_brute_force_recompute() {
    // NOTE: `machine.run(burst)` below drives the wake-schedule
    // engine, so the invariant assertions land mid-run at arbitrary
    // points between bulk skips.
    decache_rng::testing::check("fast_path_invariants", 64, |rng| {
        let mut machine = build_random(rng);
        machine.assert_fast_path_invariants();
        let mut budget = 100_000u64;
        while !machine.is_done() && budget > 0 {
            let burst = rng.gen_range(1u64..64);
            machine.run(burst.min(budget));
            budget = budget.saturating_sub(burst);
            machine.assert_fast_path_invariants();
        }
        assert!(machine.is_done(), "random machine failed to terminate");
        machine.assert_fast_path_invariants();
    });
}

/// Two machines built from the same seed, one single-stepped and one
/// driven through [`Machine::run`]'s dead-cycle-skipping wake
/// schedule in random bursts, must agree on everything observable:
/// cycle count, machine/cache/traffic statistics (per bus), every
/// cache line, and all of memory. Covers all 7 protocols, every bus
/// shape, and transaction_cycles 1..=4 via `build_random`.
#[test]
fn wake_schedule_matches_single_stepping() {
    decache_rng::testing::check("wake_schedule_equivalence", 48, |rng| {
        let seed = rng.next_u64();
        let mut stepped = build_random(&mut Rng::from_seed(seed));
        let mut jumped = build_random(&mut Rng::from_seed(seed));

        let mut guard = 0u64;
        while !stepped.is_done() {
            stepped.step();
            guard += 1;
            assert!(guard < 200_000, "random machine failed to terminate");
        }

        while !jumped.is_done() {
            let burst = rng.gen_range(1u64..128);
            jumped.run(burst);
            jumped.assert_fast_path_invariants();
            assert!(
                jumped.cycles() <= stepped.cycles(),
                "wake schedule overshot the completion cycle"
            );
        }

        assert_eq!(jumped.cycles(), stepped.cycles(), "seed {seed}");
        assert_eq!(jumped.stats(), stepped.stats(), "seed {seed}");
        assert_eq!(jumped.traffic(), stepped.traffic(), "seed {seed}");
        for bus in 0..stepped.bus_count() {
            assert_eq!(
                jumped.traffic_per_bus().bus(bus),
                stepped.traffic_per_bus().bus(bus),
                "bus {bus} accounting diverged (seed {seed})"
            );
        }
        for pe in 0..stepped.pe_count() {
            assert_eq!(
                jumped.cache_stats(pe),
                stepped.cache_stats(pe),
                "P{pe} cache stats diverged (seed {seed})"
            );
        }
        for word in 0..MEMORY_WORDS {
            let addr = Addr::new(word);
            assert_eq!(
                jumped.snapshot(addr),
                stepped.snapshot(addr),
                "{addr} diverged (seed {seed})"
            );
        }
    });
}

/// Two machines from the same seed, one on the default snoop dispatch
/// (batched over the sharer bitset where the shape allows) and one
/// forced onto the per-sharer scan path, must agree on everything
/// observable — including the work-unit counters, which count logical
/// work and so must be path-independent. A third of the corpus layers
/// a fault storm on both machines: faults force the scan path at
/// runtime, so the dispatcher's fallback is exercised too, and the
/// fault histories must coincide exactly. Covers all 7 protocols and
/// every bus shape via `build_random_config`.
#[test]
fn batched_broadcast_matches_forced_scan() {
    decache_rng::testing::check("batched_vs_scan", 48, |rng| {
        let seed = rng.next_u64();
        let fault_seed = rng.gen_bool(0.33).then(|| rng.next_u64());
        let mut batched = build_random_config(&mut Rng::from_seed(seed), 1, fault_seed);
        let mut scanned = build_random_config(&mut Rng::from_seed(seed), 1, fault_seed);
        scanned.force_scan_snoop();

        assert!(batched.run(300_000), "batched machine failed to terminate");
        assert!(scanned.run(300_000), "scanned machine failed to terminate");
        batched.assert_fast_path_invariants();
        scanned.assert_fast_path_invariants();
        assert_observably_identical(&batched, &scanned, "batched vs scan", seed);
    });
}

/// Two machines from the same seed, one sequential and one built with
/// `step_threads(4)`, must agree on everything observable. Small
/// random machines sit below the shard gate's idle floor, so this
/// corpus pins the gate's *inertness* (the plumbing must not perturb a
/// machine it never engages for); the companion 256-PE test below
/// drives the gate itself.
#[test]
fn sharded_issue_plumbing_is_inert_below_the_gate() {
    decache_rng::testing::check("sharded_vs_sequential", 32, |rng| {
        let seed = rng.next_u64();
        let fault_seed = rng.gen_bool(0.25).then(|| rng.next_u64());
        let mut seq = build_random_config(&mut Rng::from_seed(seed), 1, fault_seed);
        let mut sharded = build_random_config(&mut Rng::from_seed(seed), 4, fault_seed);

        assert!(seq.run(300_000), "sequential machine failed to terminate");
        assert!(sharded.run(300_000), "sharded machine failed to terminate");
        assert_eq!(sharded.sharded_cycles(), 0, "gate engaged below the floor");
        assert_observably_identical(&seq, &sharded, "sharded vs sequential", seed);
    });
}

/// A 256-PE machine whose PEs mostly hit their warmed private words —
/// so well over 128 PEs stay idle-and-issuing per cycle, holding the
/// shard gate open — with periodic hot-word writes for coherence
/// traffic. The sharded run must engage (checked via the engine-path
/// odometer) and remain byte-identical to the sequential engine.
#[test]
fn sharded_issue_engages_and_matches_at_256_pes() {
    sharded_issue_at_256_pes(ServiceDiscipline::PerCycle);
}

/// The same 256-PE shard-gate scenario under split-transaction bus
/// mode: the issue phase runs sharded while address phases sit in
/// flight awaiting their data phases, so the worker pool and the
/// split queue state must compose without perturbing a single
/// statistic. This is the scenario TSan instruments end to end.
#[test]
fn sharded_issue_engages_and_matches_under_split_transactions() {
    sharded_issue_at_256_pes(ServiceDiscipline::Split);
}

fn sharded_issue_at_256_pes(discipline: ServiceDiscipline) {
    let build = |threads: usize| -> Machine {
        const PES: usize = 256;
        let mut builder = MachineBuilder::new(ProtocolKind::Rwb);
        builder
            .memory_words(1 << 12)
            .cache_lines(16)
            .discipline(discipline)
            .transaction_cycles(3)
            .step_threads(threads);
        for pe in 0..PES {
            let base = 1024 + pe as u64 * 8;
            let mut script = Script::new();
            for w in 0..4u64 {
                script = script.read(Addr::new(base + w));
            }
            for i in 0..96u64 {
                script = if (i + pe as u64).is_multiple_of(24) {
                    script.write(Addr::new(i % 16), Word::new(pe as u64 * 1000 + i))
                } else {
                    script.read(Addr::new(base + i % 4))
                };
            }
            builder.processor(script.build());
        }
        builder.build()
    };

    let mut seq = build(1);
    let mut sharded = build(4);
    assert!(seq.run(1_000_000), "sequential machine failed to terminate");
    assert!(
        sharded.run(1_000_000),
        "sharded machine failed to terminate"
    );
    assert_eq!(seq.sharded_cycles(), 0);
    assert!(
        sharded.sharded_cycles() > 0,
        "the shard gate never engaged at 256 PEs"
    );
    seq.assert_fast_path_invariants();
    sharded.assert_fast_path_invariants();
    assert_observably_identical(
        &seq,
        &sharded,
        &format!("sharded issue at 256 PEs under {discipline}"),
        0,
    );
}
