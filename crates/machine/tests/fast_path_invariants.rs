//! Seeded randomized invariant test for the cycle engine's fast-path
//! indexes: at any point during any run, the sharer index must equal
//! the set recomputed by a brute-force scan of all tag stores, and the
//! scheduler's idle/done/pending-read bookkeeping must match the PE
//! statuses it summarizes ([`Machine::assert_fast_path_invariants`]
//! performs the brute-force comparison).
//!
//! Runs under `decache_rng::testing::check`, so a divergence prints a
//! replayable seed (`DECACHE_TEST_SEED=<seed>`); `DECACHE_TEST_CASES`
//! widens the corpus when hunting rare interleavings.

use decache_core::ProtocolKind;
use decache_machine::{Machine, MachineBuilder, Script};
use decache_mem::{Addr, Word};
use decache_rng::Rng;

const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::Rb,
    ProtocolKind::RbNoBroadcast,
    ProtocolKind::Rwb,
    ProtocolKind::RwbThreshold(1),
    ProtocolKind::RwbThreshold(3),
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

const MEMORY_WORDS: u64 = 256;
const GLOBAL_WORDS: u64 = 64;

/// The bus shapes a random machine may take.
#[derive(Clone, Copy)]
enum Shape {
    Single,
    Interleaved(usize),
    Clustered(usize),
}

/// A random address the given PE is allowed to touch under `shape`
/// (clustered machines impose the hierarchy's region discipline:
/// global words plus the PE's own cluster slice).
fn random_addr(rng: &mut Rng, shape: Shape, pe: usize, pes: usize) -> Addr {
    match shape {
        Shape::Single | Shape::Interleaved(_) => {
            if rng.gen_bool(0.7) {
                // Hot shared region: forces migration and invalidation.
                Addr::new(rng.gen_range(0..GLOBAL_WORDS))
            } else {
                Addr::new(rng.gen_range(0..MEMORY_WORDS))
            }
        }
        Shape::Clustered(clusters) => {
            if rng.gen_bool(0.5) {
                Addr::new(rng.gen_range(0..GLOBAL_WORDS))
            } else {
                let cluster = pe / (pes / clusters);
                let cluster_words = (MEMORY_WORDS - GLOBAL_WORDS) / clusters as u64;
                let base = GLOBAL_WORDS + cluster as u64 * cluster_words;
                Addr::new(base + rng.gen_range(0..cluster_words))
            }
        }
    }
}

/// Builds a machine with random protocol, PE count, bus shape, cache
/// size, and per-PE scripts mixing reads, writes, and Test-and-Set.
fn build_random(rng: &mut Rng) -> Machine {
    let kind = *rng.choose(&PROTOCOLS);
    let shape = *rng.choose(&[
        Shape::Single,
        Shape::Interleaved(2),
        Shape::Interleaved(4),
        Shape::Clustered(2),
    ]);
    let pes = match shape {
        Shape::Clustered(clusters) => clusters * rng.gen_range(1usize..4),
        _ => rng.gen_range(1usize..9),
    };
    // Tiny caches so conflict evictions churn the sharer index.
    let cache_lines = *rng.choose(&[4usize, 8, 16]);

    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(MEMORY_WORDS).cache_lines(cache_lines);
    match shape {
        Shape::Single => {}
        Shape::Interleaved(buses) => {
            builder.buses(buses);
        }
        Shape::Clustered(clusters) => {
            builder.clusters(clusters, GLOBAL_WORDS);
        }
    }
    for pe in 0..pes {
        let ops = rng.gen_range(10u64..60);
        let mut script = Script::new();
        for i in 0..ops {
            let addr = random_addr(rng, shape, pe, pes);
            script = match rng.gen_range(0..10u32) {
                0 => script.test_and_set(addr, Word::ONE),
                1..=4 => script.write(addr, Word::new(pe as u64 * 1000 + i)),
                _ => script.read(addr),
            };
        }
        builder.processor(script.build());
    }
    builder.build()
}

#[test]
fn sharer_index_matches_brute_force_recompute() {
    decache_rng::testing::check("fast_path_invariants", 64, |rng| {
        let mut machine = build_random(rng);
        machine.assert_fast_path_invariants();
        let mut budget = 100_000u64;
        while !machine.is_done() && budget > 0 {
            let burst = rng.gen_range(1u64..64);
            machine.run(burst.min(budget));
            budget = budget.saturating_sub(burst);
            machine.assert_fast_path_invariants();
        }
        assert!(machine.is_done(), "random machine failed to terminate");
        machine.assert_fast_path_invariants();
    });
}
