//! Multi-cycle bus transactions and non-default cache geometries.

use decache_cache::Geometry;
use decache_core::{LineState, ProtocolKind};
use decache_machine::{MachineBuilder, Script};
use decache_mem::{Addr, Word};

#[test]
fn slow_transactions_stretch_the_run_without_changing_results() {
    let x = Addr::new(0);
    let run = |latency: u64| {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(64)
            .transaction_cycles(latency)
            .processor(Script::new().write(x, Word::new(5)).read(x).build())
            .processor(Script::new().read(x).read(x).build())
            .build();
        m.run_to_completion(100_000);
        m
    };
    let fast = run(1);
    let slow = run(4);
    // Same final state...
    assert_eq!(
        fast.memory().peek(x).unwrap(),
        slow.memory().peek(x).unwrap()
    );
    assert_eq!(fast.cache_line(0, x), slow.cache_line(0, x));
    assert_eq!(
        fast.traffic().total_transactions(),
        slow.traffic().total_transactions()
    );
    // ...but the slow machine takes strictly longer.
    assert!(
        slow.cycles() > fast.cycles(),
        "{} vs {}",
        slow.cycles(),
        fast.cycles()
    );
}

#[test]
fn occupancy_cycles_are_counted_as_busy() {
    // Two back-to-back misses with 3-cycle transactions: the second
    // read must wait out the first's occupancy.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .transaction_cycles(3)
        .processor(Script::new().read(Addr::new(0)).read(Addr::new(1)).build())
        .build();
    m.run_to_completion(1_000);
    let t = m.traffic();
    assert_eq!(t.total_transactions(), 2);
    // Grant @1, occupied @2-3, grant @4, one trailing occupied cycle @5
    // while the processor halts: five busy cycles in all.
    assert_eq!(t.busy_cycles, 5);
    assert!(m.cycles() >= 5);
}

#[test]
fn slow_bus_saturates_with_fewer_processors() {
    // The Section 7 point sharpened: with 4-cycle transactions, 8 PEs
    // already pin the bus near 100%, where the 1-cycle machine idles.
    let run = |latency: u64| {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(4096)
            .cache_lines(64)
            .transaction_cycles(latency)
            .processors(8, |pe| {
                let base = 64 * (pe as u64 + 1);
                let mut s = Script::new();
                for i in 0..32 {
                    s = s.read(Addr::new(base + (i % 16)));
                }
                s.build()
            })
            .build();
        m.run_to_completion(1_000_000);
        m.traffic().utilization()
    };
    assert!(run(4) > run(1), "slow bus must be the busier one");
}

#[test]
fn set_associative_caches_eliminate_conflict_misses() {
    // Two addresses that conflict in a 4-line direct-mapped cache fit
    // together in a 2-way cache of the same capacity.
    let a = Addr::new(1);
    let b = Addr::new(5); // 5 % 4 == 1: conflicts with a when direct-mapped
    let thrash = || {
        let mut s = Script::new();
        for _ in 0..8 {
            s = s.read(a).read(b);
        }
        s.build()
    };

    let mut dm = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_geometry(Geometry::new(4, 1, 1))
        .processor(thrash())
        .build();
    dm.run_to_completion(10_000);

    let mut sa = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_geometry(Geometry::new(2, 2, 1))
        .processor(thrash())
        .build();
    sa.run_to_completion(10_000);

    let dm_misses = dm.total_cache_stats().total_misses();
    let sa_misses = sa.total_cache_stats().total_misses();
    assert!(dm_misses > 10, "direct-mapped thrashes: {dm_misses}");
    assert_eq!(sa_misses, 2, "2-way holds both: only cold misses");
    // Both remain coherent.
    assert_eq!(
        sa.cache_line(0, a).map(|(s, _)| s),
        Some(LineState::Readable)
    );
    assert_eq!(
        sa.cache_line(0, b).map(|(s, _)| s),
        Some(LineState::Readable)
    );
}

#[test]
#[should_panic(expected = "one-word blocks")]
fn multi_word_blocks_are_rejected() {
    MachineBuilder::new(ProtocolKind::Rb).cache_geometry(Geometry::new(4, 1, 2));
}

#[test]
#[should_panic(expected = "at least one cycle")]
fn zero_latency_is_rejected() {
    MachineBuilder::new(ProtocolKind::Rb).transaction_cycles(0);
}
