//! Seeded randomized tests of the machine simulator.

use decache_core::{Configuration, ProtocolKind};
use decache_machine::{Machine, MachineBuilder, Script};
use decache_mem::{Addr, Word};
use decache_rng::{testing::check, Rng};

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Rb,
    ProtocolKind::Rwb,
    ProtocolKind::WriteOnce,
    ProtocolKind::WriteThrough,
];

/// Random `(op selector, address, value)` triples, the common program
/// encoding of this suite.
fn gen_ops(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(u8, u64, u64)> {
    (0..rng.gen_range(lo..hi))
        .map(|_| {
            (
                rng.gen_range(0u8..=255),
                rng.next_u64(),
                rng.gen_range(1u64..100),
            )
        })
        .collect()
}

/// Builds a machine running the encoded single-PE program.
fn single_pe(kind: ProtocolKind, ops: &[(u8, u64, u64)], buses: usize) -> Machine {
    let mut script = Script::new();
    for &(op, addr, value) in ops {
        let a = Addr::new(addr % 32);
        script = match op % 3 {
            0 => script.read(a),
            1 => script.write(a, Word::new(value)),
            _ => script.test_and_set(a, Word::new(value | 1)),
        };
    }
    let mut builder = MachineBuilder::new(kind);
    builder.memory_words(64).cache_lines(8).buses(buses);
    builder.processor(script.build());
    let mut machine = builder.build();
    machine.run_to_completion(1_000_000);
    machine
}

/// Bus count is performance-transparent: the same single-PE program on
/// 1, 2, or 4 buses produces identical final memory and cache contents.
#[test]
fn bus_count_is_semantically_transparent() {
    check("bus_count_is_semantically_transparent", 16, |rng| {
        let ops = gen_ops(rng, 1, 40);
        for kind in PROTOCOLS {
            let single = single_pe(kind, &ops, 1);
            for buses in [2usize, 4] {
                let multi = single_pe(kind, &ops, buses);
                for a in 0..32u64 {
                    let addr = Addr::new(a);
                    assert_eq!(
                        single.memory().peek(addr).unwrap(),
                        multi.memory().peek(addr).unwrap(),
                        "memory diverges at @{a} with {buses} buses under {kind}"
                    );
                    assert_eq!(
                        single.cache_line(0, addr),
                        multi.cache_line(0, addr),
                        "cache diverges at @{a} with {buses} buses under {kind}"
                    );
                }
                // Total traffic is also identical; it just spreads over
                // buses.
                assert_eq!(
                    single.traffic().total_transactions(),
                    multi.traffic().total_transactions()
                );
            }
        }
    });
}

/// Simulation is deterministic: identical builds produce identical
/// cycle counts, traffic, and stats.
#[test]
fn runs_are_deterministic() {
    check("runs_are_deterministic", 16, |rng| {
        let ops = gen_ops(rng, 1, 30);
        let pes = rng.gen_range(1usize..4);
        for kind in PROTOCOLS {
            let build = || {
                let mut builder = MachineBuilder::new(kind);
                builder.memory_words(64).cache_lines(8);
                for _ in 0..pes {
                    let mut script = Script::new();
                    for &(op, addr, value) in &ops {
                        let a = Addr::new(addr % 16);
                        script = match op % 3 {
                            0 => script.read(a),
                            1 => script.write(a, Word::new(value)),
                            _ => script.test_and_set(a, Word::new(value | 1)),
                        };
                    }
                    builder.processor(script.build());
                }
                let mut m = builder.build();
                m.run_to_completion(5_000_000);
                m
            };
            let a = build();
            let b = build();
            assert_eq!(a.cycles(), b.cycles());
            assert_eq!(a.traffic(), b.traffic());
            assert_eq!(a.stats(), b.stats());
        }
    });
}

/// Cycle-by-cycle invariant: at every step of a concurrent run, every
/// address is in a legal configuration (the Lemma holds not just at
/// quiescence but at every bus-cycle boundary).
#[test]
fn lemma_holds_at_every_cycle() {
    check("lemma_holds_at_every_cycle", 16, |rng| {
        let seed_ops: Vec<(u8, u64, u64)> = (0..rng.gen_range(4usize..24))
            .map(|_| {
                (
                    rng.gen_range(0u8..=255),
                    rng.gen_range(0u64..6),
                    rng.gen_range(1u64..50),
                )
            })
            .collect();
        for kind in PROTOCOLS {
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(64).cache_lines(4);
            for chunk in seed_ops.chunks(6) {
                let mut script = Script::new();
                for &(op, addr, value) in chunk {
                    let a = Addr::new(addr);
                    script = match op % 3 {
                        0 => script.read(a),
                        1 => script.write(a, Word::new(value)),
                        _ => script.test_and_set(a, Word::new(1)),
                    };
                }
                builder.processor(script.build());
            }
            let mut machine = builder.build();
            for _ in 0..5_000 {
                if machine.is_done() {
                    break;
                }
                machine.step();
                for a in 0..6u64 {
                    let snap = machine.snapshot(Addr::new(a));
                    assert_ne!(
                        snap.configuration(),
                        Configuration::Illegal,
                        "cycle {}: illegal configuration at @{a} under {kind}: {snap}",
                        machine.cycles()
                    );
                }
            }
            assert!(machine.is_done());
        }
    });
}

/// Conservation: every processor-issued reference is accounted as
/// exactly one hit or miss, and bus transactions never exceed
/// references plus retries/write-backs.
#[test]
fn reference_accounting_balances() {
    check("reference_accounting_balances", 16, |rng| {
        let ops_per_pe = rng.gen_range(1usize..25);
        let pes = rng.gen_range(1usize..5);
        for kind in PROTOCOLS {
            let mut builder = MachineBuilder::new(kind);
            builder.memory_words(64).cache_lines(8);
            for pe in 0..pes {
                let mut script = Script::new();
                for i in 0..ops_per_pe {
                    let a = Addr::new(((pe * 7 + i * 3) % 16) as u64);
                    script = if i % 3 == 0 {
                        script.write(a, Word::new(i as u64 + 1))
                    } else {
                        script.read(a)
                    };
                }
                builder.processor(script.build());
            }
            let mut machine = builder.build();
            machine.run_to_completion(1_000_000);
            let refs = machine.total_cache_stats().total_references();
            assert_eq!(refs, (ops_per_pe * pes) as u64);
            let t = machine.traffic();
            assert!(t.busy_cycles + t.idle_cycles >= machine.cycles());
        }
    });
}
