//! Integration tests of the deterministic fault-injection engine:
//! detection, in-loop recovery, fail-stop degradation, and the
//! structured [`RunOutcome`] surface.

use decache_core::ProtocolKind;
use decache_machine::{
    FailStopPolicy, FaultPlan, HaltReason, MachineBuilder, Poll, Processor, RecoveryPolicy, Script,
    SpinReader, StallSite, StallVerdict,
};
use decache_mem::{Addr, AddrRange, Word};
use decache_rng::testing::check;

fn w(v: u64) -> Word {
    Word::new(v)
}

/// A conducted processor that waits forever — the canonical deadlock.
struct WaitForever;

impl Processor for WaitForever {
    fn next_op(&mut self, _last: Option<&decache_machine::OpResult>) -> Poll {
        Poll::Wait
    }
}

/// A script of `n` filler reads over a private address range, to push a
/// PE's interesting accesses past a scheduled fault cycle.
fn fillers(base: u64, n: u64) -> Script {
    let mut s = Script::new();
    for i in 0..n {
        s = s.read(Addr::new(base + (i % 4)));
    }
    s
}

#[test]
fn scheduled_memory_flip_is_detected_and_majority_repaired() {
    let x = Addr::new(1);
    // Two PEs replicate x early; the third reaches x only after the
    // scheduled flip, so its bus read performs the detection.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .memory_words(64)
        .initialize_memory(x, &[w(5)])
        .processor(Script::new().read(x).build())
        .processor(Script::new().read(x).build())
        .processor(fillers(40, 30).read(x).build())
        .fault_plan(FaultPlan::new(7).memory_flip_at(25, x))
        .build();
    let outcome = m.run_outcome(10_000);
    assert!(outcome.is_complete(), "{outcome}");
    let s = m.fault_stats();
    assert_eq!(s.memory_faults_injected, 1);
    assert_eq!(s.memory_faults_detected, 1);
    assert_eq!(s.memory_recoveries_majority, 1);
    assert_eq!(s.memory_recoveries_failed, 0);
    assert_eq!(s.memory_recovery_success_rate(), Some(1.0));
    assert!(s.mean_recovery_latency().unwrap() > 0.0);
    assert!(m.memory().parity_ok(x));
    assert_eq!(m.memory().peek(x).unwrap(), w(5));
}

#[test]
fn recovery_policy_off_adopts_the_corrupt_value() {
    let x = Addr::new(1);
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .memory_words(64)
        .initialize_memory(x, &[w(5)])
        .processor(Script::new().read(x).build())
        .processor(fillers(40, 30).read(x).build())
        .fault_plan(FaultPlan::new(7).memory_flip_at(25, x))
        .recovery_policy(RecoveryPolicy::Off)
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.memory_faults_detected, 1);
    assert_eq!(s.memory_recoveries_failed, 1);
    assert_eq!(s.memory_recovery_success_rate(), Some(0.0));
    // The corrupt value was adopted: parity is good again but the word
    // differs from the original by exactly one bit.
    assert!(m.memory().parity_ok(x));
    let got = m.memory().peek(x).unwrap();
    assert_eq!((got.value() ^ 5).count_ones(), 1, "got {got}");
}

#[test]
fn unreplicated_memory_fault_is_detected_but_unrecoverable() {
    let x = Addr::new(1);
    // Nobody ever cached x before the flip: detection finds no replica.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .initialize_memory(x, &[w(5)])
        .processor(fillers(40, 30).read(x).build())
        .fault_plan(FaultPlan::new(7).memory_flip_at(10, x))
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.memory_faults_detected, 1);
    assert_eq!(s.memory_recoveries_failed, 1);
    assert_eq!(s.memory_recoveries_owner + s.memory_recoveries_majority, 0);
}

#[test]
fn corrupted_cache_line_is_scrubbed_on_access_and_lost_write_counted() {
    let x = Addr::new(1);
    // P0's second write is silent, so its Local line (value 9) is the
    // only copy of the latest value; the scheduled flip corrupts it and
    // P0's own later read scrubs the line, losing the write and
    // re-fetching stale memory.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(9))
                .read(Addr::new(40))
                .read(Addr::new(41))
                .read(x)
                .build(),
        )
        .fault_plan(FaultPlan::new(7).cache_flip_at(3, 0, x))
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.cache_faults_injected, 1);
    assert_eq!(s.cache_faults_detected, 1);
    assert_eq!(s.cache_refetches, 1);
    assert_eq!(s.lost_writes, 1, "the owned value 9 existed only there");
    // The refetch observed stale memory: the first write's 1.
    assert_eq!(m.memory().peek(x).unwrap(), w(1));
    assert_eq!(m.cache_line(0, x).unwrap().1, w(1));
}

#[test]
fn corrupt_supplier_cannot_supply_and_the_read_falls_through_to_memory() {
    let x = Addr::new(1);
    // P0 owns x = 9 (silent second write); the flip lands before P1's
    // read reaches the bus, so the supply attempt detects the bad
    // parity, scrubs P0's line, and memory serves the stale 1.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Script::new().write(x, w(1)).write(x, w(9)).build())
        .processor(fillers(40, 12).read(x).build())
        .fault_plan(FaultPlan::new(7).cache_flip_at(8, 0, x))
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.cache_faults_detected, 1);
    assert_eq!(s.lost_writes, 1);
    assert_eq!(m.cache_line(1, x).unwrap().1, w(1));
    assert!(m.cache_line(0, x).is_none(), "scrubbed out of P0");
}

#[test]
fn rwb_write_broadcast_heals_a_corrupted_replica_in_place() {
    let x = Addr::new(1);
    // P0 and P1 replicate x; P1's copy is corrupted; P2's later write
    // broadcast overwrites the bad word before anyone reads it.
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .memory_words(64)
        .initialize_memory(x, &[w(5)])
        .processor(Script::new().read(x).build())
        .processor(Script::new().read(x).build())
        .processor(fillers(40, 12).write(x, w(8)).build())
        .fault_plan(FaultPlan::new(7).cache_flip_at(8, 1, x))
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.cache_faults_injected, 1);
    assert_eq!(s.broadcast_heals, 1, "{s}");
    assert_eq!(s.cache_faults_detected, 0, "healed before any access");
    assert_eq!(s.lost_writes, 0);
    assert_eq!(m.cache_line(1, x).unwrap().1, w(8));
}

#[test]
fn corrupt_eviction_writeback_propagates_the_fault_to_memory() {
    let x = Addr::new(1);
    // Two-line cache: after the flip corrupts the owned line, reads of
    // two conflicting addresses evict it; the corrupt write-back
    // poisons memory, and the PE's own re-read detects it there. No
    // cache holds a clean replica by then, so recovery fails and the
    // flipped value is adopted.
    let conflict_a = Addr::new(3);
    let conflict_b = Addr::new(5);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .cache_lines(2)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(9))
                .read(conflict_a)
                .read(conflict_b)
                .read(x)
                .build(),
        )
        .fault_plan(FaultPlan::new(7).cache_flip_at(3, 0, x))
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.cache_faults_injected, 1);
    assert_eq!(s.cache_faults_detected, 0, "never accessed while cached");
    assert_eq!(s.memory_faults_detected, 1, "detected after write-back");
    assert_eq!(s.memory_recoveries_failed, 1);
    assert!(s.mean_recovery_latency().unwrap() > 0.0, "ledger followed");
    assert!(m.memory().parity_ok(x), "adopted after failed recovery");
    // The adopted value is the owned 9 with exactly one flipped bit.
    let got = m.memory().peek(x).unwrap();
    assert_eq!((got.value() ^ 9).count_ones(), 1, "got {got}");
}

#[test]
fn scheduled_bus_loss_burns_a_cycle_and_the_transaction_retries() {
    let x = Addr::new(1);
    let build = |plan: Option<FaultPlan>| {
        let mut b = MachineBuilder::new(ProtocolKind::Rb);
        b.memory_words(64)
            .initialize_memory(x, &[w(5)])
            .processor(Script::new().read(x).read(Addr::new(2)).build());
        if let Some(plan) = plan {
            b.fault_plan(plan);
        }
        let mut m = b.build();
        m.run_to_completion(10_000);
        m
    };
    let clean = build(None);
    let lossy = build(Some(FaultPlan::new(7).bus_loss_at(1, 0)));
    assert_eq!(lossy.fault_stats().bus_transactions_lost, 1);
    assert_eq!(lossy.cycles(), clean.cycles() + 1, "one cycle burned");
    // Loss never corrupts: final state matches the clean run.
    assert_eq!(
        lossy.memory().peek(x).unwrap(),
        clean.memory().peek(x).unwrap()
    );
    assert_eq!(lossy.cache_line(0, x), clean.cache_line(0, x));
}

#[test]
fn bus_loss_on_an_idle_cycle_is_not_counted() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Script::new().build())
        .fault_plan(FaultPlan::new(7).bus_loss_at(1, 0))
        .build();
    m.run_to_completion(100);
    assert_eq!(m.fault_stats().bus_transactions_lost, 0);
}

#[test]
fn fail_stop_drain_flushes_owned_lines_and_survivors_complete() {
    let x = Addr::new(1);
    let z = Addr::new(2);
    // P0 owns x = 9 (memory stale at 1) and z = 4 (memory current);
    // killing it at cycle 12 drains both owned lines. P1 then reads the
    // drained value.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(9))
                .write(z, w(4))
                .build(),
        )
        .processor(fillers(40, 20).read(x).build())
        .fault_plan(FaultPlan::new(7).fail_stop_at(12, 0))
        .build();
    let outcome = m.run_outcome(10_000);
    assert!(outcome.is_complete(), "graceful degradation: {outcome}");
    assert!(m.pe_failed(0));
    assert!(!m.pe_failed(1));
    assert_eq!(m.live_pes(), 1);
    let s = m.fault_stats();
    assert_eq!(s.pe_fail_stops, 1);
    assert_eq!(s.drained_lines, 2, "x and z were both owned");
    assert_eq!(s.lost_writes, 0);
    assert_eq!(m.memory().peek(x).unwrap(), w(9));
    assert_eq!(m.cache_line(1, x).unwrap().1, w(9));
    assert!(m.cache_line(0, x).is_none(), "the dead cache is dark");
    m.assert_fast_path_invariants();
}

#[test]
fn fail_stop_forfeit_counts_exactly_the_writes_memory_never_saw() {
    let x = Addr::new(1);
    let z = Addr::new(2);
    // Owned x = 9 differs from memory's stale 1 (one lost write); owned
    // z = 4 matches memory (its bus write got there), so it loses
    // nothing — the accounting must distinguish the two.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(
            Script::new()
                .write(x, w(1))
                .write(x, w(9))
                .write(z, w(4))
                .build(),
        )
        .processor(fillers(40, 20).read(x).build())
        .fault_plan(FaultPlan::new(7).fail_stop_at(12, 0))
        .fail_stop_policy(FailStopPolicy::Forfeit)
        .build();
    let outcome = m.run_outcome(10_000);
    assert!(outcome.is_complete(), "{outcome}");
    let s = m.fault_stats();
    assert_eq!(s.drained_lines, 0);
    assert_eq!(s.lost_writes, 1, "only x's silent second write is gone");
    assert_eq!(m.memory().peek(x).unwrap(), w(1), "stale value survives");
    assert_eq!(m.cache_line(1, x).unwrap().1, w(1));
}

#[test]
fn fail_stop_mid_transaction_cancels_the_pending_request() {
    // Three PEs contend for the bus, so early kills catch P0 with a
    // transaction still queued; the cancel must leave no orphaned
    // completion behind and the survivors must drain cleanly.
    for kill_at in [1, 2, 3] {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(64)
            .processor(fillers(8, 6).build())
            .processor(fillers(16, 6).build())
            .processor(fillers(24, 6).build())
            .fault_plan(FaultPlan::new(7).fail_stop_at(kill_at, 0))
            .build();
        let outcome = m.run_outcome(10_000);
        assert!(outcome.is_complete(), "kill at {kill_at}: {outcome}");
        assert!(m.pe_failed(0));
        m.assert_fast_path_invariants();
    }
}

#[test]
fn fail_stop_releases_the_dead_pes_memory_lock() {
    let lock = Addr::new(1);
    // P0 wins the lock (TS sets it to 1) and never releases it; P1
    // spins on TS. Killing P0 forces the *memory* lock free; the word
    // itself still holds 1, so P1 keeps failing TS — run_outcome blames
    // it as a livelock rather than wedging the bus.
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Script::new().test_and_set(lock, w(1)).build())
        .processor(
            Script::new()
                .test_and_set(lock, w(1))
                .test_and_set(lock, w(1))
                .build(),
        )
        .fault_plan(FaultPlan::new(7).fail_stop_at(3, 0))
        .build();
    let outcome = m.run_outcome(1_000);
    assert!(outcome.is_complete(), "{outcome}");
    assert!(m.stats().ts_failures >= 1 || m.stats().ts_successes >= 1);
}

#[test]
fn rate_driven_faults_are_deterministic_per_seed() {
    let x = Addr::new(1);
    let run = |seed: u64| {
        let mut m = MachineBuilder::new(ProtocolKind::Rwb)
            .memory_words(64)
            .cache_lines(8)
            .processors(4, |i| {
                let mut s = Script::new().write(x, w(i as u64 + 1));
                for k in 0..30u64 {
                    s = s.read(Addr::new((i as u64 * 8 + k) % 48)).read(x);
                }
                s.build()
            })
            .fault_plan(
                FaultPlan::new(seed)
                    .memory_flip_rate(0.02)
                    .cache_flip_rate(0.02)
                    .bus_loss_rate(0.01)
                    .region(AddrRange::with_len(Addr::new(0), 48)),
            )
            .build();
        let outcome = m.run_outcome(100_000);
        assert!(outcome.is_complete(), "{outcome}");
        m.assert_fast_path_invariants();
        (outcome.cycles, m.fault_stats())
    };
    let (cycles_a, stats_a) = run(42);
    let (cycles_b, stats_b) = run(42);
    assert_eq!(cycles_a, cycles_b);
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.total_injected() > 0, "rates this high must fire");
    let (_, stats_c) = run(43);
    assert_ne!(stats_a, stats_c, "a different seed draws different faults");
}

#[test]
fn multi_bus_machine_detects_and_recovers_on_every_bus() {
    // Interleaved routing: even addresses on bus 0, odd on bus 1. Flip
    // one word on each bus; readers replicate both words first, so both
    // detections repair by majority.
    let even = Addr::new(2);
    let odd = Addr::new(3);
    let mut m = MachineBuilder::new(ProtocolKind::Rwb)
        .memory_words(64)
        .buses(2)
        .initialize_memory(even, &[w(6), w(7)])
        .processor(Script::new().read(even).read(odd).build())
        .processor(Script::new().read(even).read(odd).build())
        .processor(fillers(40, 30).read(even).read(odd).build())
        .fault_plan(
            FaultPlan::new(7)
                .memory_flip_at(30, even)
                .memory_flip_at(30, odd),
        )
        .build();
    m.run_to_completion(10_000);
    let s = m.fault_stats();
    assert_eq!(s.memory_faults_injected, 2);
    assert_eq!(s.memory_faults_detected, 2);
    assert_eq!(s.memory_recoveries_majority, 2);
    assert_eq!(m.memory().peek(even).unwrap(), w(6));
    assert_eq!(m.memory().peek(odd).unwrap(), w(7));
}

#[test]
fn run_outcome_blames_a_livelocked_spinner() {
    let flag = Addr::new(1);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Box::new(SpinReader::new(flag, |v| !v.is_zero())))
        .build();
    let outcome = m.run_outcome(1_000);
    assert!(!outcome.is_complete());
    let HaltReason::BudgetExhausted { blame } = &outcome.reason else {
        panic!("expected exhaustion, got {outcome}");
    };
    assert_eq!(blame.len(), 1);
    assert_eq!(blame[0].pe, 0);
    assert_eq!(blame[0].site, StallSite::Issuing { last: Some(flag) });
    assert_eq!(blame[0].verdict, StallVerdict::Livelock);
    assert!(outcome.to_string().contains("livelock"), "{outcome}");
}

#[test]
fn run_outcome_blames_a_deadlocked_waiter() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .progress_window(256)
        .processor(Box::new(WaitForever))
        .processor(Script::new().read(Addr::new(0)).build())
        .build();
    let outcome = m.run_outcome(1_000);
    assert_eq!(outcome.progress_window, 256);
    let HaltReason::BudgetExhausted { blame } = &outcome.reason else {
        panic!("expected exhaustion, got {outcome}");
    };
    assert_eq!(blame.len(), 1, "the finished PE is not blamed");
    assert_eq!(blame[0].pe, 0);
    assert_eq!(blame[0].verdict, StallVerdict::Deadlock);
    assert_eq!(blame[0].site, StallSite::Issuing { last: None });
    assert!(
        outcome.to_string().contains("never issued an operation"),
        "{outcome}"
    );
}

#[test]
#[should_panic(expected = "machine not done after")]
fn run_to_completion_panic_carries_the_diagnosis() {
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .processor(Box::new(WaitForever))
        .build();
    m.run_to_completion(100);
}

#[test]
fn randomized_fault_storms_never_wedge_the_machine() {
    const KINDS: [ProtocolKind; 7] = [
        ProtocolKind::Rb,
        ProtocolKind::RbNoBroadcast,
        ProtocolKind::Rwb,
        ProtocolKind::RwbThreshold(1),
        ProtocolKind::RwbThreshold(3),
        ProtocolKind::WriteOnce,
        ProtocolKind::WriteThrough,
    ];
    check(
        "randomized_fault_storms_never_wedge_the_machine",
        8,
        |rng| {
            let kind = *rng.choose(&KINDS);
            let pes = rng.gen_range(2usize..=4);
            let seed = rng.next_u64();
            let ops = rng.gen_range(10u64..40);
            let mut m = MachineBuilder::new(kind)
                .memory_words(64)
                .cache_lines(4)
                .processors(pes, |i| {
                    let mut s = Script::new();
                    for k in 0..ops {
                        let a = Addr::new((i as u64 * 7 + k * 3) % 32);
                        s = if k % 3 == 0 {
                            s.write(a, w(k + 1))
                        } else {
                            s.read(a)
                        };
                    }
                    s.build()
                })
                .fault_plan(
                    FaultPlan::new(seed)
                        .memory_flip_rate(0.05)
                        .cache_flip_rate(0.05)
                        .bus_loss_rate(0.02)
                        .fail_stop_rate(0.002)
                        .region(AddrRange::with_len(Addr::new(0), 32)),
                )
                .build();
            let outcome = m.run_outcome(200_000);
            assert!(outcome.is_complete(), "{kind:?} seed {seed}: {outcome}");
            m.assert_fast_path_invariants();
            let s = m.fault_stats();
            // Detection can never exceed what exists to detect.
            assert!(s.cache_faults_detected + s.broadcast_heals <= s.cache_faults_injected);
            assert!(s.pe_fail_stops < pes as u64, "last PE is never killed");
        },
    );
}

#[test]
fn fail_stop_of_the_manual_api_matches_the_engine() {
    let x = Addr::new(1);
    let mut m = MachineBuilder::new(ProtocolKind::Rb)
        .memory_words(64)
        .processor(Script::new().write(x, w(1)).write(x, w(9)).build())
        .processor(fillers(40, 10).read(x).build())
        .build();
    // Run a few cycles, then kill P0 by hand mid-run.
    for _ in 0..6 {
        m.step();
    }
    assert!(m.fail_stop(0));
    assert!(!m.fail_stop(0), "second kill is a no-op");
    let outcome = m.run_outcome(10_000);
    assert!(outcome.is_complete(), "{outcome}");
    assert_eq!(m.fault_stats().pe_fail_stops, 1);
    assert_eq!(m.memory().peek(x).unwrap(), w(9), "drained by default");
}
