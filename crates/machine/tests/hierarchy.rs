//! The hierarchical (clustered) machine: correctness and the
//! traffic-isolation property that motivates it (Section 8 future work).

use decache_bus::Routing;
use decache_core::{LineState, ProtocolKind};
use decache_machine::{MachineBuilder, Script};
use decache_mem::{Addr, Word};

/// A 4-PE, 2-cluster machine: global region [0, 64), cluster regions of
/// 96 words each at 64 and 160.
fn builder(kind: ProtocolKind) -> MachineBuilder {
    let mut b = MachineBuilder::new(kind);
    b.memory_words(256).cache_lines(16).clusters(2, 64);
    b
}

#[test]
fn routing_shape_is_exposed() {
    let mut b = builder(ProtocolKind::Rb);
    b.processors(4, |_| Script::new().build());
    let machine = b.build();
    assert_eq!(machine.bus_count(), 3);
    assert_eq!(machine.routing(), Routing::clustered(2, 64, 96));
    assert!(machine.routing().to_string().contains("hierarchical"));
}

#[test]
fn cluster_private_traffic_stays_off_the_global_bus() {
    let mut b = builder(ProtocolKind::Rb);
    // PEs 0,1 (cluster 0) touch only cluster 0's region at 64..;
    // PEs 2,3 (cluster 1) touch only cluster 1's region at 160.. .
    b.processor(
        Script::new()
            .write(Addr::new(64), Word::ONE)
            .read(Addr::new(65))
            .build(),
    );
    b.processor(Script::new().read(Addr::new(64)).build());
    b.processor(Script::new().write(Addr::new(160), Word::ONE).build());
    b.processor(Script::new().read(Addr::new(161)).build());
    let mut machine = b.build();
    machine.run_to_completion(10_000);

    let per_bus = machine.traffic_per_bus();
    assert_eq!(
        per_bus.bus(0).total_transactions(),
        0,
        "global bus must stay idle"
    );
    assert!(per_bus.bus(1).total_transactions() > 0);
    assert!(per_bus.bus(2).total_transactions() > 0);
}

#[test]
fn global_addresses_stay_coherent_across_clusters() {
    let shared = Addr::new(3); // inside the global region
    for kind in ProtocolKind::ALL {
        let mut b = builder(kind);
        // Writer in cluster 0, readers in both clusters.
        b.processor(
            Script::new()
                .write(shared, Word::new(9))
                .write(shared, Word::new(10))
                .build(),
        );
        b.processor(Script::new().read(shared).read(shared).build());
        b.processor(Script::new().read(shared).read(shared).build());
        b.processor(Script::new().read(shared).read(shared).build());
        let mut machine = b.build();
        machine.run_to_completion(10_000);

        // Every cache's final view of the shared word is the latest
        // value or invalid — never stale-readable.
        for pe in 0..4 {
            if let Some((state, data)) = machine.cache_line(pe, shared) {
                if state.is_readable_locally() && !state.owns_latest() {
                    assert_eq!(data, Word::new(10), "{kind} P{pe} holds stale data");
                }
            }
        }
    }
}

#[test]
fn cluster_buses_run_in_parallel() {
    // The same private workload on a flat single-bus machine vs the
    // clustered machine: clusters finish faster because their buses
    // serve misses concurrently.
    let private_job = |base: u64| {
        let mut s = Script::new();
        for i in 0..24 {
            s = s.write(Addr::new(base + i), Word::new(i));
        }
        s.build()
    };

    let mut flat = MachineBuilder::new(ProtocolKind::Rb);
    flat.memory_words(256).cache_lines(16);
    flat.processor(private_job(64));
    flat.processor(private_job(96));
    flat.processor(private_job(160));
    flat.processor(private_job(192));
    let mut flat = flat.build();
    flat.run_to_completion(100_000);

    let mut clustered = builder(ProtocolKind::Rb);
    clustered.processor(private_job(64));
    clustered.processor(private_job(96));
    clustered.processor(private_job(160));
    clustered.processor(private_job(192));
    let mut clustered = clustered.build();
    clustered.run_to_completion(100_000);

    assert!(
        clustered.cycles() < flat.cycles(),
        "clustered {} should beat flat {}",
        clustered.cycles(),
        flat.cycles()
    );
}

#[test]
fn local_state_works_inside_a_cluster() {
    let mut b = builder(ProtocolKind::Rb);
    let x = Addr::new(70); // cluster 0's region
    b.processor(
        Script::new()
            .write(x, Word::new(1))
            .write(x, Word::new(2))
            .build(),
    );
    b.processor(Script::new().read(x).build()); // same cluster: supply path
    b.processor(Script::new().build());
    b.processor(Script::new().build());
    let mut machine = b.build();
    machine.run_to_completion(10_000);
    assert_eq!(
        machine.cache_line(0, x),
        Some((LineState::Readable, Word::new(2)))
    );
    assert_eq!(
        machine.cache_line(1, x),
        Some((LineState::Readable, Word::new(2)))
    );
    assert_eq!(machine.memory().peek(x).unwrap(), Word::new(2));
    assert_eq!(machine.traffic_per_bus().bus(1).aborted_reads, 1);
}

#[test]
#[should_panic(expected = "not attached")]
fn touching_a_foreign_cluster_region_is_rejected() {
    let mut b = builder(ProtocolKind::Rb);
    // PE 0 (cluster 0) touches cluster 1's region: a discipline
    // violation the machine must catch loudly rather than silently
    // break coherence.
    b.processor(Script::new().read(Addr::new(200)).build());
    b.processor(Script::new().build());
    b.processor(Script::new().build());
    b.processor(Script::new().build());
    let mut machine = b.build();
    machine.run_to_completion(10_000);
}

#[test]
#[should_panic(expected = "do not divide")]
fn uneven_clusters_are_rejected() {
    let mut b = MachineBuilder::new(ProtocolKind::Rb);
    b.memory_words(256).clusters(2, 64);
    b.processors(3, |_| Script::new().build());
    let _ = b.build();
}
