//! Machine-level statistics beyond cache and bus counters.

use std::fmt;

/// Counters maintained by the machine itself (cache hit/miss statistics
/// live in [`CacheStats`], bus traffic in [`TrafficStats`]).
///
/// [`CacheStats`]: decache_cache::CacheStats
/// [`TrafficStats`]: decache_bus::TrafficStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Stalled reads completed by snooping a broadcast instead of their
    /// own bus transaction — the payoff of distributing data, not just
    /// events.
    pub broadcast_satisfied: u64,
    /// Evicted lines written back to memory.
    pub writebacks: u64,
    /// Test-and-Set operations that found the variable non-zero.
    pub ts_failures: u64,
    /// Test-and-Set operations that acquired.
    pub ts_successes: u64,
    /// Bus transactions rejected by a memory lock and requeued.
    pub lock_rejections: u64,
    /// Locked reads among [`MachineStats::lock_rejections`] — a second
    /// PE's Test-and-Set bouncing off a held lock.
    pub lock_rejected_reads: u64,
    /// Plain bus writes among [`MachineStats::lock_rejections`] —
    /// "any bus writes before the unlock will fail".
    pub lock_rejected_writes: u64,
    /// Deterministic work units: logical tag-store accesses (issue
    /// probes, snoop applications, supplier reads, installs,
    /// pending-read checks). Counts *logical* work, so every engine
    /// path — sequential or sharded, scanned or batched — reports the
    /// same number; a machine-independent perf proxy gated in CI.
    pub tag_probes: u64,
    /// Deterministic work units: per-holder visits during broadcast
    /// snoop dispatch plus pending-reader visits after bus
    /// transactions — the broadcast fan-out the batched path amortizes.
    pub sharer_visits: u64,
    /// Deterministic work units: arbitration scans of a non-empty bus
    /// queue (one per granted cycle; dead and held cycles scan
    /// nothing).
    pub queue_scans: u64,
    /// Split-transaction requests cancelled *between* their address and
    /// data phases (broadcast-satisfied reads and fail-stops): their
    /// address phase and acquire-wait sample happened, but no
    /// transaction completion ever will. Zero under non-split
    /// disciplines; closes the bus-acquire conservation identity.
    pub split_cancels: u64,
}

impl MachineStats {
    /// Total Test-and-Set operations.
    pub fn ts_attempts(&self) -> u64 {
        self.ts_failures + self.ts_successes
    }

    /// Total deterministic work units — the scalar the CI work-unit
    /// gate tracks per scenario.
    pub fn work_units(&self) -> u64 {
        self.tag_probes + self.sharer_visits + self.queue_scans
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "broadcast-satisfied={} writebacks={} TS ok/fail={}/{} lock-rejections={}",
            self.broadcast_satisfied,
            self.writebacks,
            self.ts_successes,
            self.ts_failures,
            self.lock_rejections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_split_sums_to_total() {
        let s = MachineStats {
            lock_rejections: 5,
            lock_rejected_reads: 3,
            lock_rejected_writes: 2,
            ..Default::default()
        };
        assert_eq!(
            s.lock_rejected_reads + s.lock_rejected_writes,
            s.lock_rejections
        );
    }

    #[test]
    fn ts_attempts_sum() {
        let s = MachineStats {
            ts_failures: 3,
            ts_successes: 2,
            ..Default::default()
        };
        assert_eq!(s.ts_attempts(), 5);
    }

    #[test]
    fn display_mentions_all_counters() {
        let text = MachineStats::default().to_string();
        assert!(text.contains("broadcast-satisfied=0"));
        assert!(text.contains("writebacks=0"));
        assert!(text.contains("lock-rejections=0"));
    }
}
