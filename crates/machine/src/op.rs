//! The memory operations processors issue to their caches.

use decache_cache::RefClass;
use decache_mem::{Addr, Word};
use std::fmt;

/// The access itself: what the processor asks its cache to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Load a word.
    Read(Addr),
    /// Store a word.
    Write(Addr, Word),
    /// Atomic Test-and-Set (Section 6): "If V != 0 Then nil Else V := X".
    /// Implemented as a locked bus read followed, on success, by an
    /// unlocking bus write of the given value.
    TestAndSet(Addr, Word),
}

impl Access {
    /// The address the access targets.
    pub fn addr(self) -> Addr {
        match self {
            Access::Read(a) | Access::Write(a, _) | Access::TestAndSet(a, _) => a,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read(a) => write!(f, "read {a}"),
            Access::Write(a, w) => write!(f, "write {a} <- {w}"),
            Access::TestAndSet(a, w) => write!(f, "TS {a} <- {w}"),
        }
    }
}

/// One memory operation: an [`Access`] tagged with the ground-truth
/// [`RefClass`] of the referenced datum.
///
/// The class does not influence protocol behaviour in any way — the whole
/// point of the paper's schemes is that classification is *dynamic* — but
/// it keys the per-class statistics that the experiments report (the
/// Table 1-1 columns, the "shared references" fractions, and so on).
///
/// # Examples
///
/// ```
/// use decache_machine::{Access, MemOp};
/// use decache_cache::RefClass;
/// use decache_mem::{Addr, Word};
///
/// let op = MemOp::write(Addr::new(4), Word::ONE).with_class(RefClass::Local);
/// assert_eq!(op.access.addr(), Addr::new(4));
/// assert_eq!(op.class, RefClass::Local);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// The access to perform.
    pub access: Access,
    /// The ground-truth class of the referenced datum (statistics only).
    pub class: RefClass,
}

impl MemOp {
    /// A shared-class read (shared is the conservative default class).
    pub fn read(addr: Addr) -> Self {
        MemOp {
            access: Access::Read(addr),
            class: RefClass::Shared,
        }
    }

    /// A shared-class write.
    pub fn write(addr: Addr, value: Word) -> Self {
        MemOp {
            access: Access::Write(addr, value),
            class: RefClass::Shared,
        }
    }

    /// A Test-and-Set that stores `value` if the word is currently zero.
    pub fn test_and_set(addr: Addr, value: Word) -> Self {
        MemOp {
            access: Access::TestAndSet(addr, value),
            class: RefClass::Shared,
        }
    }

    /// Re-tags the operation with an explicit reference class.
    #[must_use]
    pub fn with_class(mut self, class: RefClass) -> Self {
        self.class = class;
        self
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.access, self.class)
    }
}

/// The completion value a processor receives back from its cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// The word returned by a read.
    Read(Word),
    /// The write completed.
    Write,
    /// The Test-and-Set completed: `old` is the tested value;
    /// `acquired` is `true` iff `old` was zero and the store happened.
    TestAndSet {
        /// The value observed by the locked read.
        old: Word,
        /// Whether the set half executed.
        acquired: bool,
    },
}

impl OpResult {
    /// The word carried by the result, if any (the read value, or the
    /// tested value of a Test-and-Set).
    pub fn word(self) -> Option<Word> {
        match self {
            OpResult::Read(w) => Some(w),
            OpResult::TestAndSet { old, .. } => Some(old),
            OpResult::Write => None,
        }
    }

    /// `true` iff this is a Test-and-Set that acquired.
    pub fn acquired(self) -> bool {
        matches!(self, OpResult::TestAndSet { acquired: true, .. })
    }
}

impl fmt::Display for OpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpResult::Read(w) => write!(f, "= {w}"),
            OpResult::Write => write!(f, "stored"),
            OpResult::TestAndSet { old, acquired } => {
                write!(
                    f,
                    "TS old={old} {}",
                    if *acquired { "acquired" } else { "failed" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_default_to_shared_class() {
        assert_eq!(MemOp::read(Addr::new(1)).class, RefClass::Shared);
        assert_eq!(
            MemOp::write(Addr::new(1), Word::ONE).class,
            RefClass::Shared
        );
        assert_eq!(
            MemOp::test_and_set(Addr::new(1), Word::ONE).class,
            RefClass::Shared
        );
    }

    #[test]
    fn with_class_retags() {
        let op = MemOp::read(Addr::new(2)).with_class(RefClass::Code);
        assert_eq!(op.class, RefClass::Code);
    }

    #[test]
    fn access_addr_extraction() {
        assert_eq!(Access::Read(Addr::new(3)).addr(), Addr::new(3));
        assert_eq!(Access::Write(Addr::new(4), Word::ONE).addr(), Addr::new(4));
        assert_eq!(
            Access::TestAndSet(Addr::new(5), Word::ONE).addr(),
            Addr::new(5)
        );
    }

    #[test]
    fn result_words() {
        assert_eq!(OpResult::Read(Word::new(7)).word(), Some(Word::new(7)));
        assert_eq!(OpResult::Write.word(), None);
        let ts = OpResult::TestAndSet {
            old: Word::ZERO,
            acquired: true,
        };
        assert_eq!(ts.word(), Some(Word::ZERO));
        assert!(ts.acquired());
        assert!(!OpResult::TestAndSet {
            old: Word::ONE,
            acquired: false
        }
        .acquired());
        assert!(!OpResult::Write.acquired());
    }

    #[test]
    fn displays() {
        assert_eq!(MemOp::read(Addr::new(1)).to_string(), "read @1 [shared]");
        assert_eq!(
            OpResult::TestAndSet {
                old: Word::ZERO,
                acquired: true
            }
            .to_string(),
            "TS old=0 acquired"
        );
    }
}
