//! Cycle-attribution histograms: where a stalled operation's cycles go.
//!
//! The paper's evaluation is entirely about *measured* quantities — bus
//! utilization, miss ratios, efficiency as `n` grows — and every one of
//! those aggregates hides a distribution. This module records four of
//! them from the machine's existing cycle phases, as fixed power-of-2
//! bucket histograms:
//!
//! * **bus-acquire wait** — cycles a granted transaction spent queued
//!   since it last entered arbitration (retries re-arm the clock, so
//!   each grant measures one arbitration wait);
//! * **memory service** — bus occupancy charged per transaction that
//!   actually touched memory (reads served by memory, completed writes,
//!   supplier substitutions, eviction and drain write-backs — not
//!   invalidates, which carry no data, and not lock-rejected attempts);
//! * **read-miss fill** — cycles from a plain read miss to its value
//!   arriving, whether via the PE's own bus read or a snooped broadcast;
//! * **TS lock-spin** — cycles from a Test-and-Set's locked read being
//!   issued to the attempt resolving (acquired or failed), lock
//!   rejections included.
//!
//! Recording is gated exactly like fault injection's
//! `faults_possible()`: a machine built without
//! [`MachineBuilder::telemetry`](crate::MachineBuilder::telemetry) holds
//! no recorder and pays one `Option` test per hook. Recording is pure
//! observation — enabling it changes **zero** simulated statistics (the
//! fingerprint suite pins this bit-exactly).

use std::fmt;

/// Number of buckets: one for zero plus one per power of two up to
/// `2^63`.
const BUCKETS: usize = 65;

/// A fixed-bucket latency histogram with power-of-2 bucket boundaries.
///
/// Bucket 0 counts exact zeros; bucket `i` (for `i >= 1`) counts values
/// in `[2^(i-1), 2^i)`. The shape is fixed so histograms from different
/// runs merge bucket-by-bucket without rebinning.
///
/// # Examples
///
/// ```
/// use decache_machine::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(5); // falls in [4, 8)
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 6);
/// assert_eq!(h.max(), 5);
/// assert_eq!(h.bucket_count(Histogram::bucket_of(5)), 1);
/// assert_eq!(Histogram::bucket_floor(Histogram::bucket_of(5)), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index holding `value`: 0 for zero, else
    /// `1 + floor(log2(value))`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The smallest value falling in bucket `index` (0 for buckets 0
    /// and 1, else `2^(index-1)`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 65`.
    pub fn bucket_floor(index: usize) -> u64 {
        assert!(index < BUCKETS, "bucket {index} out of range");
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The sample count in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 65`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// The non-empty buckets as `(floor, count)` pairs, in ascending
    /// floor order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }

    /// Exports the raw per-bucket counts plus the running moments —
    /// the checkpoint form: `(buckets, count, sum, max)`. Round-trips
    /// exactly through [`Histogram::from_checkpoint`].
    pub fn checkpoint_state(&self) -> (Vec<u64>, u64, u64, u64) {
        (self.buckets.to_vec(), self.count, self.sum, self.max)
    }

    /// Reconstructs a histogram from a [`Histogram::checkpoint_state`]
    /// export.
    ///
    /// # Errors
    ///
    /// Returns an error if `buckets` does not have exactly 65 entries
    /// (the fixed bucket shape), or if `count` disagrees with the
    /// bucket totals.
    pub fn from_checkpoint(
        buckets: &[u64],
        count: u64,
        sum: u64,
        max: u64,
    ) -> Result<Self, String> {
        let raw: [u64; BUCKETS] = buckets.try_into().map_err(|_| {
            format!(
                "histogram has {} buckets, expected {BUCKETS}",
                buckets.len()
            )
        })?;
        let total: u64 = raw.iter().sum();
        if total != count {
            return Err(format!(
                "histogram count {count} disagrees with bucket total {total}"
            ));
        }
        Ok(Histogram {
            buckets: raw,
            count,
            sum,
            max,
        })
    }

    /// Merges another histogram into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )
    }
}

/// The four cycle-attribution histograms a telemetry-enabled machine
/// maintains; read via
/// [`Machine::histograms`](crate::Machine::histograms).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleHistograms {
    /// Cycles each granted transaction waited in arbitration since it
    /// last entered the queue. Population: one sample per completed
    /// bus transaction that went through a grant — total transactions
    /// minus eviction write-backs and fail-stop drains, which are
    /// charged without arbitration.
    pub bus_acquire_wait: Histogram,
    /// Bus occupancy charged per transaction that accessed memory.
    /// Population: reads + writes (all kinds) minus lock rejections.
    pub memory_service: Histogram,
    /// Cycles from a plain read miss to its fill. Population: bus
    /// reads completed plus broadcast-satisfied reads.
    pub read_fill: Histogram,
    /// Cycles from a Test-and-Set's locked read being issued to the
    /// attempt resolving. Population: TS successes + failures.
    pub ts_spin: Histogram,
}

/// The live recorder of a telemetry-enabled machine: the histograms
/// plus the per-PE start-cycle scratchpads the hooks sample against.
#[derive(Debug)]
pub(crate) struct TelemetryState {
    pub(crate) hist: CycleHistograms,
    /// Cycle at which each PE's outstanding transaction last entered a
    /// bus queue (enqueue, requeue, or retry).
    pub(crate) enqueued_at: Vec<u64>,
    /// Cycle at which each PE's pending plain read missed.
    pub(crate) read_since: Vec<u64>,
    /// Cycle at which each PE's Test-and-Set issued its locked read.
    pub(crate) ts_since: Vec<u64>,
}

impl TelemetryState {
    pub(crate) fn new(pes: usize) -> Self {
        TelemetryState {
            hist: CycleHistograms::default(),
            enqueued_at: vec![0; pes],
            read_since: vec![0; pes],
            ts_since: vec![0; pes],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(5), 16);
    }

    #[test]
    fn every_value_lands_in_its_bucket_range() {
        for value in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let b = Histogram::bucket_of(value);
            assert!(Histogram::bucket_floor(b) <= value);
            if b < BUCKETS - 1 {
                let next_floor = Histogram::bucket_floor(b + 1);
                assert!(value < next_floor || next_floor <= Histogram::bucket_floor(b));
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [3u64, 0, 17, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 29);
        assert_eq!(h.max(), 17);
        assert!((h.mean() - 29.0 / 4.0).abs() < 1e-12);
        assert_eq!(h.nonzero_buckets().iter().map(|&(_, c)| c).sum::<u64>(), 4);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1023, u64::MAX] {
            h.record(v);
        }
        let (buckets, count, sum, max) = h.checkpoint_state();
        let back = Histogram::from_checkpoint(&buckets, count, sum, max).unwrap();
        assert_eq!(back, h);
        // Shape and consistency violations are structured errors.
        assert!(Histogram::from_checkpoint(&buckets[1..], count, sum, max).is_err());
        assert!(Histogram::from_checkpoint(&buckets, count + 1, sum, max).is_err());
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 109);
        assert_eq!(a.max(), 100);
        assert_eq!(a.bucket_count(Histogram::bucket_of(1)), 2);
    }

    #[test]
    fn display_names_the_moments() {
        let mut h = Histogram::new();
        h.record(4);
        let text = h.to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("max=4"));
    }
}
