//! Memory reliability through cache replication — the paper's Section 8
//! future-work item, implemented.
//!
//! "The second [research direction] is the exploitation of replicated
//! values in the various caches to improve the reliability of the
//! memory" (Section 8), anticipated in Section 5: "if the value of a
//! variable is corrupted while in memory or in some cache, there is a
//! higher probability that some cache contains a correct copy" under
//! RWB, whose write broadcasts keep many readable replicas alive.
//!
//! The model: a fault flips a memory word ([`Machine::corrupt_memory`])
//! or a cached copy ([`Machine::corrupt_cache`]); recovery
//! ([`Machine::recover_memory`]) consults the caches — an owning copy
//! (`L`/`D`) is authoritative; otherwise the majority among readable
//! replicas wins — and repairs memory.

use crate::Machine;
use decache_mem::{Addr, Word};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Failure to recover a corrupted memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// No cache holds a usable replica of the word.
    NoReplica {
        /// The unrecoverable address.
        addr: Addr,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecoveryError::NoReplica { addr } => {
                write!(f, "no cache holds a replica of {addr}")
            }
        }
    }
}

impl Error for RecoveryError {}

impl Machine {
    /// Injects a fault: overwrites the memory word at `addr` with
    /// `garbage`, bypassing the coherence protocol (as a bit flip
    /// would).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn corrupt_memory(&mut self, addr: Addr, garbage: Word) {
        self.memory_mut()
            .write(addr, garbage)
            .expect("fault injection address in range");
    }

    /// Injects a fault into PE `pe`'s cached copy of `addr`; returns
    /// `true` if the cache held the line (and is now corrupted).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn corrupt_cache(&mut self, pe: usize, addr: Addr, garbage: Word) -> bool {
        match self.cache_mut(pe).get_mut(addr) {
            Some(entry) => {
                entry.data = garbage;
                true
            }
            None => false,
        }
    }

    /// The number of usable replicas of `addr` across all caches: the
    /// owning copy plus every locally-readable copy. The more replicas,
    /// the likelier recovery — RWB's write broadcast keeps this high.
    pub fn replica_count(&self, addr: Addr) -> usize {
        (0..self.pe_count())
            .filter(|&pe| {
                self.cache_line(pe, addr)
                    .is_some_and(|(s, _)| s.is_readable_locally())
            })
            .count()
    }

    /// Recovers the memory word at `addr` from cache replicas and
    /// repairs memory with the recovered value.
    ///
    /// Recovery policy:
    /// 1. an **owning** copy (`L`/`D`) is authoritative — it holds the
    ///    only up-to-date value by the Section 4 lemma;
    /// 2. otherwise the **majority value** among readable replicas wins
    ///    (all replicas agree in a fault-free machine; voting tolerates
    ///    a minority of corrupted caches);
    /// 3. with no replica at all, the word is unrecoverable.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::NoReplica`] if no cache holds the line
    /// in a readable or owning state.
    pub fn recover_memory(&mut self, addr: Addr) -> Result<Word, RecoveryError> {
        // 1. Owner copy.
        let owner_value = (0..self.pe_count()).find_map(|pe| {
            self.cache_line(pe, addr)
                .filter(|(s, _)| s.owns_latest())
                .map(|(_, d)| d)
        });
        let recovered = match owner_value {
            Some(v) => v,
            None => {
                // 2. Majority among readable replicas.
                let mut votes: HashMap<Word, usize> = HashMap::new();
                for pe in 0..self.pe_count() {
                    if let Some((state, data)) = self.cache_line(pe, addr) {
                        if state.is_readable_locally() {
                            *votes.entry(data).or_insert(0) += 1;
                        }
                    }
                }
                votes
                    .into_iter()
                    .max_by_key(|&(_, count)| count)
                    .map(|(value, _)| value)
                    .ok_or(RecoveryError::NoReplica { addr })?
            }
        };
        self.memory_mut()
            .write(addr, recovered)
            .expect("recovery address in range");
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineBuilder, Script};
    use decache_core::ProtocolKind;

    fn w(v: u64) -> Word {
        Word::new(v)
    }

    #[test]
    fn memory_corruption_recovers_from_readable_replicas() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().write(x, w(7)).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .build();
        m.run_to_completion(1_000);
        assert!(m.replica_count(x) >= 2);
        m.corrupt_memory(x, w(0xBAD));
        assert_eq!(m.memory().peek(x).unwrap(), w(0xBAD));
        assert_eq!(m.recover_memory(x).unwrap(), w(7));
        assert_eq!(m.memory().peek(x).unwrap(), w(7));
    }

    #[test]
    fn owner_copy_is_authoritative() {
        let x = Addr::new(1);
        // Two silent local writes leave memory stale at 1 and the owner
        // holding 9: recovery must take the owner's value, not memory's.
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().write(x, w(1)).write(x, w(9)).build())
            .build();
        m.run_to_completion(1_000);
        m.corrupt_memory(x, w(0xBAD));
        assert_eq!(m.recover_memory(x).unwrap(), w(9));
    }

    #[test]
    fn majority_vote_outvotes_a_corrupted_cache() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rwb)
            .processor(Script::new().write(x, w(5)).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .build();
        m.run_to_completion(1_000);
        // Corrupt one cache replica AND memory; the two healthy
        // replicas outvote the corrupted one. (The writer holds F which
        // is readable but not owning, so voting applies.)
        assert!(m.corrupt_cache(1, x, w(0xEE)));
        m.corrupt_memory(x, w(0xBAD));
        assert_eq!(m.recover_memory(x).unwrap(), w(5));
    }

    #[test]
    fn unreplicated_word_is_unrecoverable() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().read(Addr::new(2)).build())
            .build();
        m.run_to_completion(1_000);
        m.corrupt_memory(x, w(0xBAD));
        let err = m.recover_memory(x).unwrap_err();
        assert_eq!(err, RecoveryError::NoReplica { addr: x });
        assert_eq!(err.to_string(), "no cache holds a replica of @1");
    }

    #[test]
    fn rwb_keeps_more_replicas_than_rb_after_a_write() {
        let x = Addr::new(1);
        let build = |kind| {
            let mut m = MachineBuilder::new(kind)
                .processor(Script::new().read(x).read(x).read(x).build())
                .processor(Script::new().read(x).read(x).read(x).build())
                .processor(Script::new().read(x).write(x, w(3)).build())
                .build();
            m.run_to_completion(1_000);
            m
        };
        // Under RB the write invalidates the readers; under RWB they
        // capture the broadcast — "a higher probability that some cache
        // contains a correct copy" (Section 5).
        let rb = build(ProtocolKind::Rb).replica_count(x);
        let rwb = build(ProtocolKind::Rwb).replica_count(x);
        assert!(rwb > rb, "RWB replicas {rwb} should exceed RB {rb}");
    }

    #[test]
    fn corrupting_an_absent_line_reports_false() {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().build())
            .build();
        m.run_to_completion(100);
        assert!(!m.corrupt_cache(0, Addr::new(5), w(1)));
    }
}
