//! Memory reliability through cache replication — the paper's Section 8
//! future-work item, implemented.
//!
//! "The second [research direction] is the exploitation of replicated
//! values in the various caches to improve the reliability of the
//! memory" (Section 8), anticipated in Section 5: "if the value of a
//! variable is corrupted while in memory or in some cache, there is a
//! higher probability that some cache contains a correct copy" under
//! RWB, whose write broadcasts keep many readable replicas alive.
//!
//! The model: a fault flips a memory word ([`Machine::corrupt_memory`])
//! or a cached copy ([`Machine::corrupt_cache`]) and marks its parity
//! bad, exactly as the rate-driven [`FaultPlan`](crate::FaultPlan)
//! engine does; the running machine then detects the corruption on the
//! next access and recovers per its
//! [`RecoveryPolicy`](crate::RecoveryPolicy). The manual
//! [`Machine::recover_memory`] entry point applies the same
//! owner-then-majority policy immediately, for direct experiments on a
//! stopped machine.

use crate::fault::InjectError;
use crate::Machine;
use decache_mem::{Addr, Word};
use std::error::Error;
use std::fmt;

/// Failure to recover a corrupted memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// No cache holds a usable replica of the word.
    NoReplica {
        /// The unrecoverable address.
        addr: Addr,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecoveryError::NoReplica { addr } => {
                write!(f, "no cache holds a replica of {addr}")
            }
        }
    }
}

impl Error for RecoveryError {}

impl Machine {
    /// Injects a fault: overwrites the memory word at `addr` with
    /// `garbage` and marks its parity bad, bypassing the coherence
    /// protocol (as a bit flip would). The running machine detects the
    /// fault on the next bus read of the word and repairs it per its
    /// [`RecoveryPolicy`](crate::RecoveryPolicy).
    ///
    /// # Errors
    ///
    /// Returns [`InjectError::OutOfBounds`] if `addr` exceeds the
    /// memory.
    pub fn corrupt_memory(&mut self, addr: Addr, garbage: Word) -> Result<(), InjectError> {
        self.memory_mut().poke_corrupt(addr, garbage)?;
        self.clock_fault(None, addr);
        Ok(())
    }

    /// Injects a fault into PE `pe`'s cached copy of `addr`, marking
    /// its parity bad; returns `Ok(true)` if the cache held the line
    /// (and is now corrupted), `Ok(false)` if the line is not cached.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError::NoSuchPe`] if `pe` is out of range.
    pub fn corrupt_cache(
        &mut self,
        pe: usize,
        addr: Addr,
        garbage: Word,
    ) -> Result<bool, InjectError> {
        if pe >= self.pe_count() {
            return Err(InjectError::NoSuchPe {
                pe,
                pes: self.pe_count(),
            });
        }
        match self.cache_mut(pe).get_mut(addr) {
            Some(entry) => {
                *entry.data = garbage;
                *entry.parity_ok = false;
                self.clock_fault(Some(pe), addr);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The number of usable replicas of `addr` across all caches: every
    /// locally-readable copy whose parity is good (a corrupted replica
    /// cannot vote). The more replicas, the likelier recovery — RWB's
    /// write broadcast keeps this high.
    pub fn replica_count(&self, addr: Addr) -> usize {
        (0..self.pe_count())
            .filter(|&pe| {
                self.cache_entry(pe, addr)
                    .is_some_and(|e| e.parity_ok && e.state.is_readable_locally())
            })
            .count()
    }

    /// Recovers the memory word at `addr` from cache replicas and
    /// repairs memory with the recovered value, clearing its parity
    /// flag.
    ///
    /// Recovery policy (shared with the in-loop
    /// [`RecoveryPolicy::Majority`](crate::RecoveryPolicy) path):
    /// 1. an **owning** copy (`L`/`D`) with good parity is
    ///    authoritative — it holds the only up-to-date value by the
    ///    Section 4 lemma;
    /// 2. otherwise the **majority value** among good-parity readable
    ///    replicas wins (all replicas agree in a fault-free machine;
    ///    voting tolerates a minority of corrupted caches);
    /// 3. with no usable replica at all, the word is unrecoverable.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::NoReplica`] if no cache holds the line
    /// in a readable or owning state with good parity.
    pub fn recover_memory(&mut self, addr: Addr) -> Result<Word, RecoveryError> {
        let (recovered, _source) = self
            .recover_value(addr, true)
            .ok_or(RecoveryError::NoReplica { addr })?;
        self.memory_mut()
            .repair(addr, recovered)
            .expect("recovery address in range");
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineBuilder, Script};
    use decache_core::ProtocolKind;

    fn w(v: u64) -> Word {
        Word::new(v)
    }

    #[test]
    fn memory_corruption_recovers_from_readable_replicas() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().write(x, w(7)).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .build();
        m.run_to_completion(1_000);
        assert!(m.replica_count(x) >= 2);
        m.corrupt_memory(x, w(0xBAD)).unwrap();
        assert_eq!(m.memory().peek(x).unwrap(), w(0xBAD));
        assert!(!m.memory().parity_ok(x));
        assert_eq!(m.recover_memory(x).unwrap(), w(7));
        assert_eq!(m.memory().peek(x).unwrap(), w(7));
        assert!(m.memory().parity_ok(x));
    }

    #[test]
    fn owner_copy_is_authoritative() {
        let x = Addr::new(1);
        // Two silent local writes leave memory stale at 1 and the owner
        // holding 9: recovery must take the owner's value, not memory's.
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().write(x, w(1)).write(x, w(9)).build())
            .build();
        m.run_to_completion(1_000);
        m.corrupt_memory(x, w(0xBAD)).unwrap();
        assert_eq!(m.recover_memory(x).unwrap(), w(9));
    }

    #[test]
    fn majority_vote_outvotes_a_corrupted_cache() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rwb)
            .processor(Script::new().write(x, w(5)).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .build();
        m.run_to_completion(1_000);
        // Corrupt one cache replica AND memory; the corrupted replica's
        // bad parity excludes it from the vote and the healthy replicas
        // win. (The writer holds F which is readable but not owning, so
        // voting applies.)
        assert!(m.corrupt_cache(1, x, w(0xEE)).unwrap());
        m.corrupt_memory(x, w(0xBAD)).unwrap();
        assert_eq!(m.recover_memory(x).unwrap(), w(5));
    }

    #[test]
    fn unreplicated_word_is_unrecoverable() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().read(Addr::new(2)).build())
            .build();
        m.run_to_completion(1_000);
        m.corrupt_memory(x, w(0xBAD)).unwrap();
        let err = m.recover_memory(x).unwrap_err();
        assert_eq!(err, RecoveryError::NoReplica { addr: x });
        assert_eq!(err.to_string(), "no cache holds a replica of @1");
    }

    #[test]
    fn rwb_keeps_more_replicas_than_rb_after_a_write() {
        let x = Addr::new(1);
        let build = |kind| {
            let mut m = MachineBuilder::new(kind)
                .processor(Script::new().read(x).read(x).read(x).build())
                .processor(Script::new().read(x).read(x).read(x).build())
                .processor(Script::new().read(x).write(x, w(3)).build())
                .build();
            m.run_to_completion(1_000);
            m
        };
        // Under RB the write invalidates the readers; under RWB they
        // capture the broadcast — "a higher probability that some cache
        // contains a correct copy" (Section 5).
        let rb = build(ProtocolKind::Rb).replica_count(x);
        let rwb = build(ProtocolKind::Rwb).replica_count(x);
        assert!(rwb > rb, "RWB replicas {rwb} should exceed RB {rb}");
    }

    #[test]
    fn corrupting_an_absent_line_reports_false() {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().build())
            .build();
        m.run_to_completion(100);
        assert!(!m.corrupt_cache(0, Addr::new(5), w(1)).unwrap());
    }

    #[test]
    fn out_of_range_targets_are_errors_not_panics() {
        let mut m = MachineBuilder::new(ProtocolKind::Rb)
            .memory_words(16)
            .processor(Script::new().build())
            .build();
        assert_eq!(
            m.corrupt_memory(Addr::new(99), w(1)).unwrap_err(),
            InjectError::OutOfBounds {
                addr: Addr::new(99),
                size: 16
            }
        );
        assert_eq!(
            m.corrupt_cache(3, Addr::new(0), w(1)).unwrap_err(),
            InjectError::NoSuchPe { pe: 3, pes: 1 }
        );
    }

    #[test]
    fn corrupted_replica_is_excluded_from_the_count() {
        let x = Addr::new(1);
        let mut m = MachineBuilder::new(ProtocolKind::Rwb)
            .processor(Script::new().write(x, w(5)).build())
            .processor(Script::new().read(x).build())
            .processor(Script::new().read(x).build())
            .build();
        m.run_to_completion(1_000);
        let before = m.replica_count(x);
        assert!(m.corrupt_cache(1, x, w(0xEE)).unwrap());
        assert_eq!(m.replica_count(x), before - 1);
    }
}
