//! Per-address machine snapshots: the rows of Figures 6-1, 6-2, 6-3.

use decache_core::{Configuration, LineState};
use decache_mem::Word;
use std::fmt;

/// The machine's view of a single address at one instant: each cache's
/// state and cached value for the address, plus the memory value — one
/// row of the paper's synchronization figures, whose columns are
/// "P1 Cache ... Pm Cache, S".
///
/// # Examples
///
/// ```
/// use decache_core::LineState;
/// use decache_machine::Snapshot;
/// use decache_mem::Word;
///
/// let snap = Snapshot::new(
///     vec![
///         Some((LineState::Readable, Word::ZERO)),
///         Some((LineState::Local, Word::ONE)),
///         None,
///     ],
///     Word::ONE,
/// );
/// assert_eq!(snap.to_string(), "R(0)  L(1)  --    | 1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    lines: Vec<Option<(LineState, Word)>>,
    memory: Word,
}

impl Snapshot {
    /// Assembles a snapshot from per-cache line views (state and cached
    /// value; `None` if the cache does not hold the address) and the
    /// memory value.
    pub fn new(lines: Vec<Option<(LineState, Word)>>, memory: Word) -> Self {
        Snapshot { lines, memory }
    }

    /// Per-cache view: `None` if cache `pe` does not hold the address.
    pub fn line(&self, pe: usize) -> Option<(LineState, Word)> {
        self.lines.get(pe).copied().flatten()
    }

    /// The number of caches in the snapshot.
    pub fn cache_count(&self) -> usize {
        self.lines.len()
    }

    /// The memory value of the address.
    pub fn memory(&self) -> Word {
        self.memory
    }

    /// The states of the caches holding the address, in cache order —
    /// the input to the Section 4 configuration lemma.
    pub fn held_states(&self) -> Vec<LineState> {
        self.lines
            .iter()
            .filter_map(|l| l.map(|(s, _)| s))
            .collect()
    }

    /// Classifies the snapshot per the Section 4 lemma.
    pub fn configuration(&self) -> Configuration {
        Configuration::classify(&self.held_states())
    }

    /// Renders one cache cell in the figures' `R(0)` / `I(-)` notation.
    /// Invalid entries show `-` for the value (the figures' `I(-)`), and
    /// absent entries render as `--`.
    pub fn cell(&self, pe: usize) -> String {
        match self.line(pe) {
            None => "--".to_owned(),
            Some((LineState::Invalid, _)) => "I(-)".to_owned(),
            Some((state, value)) => format!("{state}({value})"),
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pe in 0..self.lines.len() {
            write!(f, "{:<5} ", self.cell(pe))?;
        }
        write!(f, "| {}", self.memory)
    }
}

/// A labelled sequence of snapshots: the full table of a synchronization
/// figure, with one row per observation.
#[derive(Debug, Clone, Default)]
pub struct SnapshotTable {
    rows: Vec<(String, Snapshot)>,
}

impl SnapshotTable {
    /// Starts an empty table.
    pub fn new() -> Self {
        SnapshotTable::default()
    }

    /// Appends an observation row.
    pub fn push(&mut self, observation: impl Into<String>, snapshot: Snapshot) {
        self.rows.push((observation.into(), snapshot));
    }

    /// The rows recorded so far.
    pub fn rows(&self) -> &[(String, Snapshot)] {
        &self.rows
    }

    /// Returns `true` if no rows are recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table in the layout of Figures 6-1/6-2/6-3: one column
    /// per cache, then the memory value of the lock, then the
    /// observation.
    pub fn render(&self, cache_count: usize) -> String {
        let mut out = String::new();
        for pe in 0..cache_count {
            out.push_str(&format!("{:<6}", format!("P{}", pe + 1)));
        }
        out.push_str(&format!("{:<4}  {}\n", "S", "Observation"));
        for (label, snap) in &self.rows {
            for pe in 0..cache_count {
                out.push_str(&format!("{:<6}", snap.cell(pe)));
            }
            out.push_str(&format!("{:<4}  {label}\n", snap.memory().to_string()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::{Invalid, Local, Readable};

    fn snap() -> Snapshot {
        Snapshot::new(
            vec![
                Some((Invalid, Word::new(7))),
                Some((Local, Word::ONE)),
                None,
            ],
            Word::ONE,
        )
    }

    #[test]
    fn cell_notation_matches_figures() {
        let s = snap();
        assert_eq!(s.cell(0), "I(-)");
        assert_eq!(s.cell(1), "L(1)");
        assert_eq!(s.cell(2), "--");
        assert_eq!(s.cell(99), "--");
    }

    #[test]
    fn held_states_skip_absent_lines() {
        assert_eq!(snap().held_states(), vec![Invalid, Local]);
    }

    #[test]
    fn configuration_classifies_rows() {
        use decache_core::Configuration;
        assert_eq!(snap().configuration(), Configuration::Local);
        let shared = Snapshot::new(
            vec![Some((Readable, Word::ZERO)), Some((Readable, Word::ZERO))],
            Word::ZERO,
        );
        assert_eq!(shared.configuration(), Configuration::Shared);
    }

    #[test]
    fn accessors() {
        let s = snap();
        assert_eq!(s.cache_count(), 3);
        assert_eq!(s.memory(), Word::ONE);
        assert_eq!(s.line(1), Some((Local, Word::ONE)));
        assert_eq!(s.line(2), None);
    }

    #[test]
    fn table_renders_header_and_rows() {
        let mut t = SnapshotTable::new();
        assert!(t.is_empty());
        t.push("Initial State", snap());
        let text = t.render(3);
        assert!(text.contains("P1"));
        assert!(text.contains("P3"));
        assert!(text.contains("Observation"));
        assert!(text.contains("Initial State"));
        assert!(text.contains("L(1)"));
        assert_eq!(t.rows().len(), 1);
    }
}
