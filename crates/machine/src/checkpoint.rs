//! Full-fidelity machine checkpoint/restore.
//!
//! A [`MachineCheckpoint`] captures every cell of a running
//! [`Machine`]'s mutable state that influences future behaviour:
//! memory words, locks, and parity marks; every tag store with both
//! replacement-stamp columns and its policy RNG stream; per-PE
//! execution statuses, pending transactions, and program positions;
//! both lanes of every bus queue plus each arbiter's fairness state;
//! all statistics counters; the fault engine's RNG stream, schedule
//! cursor, and pending bus-loss marks; the detection-latency ledger;
//! and the telemetry recorder. Restoring it into a freshly built
//! machine of the same shape resumes the run **bit-identically** — the
//! restore-equivalence suite proves `fingerprint(run N)` equals
//! `fingerprint(run N/2, checkpoint, restore, run rest)` for every
//! protocol, including active fault plans.
//!
//! Two things are deliberately *not* captured, because they are pure
//! observation and never feed back into simulated state: the event
//! trace ring buffer and registered [`Observer`](crate::Observer)s. A
//! restored machine starts with whatever trace/observer configuration
//! it was built with.
//!
//! The checkpoint struct is plain public data so the `decache-telemetry`
//! crate can serialize it through the workspace's canonical JSON codec
//! without this crate growing a serializer dependency.

use super::Machine;
use crate::processor::ProcessorCheckpoint;
use crate::sharers::{AddrPeIndex, PeMask};
use crate::status::{PeStatus, Pending};
use crate::telemetry::{CycleHistograms, Histogram};
use crate::{FaultStats, MachineStats, OpResult};
use decache_bus::{ArbiterCheckpoint, BusTransaction, QueueState, TrafficStats};
use decache_cache::{CacheStats, RefClass, TagStoreCheckpoint};
use decache_core::{LineState, Protocol};
use decache_mem::{Addr, MemoryStats, PeId, Word};
use decache_rng::Rng;
use std::error::Error;
use std::fmt;

/// The checkpoint format version; bumped on any layout change so stale
/// files are rejected with a structured error instead of misread.
pub const CHECKPOINT_VERSION: u32 = 2;

/// The canonical field order of [`MachineCheckpoint::fault_stats`]:
/// `fault_stats[i]` is the counter named `FAULT_STAT_FIELDS[i]`. Kept
/// as a flat array because [`FaultStats`] is `#[non_exhaustive]` and
/// so cannot be constructed outside this crate.
pub const FAULT_STAT_FIELDS: [&str; 17] = [
    "memory_faults_injected",
    "cache_faults_injected",
    "bus_transactions_lost",
    "pe_fail_stops",
    "memory_faults_detected",
    "cache_faults_detected",
    "memory_recoveries_owner",
    "memory_recoveries_majority",
    "memory_recoveries_failed",
    "cache_refetches",
    "broadcast_heals",
    "lost_writes",
    "drained_lines",
    "forced_unlocks",
    "recovery_latency_total",
    "recovery_latency_samples",
    "replicas_at_recovery",
];

/// The shared memory's state: words, locks, parity marks, counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryCheckpoint {
    /// Every memory word, in address order.
    pub words: Vec<Word>,
    /// Held Test-and-Set locks as `(address, holder)`, ascending.
    pub locks: Vec<(u64, PeId)>,
    /// Addresses whose parity is currently bad, ascending.
    pub bad_parity: Vec<u64>,
    /// The memory's access counters.
    pub stats: MemoryStats,
}

/// One PE's hit/miss counters in raw `[kind][class]` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsCheckpoint {
    /// Hits, indexed `[read|write][code|local|shared]`.
    pub hits: [[u64; 3]; 2],
    /// Misses, same indexing.
    pub misses: [[u64; 3]; 2],
}

/// A stalled PE's pending bus transaction, in public form (the
/// machine-internal `Pending` is crate-private).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingCheckpoint {
    /// A bus read for a CPU read miss.
    Read {
        /// The missed address.
        addr: Addr,
        /// The reference class of the access.
        class: RefClass,
    },
    /// A bus write or invalidate for a CPU write miss.
    Write {
        /// The written address.
        addr: Addr,
        /// The CPU value being written.
        value: Word,
        /// The reference class of the access.
        class: RefClass,
    },
    /// The locked-read half of a Test-and-Set.
    LockedRead {
        /// The tested address.
        addr: Addr,
        /// The value to store on success.
        set_to: Word,
        /// The reference class of the access.
        class: RefClass,
    },
    /// The unlocking-write half of a successful Test-and-Set.
    UnlockWrite {
        /// The locked address.
        addr: Addr,
        /// The value the locked read observed.
        old: Word,
        /// The reference class of the access.
        class: RefClass,
    },
}

/// One PE's execution status, in public form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCheckpoint {
    /// Ready to issue.
    Idle,
    /// Stalled on a bus transaction.
    WaitBus(PendingCheckpoint),
    /// Program finished.
    Done,
    /// Fail-stopped.
    Failed,
}

/// Every lane of one bus queue. The discipline-specific lanes
/// (`arrival`, `batch`, `in_flight`) are empty unless the machine runs
/// the matching [`ServiceDiscipline`](decache_bus::ServiceDiscipline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueCheckpoint {
    /// The priority retry lane, in FIFO order.
    pub retry: Vec<BusTransaction>,
    /// The pending lane, in ascending PE order.
    pub pending: Vec<BusTransaction>,
    /// FCFS request-arrival order over the pending lane's PEs.
    pub arrival: Vec<PeId>,
    /// The unserved remainder of the current batch, in service order.
    pub batch: Vec<PeId>,
    /// Split-transaction address phases awaiting their data phase, as
    /// `(transaction, ready_cycle)` in ascending ready order.
    pub in_flight: Vec<(BusTransaction, u64)>,
}

/// One bus's traffic counters in raw form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficCheckpoint {
    /// Per-kind transaction counts in `BusOpKind::ALL` order.
    pub counts: [u64; 5],
    /// Interrupted (killed) bus reads.
    pub aborted_reads: u64,
    /// Retry-lane services.
    pub retries: u64,
    /// Busy bus cycles.
    pub busy_cycles: u64,
    /// Idle bus cycles.
    pub idle_cycles: u64,
    /// Split-transaction address phases.
    pub address_phases: u64,
}

/// The fault engine's mutable state. The plan itself (rates, schedule,
/// region, seed) is build-time configuration and travels with the
/// machine builder, not the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEngineCheckpoint {
    /// The fault RNG stream's 256-bit state.
    pub rng_state: [u64; 4],
    /// How many scheduled faults have already fired.
    pub cursor: u64,
    /// Per-bus pending bus-loss marks (a mark drawn in a cycle where
    /// the bus granted nothing survives to the next granting cycle).
    pub lose_grant: Vec<bool>,
}

/// One outstanding (undetected) fault in the detection-latency ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClockEntry {
    /// The PE whose cache holds the fault, or `None` for a memory word.
    pub pe: Option<u64>,
    /// The faulted address.
    pub addr: u64,
    /// The cycle the fault was injected.
    pub injected_at: u64,
}

/// One latency histogram in raw form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCheckpoint {
    /// The 65 per-bucket counts.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramCheckpoint {
    fn capture(h: &Histogram) -> Self {
        let (buckets, count, sum, max) = h.checkpoint_state();
        HistogramCheckpoint {
            buckets,
            count,
            sum,
            max,
        }
    }

    fn rebuild(&self, what: &str) -> Result<Histogram, RestoreError> {
        Histogram::from_checkpoint(&self.buckets, self.count, self.sum, self.max).map_err(
            |detail| RestoreError::Component {
                what: what.to_string(),
                detail,
            },
        )
    }
}

/// The telemetry recorder's state: the four histograms plus the per-PE
/// start-cycle scratchpads the hooks sample against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryCheckpoint {
    /// Arbitration-wait histogram.
    pub bus_acquire_wait: HistogramCheckpoint,
    /// Memory-service histogram.
    pub memory_service: HistogramCheckpoint,
    /// Read-miss-fill histogram.
    pub read_fill: HistogramCheckpoint,
    /// Test-and-Set spin histogram.
    pub ts_spin: HistogramCheckpoint,
    /// Cycle each PE's transaction last entered a bus queue.
    pub enqueued_at: Vec<u64>,
    /// Cycle each PE's pending plain read missed.
    pub read_since: Vec<u64>,
    /// Cycle each PE's Test-and-Set issued its locked read.
    pub ts_since: Vec<u64>,
}

/// A versioned, self-describing export of a [`Machine`]'s complete
/// run state. Produce with [`Machine::checkpoint`], re-apply with
/// [`Machine::restore`]; serialize through
/// `decache-telemetry`'s checkpoint codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The coherence protocol's name, validated on restore.
    pub protocol: String,
    /// Number of processing elements.
    pub pes: u64,
    /// Number of shared buses.
    pub bus_count: u64,
    /// Memory size in words.
    pub memory_size: u64,
    /// Cache sets (shared by every cache).
    pub sets: u64,
    /// Cache ways.
    pub ways: u64,
    /// Words per cache block.
    pub block_words: u64,
    /// Bus cycles per transaction.
    pub transaction_cycles: u64,
    /// The bus service discipline's name
    /// ([`ServiceDiscipline::name`](decache_bus::ServiceDiscipline::name)),
    /// validated on restore.
    pub discipline: String,
    /// The current cycle number.
    pub cycle: u64,
    /// Engine-path odometer: cycles whose issue phase ran sharded.
    pub sharded_cycles: u64,
    /// The shared memory.
    pub memory: MemoryCheckpoint,
    /// Every PE's tag store, in PE order.
    pub caches: Vec<TagStoreCheckpoint<LineState>>,
    /// Every PE's hit/miss counters.
    pub cache_stats: Vec<CacheStatsCheckpoint>,
    /// Every PE's execution status.
    pub statuses: Vec<StatusCheckpoint>,
    /// Every PE's last completed-operation result awaiting delivery.
    pub last_results: Vec<Option<OpResult>>,
    /// Every PE's program position.
    pub processors: Vec<ProcessorCheckpoint>,
    /// Every bus queue's two lanes.
    pub queues: Vec<QueueCheckpoint>,
    /// Every bus arbiter's fairness state.
    pub arbiters: Vec<ArbiterCheckpoint>,
    /// Every bus's traffic counters.
    pub traffic: Vec<TrafficCheckpoint>,
    /// Per-bus cycle until which the bus is still occupied.
    pub bus_free_at: Vec<u64>,
    /// Machine-level counters.
    pub stats: MachineStats,
    /// The fault engine's state; `None` when the machine has no plan.
    pub fault: Option<FaultEngineCheckpoint>,
    /// Fault counters in [`FAULT_STAT_FIELDS`] order.
    pub fault_stats: [u64; 17],
    /// The detection-latency ledger, sorted by `(pe, addr)`.
    pub fault_clock: Vec<FaultClockEntry>,
    /// Per-PE cycle of the most recent completed operation.
    pub last_progress: Vec<u64>,
    /// Per-PE address of the most recently issued operation.
    pub last_addr: Vec<Option<Addr>>,
    /// The telemetry recorder; `None` when telemetry is disabled.
    pub telemetry: Option<TelemetryCheckpoint>,
}

/// Why a [`Machine::checkpoint`] call could not capture the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// A processor (e.g. a closure) cannot export its state.
    Processor {
        /// The PE whose program is uncheckpointable.
        pe: usize,
    },
    /// An arbiter implementation cannot export its state.
    Arbiter {
        /// The bus whose arbiter is uncheckpointable.
        bus: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CheckpointError::Processor { pe } => {
                write!(f, "P{pe}'s processor does not support checkpointing")
            }
            CheckpointError::Arbiter { bus } => {
                write!(f, "bus {bus}'s arbiter does not support checkpointing")
            }
        }
    }
}

impl Error for CheckpointError {}

/// Why a [`Machine::restore`] call rejected a checkpoint. Every
/// mismatch is a structured error — restore never panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// The checkpoint was written by a different format version.
    Version {
        /// The version found in the checkpoint.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// The checkpoint was captured under a different protocol.
    Protocol {
        /// The protocol named in the checkpoint.
        found: String,
        /// The protocol of the machine being restored.
        expected: String,
    },
    /// A machine-shape dimension disagrees.
    Shape {
        /// Which dimension (PEs, buses, memory words, ...).
        what: &'static str,
        /// The checkpoint's value.
        found: u64,
        /// The machine's value.
        expected: u64,
    },
    /// A component-level restore failed (tag store, queue, processor,
    /// histogram, ...). The machine's state is unspecified after this
    /// error; discard it.
    Component {
        /// Which component rejected its slice of the checkpoint.
        what: String,
        /// The component's own description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Version { found, expected } => {
                write!(f, "checkpoint version {found}, this build reads {expected}")
            }
            RestoreError::Protocol { found, expected } => {
                write!(
                    f,
                    "checkpoint is for protocol {found}, machine runs {expected}"
                )
            }
            RestoreError::Shape {
                what,
                found,
                expected,
            } => write!(f, "checkpoint has {what} = {found}, machine has {expected}"),
            RestoreError::Component { what, detail } => {
                write!(f, "restoring {what}: {detail}")
            }
        }
    }
}

impl Error for RestoreError {}

fn component(what: impl Into<String>, detail: impl fmt::Display) -> RestoreError {
    RestoreError::Component {
        what: what.into(),
        detail: detail.to_string(),
    }
}

fn check_shape(what: &'static str, found: u64, expected: u64) -> Result<(), RestoreError> {
    if found == expected {
        Ok(())
    } else {
        Err(RestoreError::Shape {
            what,
            found,
            expected,
        })
    }
}

fn check_len(what: &'static str, found: usize, expected: usize) -> Result<(), RestoreError> {
    check_shape(what, found as u64, expected as u64)
}

/// Rejects the all-zero RNG state (xoshiro's one invalid state) as a
/// structured error before it can reach `Rng::from_state`'s assert.
fn check_rng(what: &str, state: [u64; 4]) -> Result<(), RestoreError> {
    if state == [0; 4] {
        Err(component(what, "RNG state is all zeros"))
    } else {
        Ok(())
    }
}

fn capture_pending(p: Pending) -> PendingCheckpoint {
    match p {
        Pending::Read { addr, class } => PendingCheckpoint::Read { addr, class },
        Pending::Write { addr, value, class } => PendingCheckpoint::Write { addr, value, class },
        Pending::LockedRead {
            addr,
            set_to,
            class,
        } => PendingCheckpoint::LockedRead {
            addr,
            set_to,
            class,
        },
        Pending::UnlockWrite { addr, old, class } => {
            PendingCheckpoint::UnlockWrite { addr, old, class }
        }
    }
}

fn rebuild_pending(p: PendingCheckpoint) -> Pending {
    match p {
        PendingCheckpoint::Read { addr, class } => Pending::Read { addr, class },
        PendingCheckpoint::Write { addr, value, class } => Pending::Write { addr, value, class },
        PendingCheckpoint::LockedRead {
            addr,
            set_to,
            class,
        } => Pending::LockedRead {
            addr,
            set_to,
            class,
        },
        PendingCheckpoint::UnlockWrite { addr, old, class } => {
            Pending::UnlockWrite { addr, old, class }
        }
    }
}

fn capture_fault_stats(s: &FaultStats) -> [u64; 17] {
    [
        s.memory_faults_injected,
        s.cache_faults_injected,
        s.bus_transactions_lost,
        s.pe_fail_stops,
        s.memory_faults_detected,
        s.cache_faults_detected,
        s.memory_recoveries_owner,
        s.memory_recoveries_majority,
        s.memory_recoveries_failed,
        s.cache_refetches,
        s.broadcast_heals,
        s.lost_writes,
        s.drained_lines,
        s.forced_unlocks,
        s.recovery_latency_total,
        s.recovery_latency_samples,
        s.replicas_at_recovery,
    ]
}

fn rebuild_fault_stats(v: [u64; 17]) -> FaultStats {
    FaultStats {
        memory_faults_injected: v[0],
        cache_faults_injected: v[1],
        bus_transactions_lost: v[2],
        pe_fail_stops: v[3],
        memory_faults_detected: v[4],
        cache_faults_detected: v[5],
        memory_recoveries_owner: v[6],
        memory_recoveries_majority: v[7],
        memory_recoveries_failed: v[8],
        cache_refetches: v[9],
        broadcast_heals: v[10],
        lost_writes: v[11],
        drained_lines: v[12],
        forced_unlocks: v[13],
        recovery_latency_total: v[14],
        recovery_latency_samples: v[15],
        replicas_at_recovery: v[16],
    }
}

impl Machine {
    /// Exports the machine's complete run state as a versioned
    /// [`MachineCheckpoint`].
    ///
    /// The event trace and registered observers are *not* captured —
    /// they are pure observation and never influence simulated state.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if any processor or arbiter cannot
    /// export its state (e.g. closure processors).
    pub fn checkpoint(&self) -> Result<MachineCheckpoint, CheckpointError> {
        let mut processors = Vec::with_capacity(self.processors.len());
        for (pe, p) in self.processors.iter().enumerate() {
            processors.push(
                p.checkpoint_state()
                    .ok_or(CheckpointError::Processor { pe })?,
            );
        }
        let mut arbiters = Vec::with_capacity(self.arbiters.len());
        for (bus, a) in self.arbiters.iter().enumerate() {
            arbiters.push(
                a.checkpoint_state()
                    .ok_or(CheckpointError::Arbiter { bus })?,
            );
        }

        let (words, locks, bad_parity, mem_stats) = self.memory.checkpoint_state();
        let buses = self.routing.bus_count();

        let mut fault_clock: Vec<FaultClockEntry> = self
            .fault_clock
            .iter()
            .map(|(&(pe, addr), &injected_at)| FaultClockEntry {
                pe: pe.map(|p| p as u64),
                addr,
                injected_at,
            })
            .collect();
        fault_clock.sort_unstable_by_key(|e| (e.pe, e.addr));

        Ok(MachineCheckpoint {
            version: CHECKPOINT_VERSION,
            protocol: Protocol::name(&self.protocol),
            pes: self.processors.len() as u64,
            bus_count: buses as u64,
            memory_size: self.memory.size(),
            sets: self.geometry.sets() as u64,
            ways: self.geometry.ways() as u64,
            block_words: self.geometry.block_words(),
            transaction_cycles: self.transaction_cycles,
            discipline: self.discipline.name().to_string(),
            cycle: self.cycle,
            sharded_cycles: self.sharded_cycles,
            memory: MemoryCheckpoint {
                words,
                locks,
                bad_parity,
                stats: mem_stats,
            },
            caches: self
                .caches
                .iter()
                .map(decache_cache::TagStore::checkpoint_state)
                .collect(),
            cache_stats: self
                .cache_stats
                .iter()
                .map(|s| {
                    let (hits, misses) = s.checkpoint_state();
                    CacheStatsCheckpoint { hits, misses }
                })
                .collect(),
            statuses: self
                .statuses
                .iter()
                .map(|s| match *s {
                    PeStatus::Idle => StatusCheckpoint::Idle,
                    PeStatus::WaitBus(p) => StatusCheckpoint::WaitBus(capture_pending(p)),
                    PeStatus::Done => StatusCheckpoint::Done,
                    PeStatus::Failed => StatusCheckpoint::Failed,
                })
                .collect(),
            last_results: self.last_results.clone(),
            processors,
            queues: self
                .queues
                .iter()
                .map(|q| {
                    let s = q.checkpoint_state();
                    QueueCheckpoint {
                        retry: s.retry,
                        pending: s.pending,
                        arrival: s.arrival,
                        batch: s.batch,
                        in_flight: s.in_flight,
                    }
                })
                .collect(),
            arbiters,
            traffic: (0..buses)
                .map(|b| {
                    let t = self.traffic.bus(b);
                    TrafficCheckpoint {
                        counts: t.checkpoint_counts(),
                        aborted_reads: t.aborted_reads,
                        retries: t.retries,
                        busy_cycles: t.busy_cycles,
                        idle_cycles: t.idle_cycles,
                        address_phases: t.address_phases,
                    }
                })
                .collect(),
            bus_free_at: self.bus_free_at.clone(),
            stats: self.stats,
            fault: self.faults.as_ref().map(|e| FaultEngineCheckpoint {
                rng_state: e.rng.state(),
                cursor: e.cursor as u64,
                lose_grant: e.lose_grant.clone(),
            }),
            fault_stats: capture_fault_stats(&self.fault_stats),
            fault_clock,
            last_progress: self.last_progress.clone(),
            last_addr: self.last_addr.clone(),
            telemetry: self.telemetry.as_deref().map(|t| TelemetryCheckpoint {
                bus_acquire_wait: HistogramCheckpoint::capture(&t.hist.bus_acquire_wait),
                memory_service: HistogramCheckpoint::capture(&t.hist.memory_service),
                read_fill: HistogramCheckpoint::capture(&t.hist.read_fill),
                ts_spin: HistogramCheckpoint::capture(&t.hist.ts_spin),
                enqueued_at: t.enqueued_at.clone(),
                read_since: t.read_since.clone(),
                ts_since: t.ts_since.clone(),
            }),
        })
    }

    /// Validates that `ck` matches this machine's build-time shape
    /// without mutating anything: format version, protocol, geometry,
    /// PE/bus/memory dimensions, fault-plan and telemetry presence,
    /// per-PE and per-bus vector lengths, and RNG-state sanity.
    fn validate_checkpoint(&self, ck: &MachineCheckpoint) -> Result<(), RestoreError> {
        if ck.version != CHECKPOINT_VERSION {
            return Err(RestoreError::Version {
                found: ck.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let own_protocol = Protocol::name(&self.protocol);
        if ck.protocol != own_protocol {
            return Err(RestoreError::Protocol {
                found: ck.protocol.clone(),
                expected: own_protocol,
            });
        }
        let n = self.processors.len();
        let buses = self.routing.bus_count();
        check_shape("PEs", ck.pes, n as u64)?;
        check_shape("buses", ck.bus_count, buses as u64)?;
        check_shape("memory words", ck.memory_size, self.memory.size())?;
        check_shape("cache sets", ck.sets, self.geometry.sets() as u64)?;
        check_shape("cache ways", ck.ways, self.geometry.ways() as u64)?;
        check_shape("block words", ck.block_words, self.geometry.block_words())?;
        check_shape(
            "transaction cycles",
            ck.transaction_cycles,
            self.transaction_cycles,
        )?;
        if ck.discipline != self.discipline.name() {
            return Err(component(
                "service discipline",
                format!(
                    "checkpoint ran '{}' but this machine runs '{}'",
                    ck.discipline, self.discipline
                ),
            ));
        }
        check_len("cache snapshots", ck.caches.len(), n)?;
        check_len("cache-stat snapshots", ck.cache_stats.len(), n)?;
        check_len("statuses", ck.statuses.len(), n)?;
        check_len("last results", ck.last_results.len(), n)?;
        check_len("processor snapshots", ck.processors.len(), n)?;
        check_len("progress stamps", ck.last_progress.len(), n)?;
        check_len("last addresses", ck.last_addr.len(), n)?;
        check_len("queue snapshots", ck.queues.len(), buses)?;
        check_len("arbiter snapshots", ck.arbiters.len(), buses)?;
        check_len("traffic snapshots", ck.traffic.len(), buses)?;
        check_len("bus-free stamps", ck.bus_free_at.len(), buses)?;
        check_shape(
            "memory words vector",
            ck.memory.words.len() as u64,
            self.memory.size(),
        )?;

        match (&ck.fault, &self.faults) {
            (Some(f), Some(engine)) => {
                check_rng("fault engine", f.rng_state)?;
                check_len("bus-loss marks", f.lose_grant.len(), buses)?;
                let scheduled = engine.plan.scheduled.len() as u64;
                if f.cursor > scheduled {
                    return Err(component(
                        "fault engine",
                        format!("cursor {} beyond {scheduled} scheduled faults", f.cursor),
                    ));
                }
            }
            (None, None) => {}
            (found, _) => {
                return Err(RestoreError::Shape {
                    what: "fault plan attached",
                    found: u64::from(found.is_some()),
                    expected: u64::from(self.faults.is_some()),
                });
            }
        }

        match (&ck.telemetry, &self.telemetry) {
            (Some(t), Some(_)) => {
                check_len("telemetry enqueue stamps", t.enqueued_at.len(), n)?;
                check_len("telemetry read stamps", t.read_since.len(), n)?;
                check_len("telemetry TS stamps", t.ts_since.len(), n)?;
            }
            (None, None) => {}
            (found, _) => {
                return Err(RestoreError::Shape {
                    what: "telemetry enabled",
                    found: u64::from(found.is_some()),
                    expected: u64::from(self.telemetry.is_some()),
                });
            }
        }

        for (pe, cache) in ck.caches.iter().enumerate() {
            check_rng(&format!("P{pe} cache RNG"), cache.rng_state)?;
        }
        for (bus, arb) in ck.arbiters.iter().enumerate() {
            if let ArbiterCheckpoint::Random { rng_state } = arb {
                check_rng(&format!("bus {bus} arbiter RNG"), *rng_state)?;
            }
        }
        Ok(())
    }

    /// Restores a checkpoint into this machine, which must have been
    /// built with the same configuration (protocol, geometry, routing,
    /// arbiters, processors, fault plan, telemetry). On success the
    /// machine continues the checkpointed run bit-identically; the
    /// derived fast-path indexes (sharers, owners, pending readers,
    /// idle/done bookkeeping) are rebuilt from the restored
    /// architectural state exactly as at construction.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] on any version, protocol, shape, or
    /// component mismatch. Shape validation happens before mutation;
    /// after a [`RestoreError::Component`] error the machine's state is
    /// unspecified and must be discarded.
    pub fn restore(&mut self, ck: &MachineCheckpoint) -> Result<(), RestoreError> {
        self.validate_checkpoint(ck)?;
        let n = self.processors.len();
        let buses = self.routing.bus_count();

        self.memory
            .restore_state(
                ck.memory.words.clone(),
                ck.memory.locks.clone(),
                ck.memory.bad_parity.clone(),
                ck.memory.stats,
            )
            .map_err(|e| component("memory", e))?;

        for pe in 0..n {
            self.caches[pe]
                .restore_state(ck.caches[pe].clone())
                .map_err(|e| component(format!("P{pe} cache"), e))?;
            self.cache_stats[pe] =
                CacheStats::from_checkpoint(ck.cache_stats[pe].hits, ck.cache_stats[pe].misses);
            self.processors[pe]
                .restore_state(&ck.processors[pe])
                .map_err(|e| component(format!("P{pe} processor"), e))?;
            self.statuses[pe] = match ck.statuses[pe] {
                StatusCheckpoint::Idle => PeStatus::Idle,
                StatusCheckpoint::WaitBus(p) => PeStatus::WaitBus(rebuild_pending(p)),
                StatusCheckpoint::Done => PeStatus::Done,
                StatusCheckpoint::Failed => PeStatus::Failed,
            };
        }
        self.last_results.clone_from(&ck.last_results);
        self.last_progress.clone_from(&ck.last_progress);
        self.last_addr.clone_from(&ck.last_addr);

        for bus in 0..buses {
            let q = &ck.queues[bus];
            self.queues[bus]
                .restore_state(QueueState {
                    retry: q.retry.clone(),
                    pending: q.pending.clone(),
                    arrival: q.arrival.clone(),
                    batch: q.batch.clone(),
                    in_flight: q.in_flight.clone(),
                })
                .map_err(|e| component(format!("bus {bus} queue"), e))?;
            self.arbiters[bus]
                .restore_state(&ck.arbiters[bus])
                .map_err(|e| component(format!("bus {bus} arbiter"), e))?;
            let t = ck.traffic[bus];
            *self.traffic.bus_mut(bus) = TrafficStats::from_checkpoint(
                t.counts,
                t.aborted_reads,
                t.retries,
                t.busy_cycles,
                t.idle_cycles,
                t.address_phases,
            );
        }
        self.bus_free_at.clone_from(&ck.bus_free_at);
        self.stats = ck.stats;
        self.cycle = ck.cycle;
        self.sharded_cycles = ck.sharded_cycles;

        if let (Some(f), Some(engine)) = (&ck.fault, self.faults.as_mut()) {
            engine.rng = Rng::from_state(f.rng_state);
            engine.cursor = f.cursor as usize;
            engine.lose_grant.clone_from(&f.lose_grant);
        }
        self.fault_stats = rebuild_fault_stats(ck.fault_stats);
        self.fault_clock = ck
            .fault_clock
            .iter()
            .map(|e| ((e.pe.map(|p| p as usize), e.addr), e.injected_at))
            .collect();

        if let (Some(t), Some(state)) = (&ck.telemetry, self.telemetry.as_deref_mut()) {
            state.hist = CycleHistograms {
                bus_acquire_wait: t.bus_acquire_wait.rebuild("bus-acquire histogram")?,
                memory_service: t.memory_service.rebuild("memory-service histogram")?,
                read_fill: t.read_fill.rebuild("read-fill histogram")?,
                ts_spin: t.ts_spin.rebuild("TS-spin histogram")?,
            };
            state.enqueued_at.clone_from(&t.enqueued_at);
            state.read_since.clone_from(&t.read_since);
            state.ts_since.clone_from(&t.ts_since);
        }

        // Rebuild the derived fast-path indexes from the restored
        // architectural state, mirroring `Machine::from_parts`.
        let mut sharers = AddrPeIndex::with_addr_capacity(n, self.memory.size());
        let mut owners = AddrPeIndex::with_addr_capacity(n, self.memory.size());
        for (pe, cache) in self.caches.iter().enumerate() {
            for entry in cache.iter() {
                sharers.add(entry.addr.index(), pe);
                if self.protocol.supplies_on_snoop_read(entry.state) {
                    owners.add(entry.addr.index(), pe);
                }
            }
        }
        self.sharers = sharers;
        self.owners = owners;
        let mut pending_readers = AddrPeIndex::with_addr_capacity(n, self.memory.size());
        let mut idle = PeMask::new(n);
        let mut idle_count = 0;
        let mut done_count = 0;
        for (pe, status) in self.statuses.iter().enumerate() {
            match *status {
                PeStatus::Idle => {
                    idle.set(pe);
                    idle_count += 1;
                }
                PeStatus::Done | PeStatus::Failed => done_count += 1,
                PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                    pending_readers.add(addr.index(), pe);
                }
                PeStatus::WaitBus(_) => {}
            }
        }
        self.pending_readers = pending_readers;
        self.idle = idle;
        self.idle_count = idle_count;
        self.done_count = done_count;
        Ok(())
    }
}
