//! The processing-element program model.

use crate::{MemOp, OpResult};
use decache_cache::RefClass;
use decache_mem::{Addr, Word};
use std::fmt;

/// What a processor answers when its cache asks for the next operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Issue this operation.
    Op(MemOp),
    /// Nothing to do this cycle, but more may come (e.g. a conducted
    /// scenario waiting for its next directive). A processor returning
    /// `Wait` must stash anything it needs from the result it was just
    /// shown — it will not be shown again.
    Wait,
    /// The program has finished; the PE halts permanently.
    Halt,
}

impl Poll {
    /// Returns the operation if this is `Poll::Op`.
    pub fn op(self) -> Option<MemOp> {
        match self {
            Poll::Op(op) => Some(op),
            Poll::Wait | Poll::Halt => None,
        }
    }

    /// Returns `true` if this is an operation.
    pub fn is_op(&self) -> bool {
        matches!(self, Poll::Op(_))
    }

    /// Returns `true` if the processor halted.
    pub fn is_halt(&self) -> bool {
        matches!(self, Poll::Halt)
    }
}

impl From<Option<MemOp>> for Poll {
    fn from(op: Option<MemOp>) -> Self {
        match op {
            Some(op) => Poll::Op(op),
            None => Poll::Halt,
        }
    }
}

/// A processor's mutable state in serializable form, for machine
/// checkpoint/restore.
///
/// A checkpoint records *progress through a program*, not the program
/// itself: restore happens into a machine rebuilt with the same
/// processors, so only the position within each program needs to
/// travel. Processors whose state cannot be exported (e.g. arbitrary
/// closures) simply return `None` from
/// [`Processor::checkpoint_state`], which makes the whole machine
/// uncheckpointable with a structured error — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessorCheckpoint {
    /// A processor with no mutable state (e.g. [`IdleProcessor`]).
    Stateless,
    /// A [`Script`] in flight: how many operations it has not yet
    /// issued.
    Script {
        /// Operations remaining in the script.
        ops_left: u64,
    },
    /// A [`LoopProcessor`] in flight.
    Loop {
        /// Full rounds (plus the current partial one) still to run.
        rounds_left: u64,
        /// Position within the loop body.
        position: u64,
    },
    /// A [`SpinReader`] in flight.
    Spin {
        /// Whether the spin condition has been met.
        satisfied: bool,
    },
    /// A named bag of counters for processors defined outside this
    /// crate (workload generators); the meaning of `words` is fixed by
    /// the processor that wrote it, and `kind` guards against restoring
    /// into the wrong one.
    Custom {
        /// The processor type that produced this state.
        kind: String,
        /// Opaque state words, interpreted by that type.
        words: Vec<u64>,
    },
}

/// A processing element's program: a source of memory operations that
/// reacts to the results of previous operations.
///
/// The paper assumes off-the-shelf PEs whose only interaction with the
/// rest of the machine is through memory references (Section 2); this
/// trait captures exactly that surface. It is expressive enough for
/// straight-line reference streams ([`Script`]), synthetic workload
/// generators, and reactive programs such as Test-and-Test-and-Set
/// spinlocks (which decide the next operation from the last read value).
pub trait Processor {
    /// Produces the next operation, given the result of the previous one
    /// (`None` on the very first call, and after a `Wait`).
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll;

    /// Exports this processor's mutable state for a machine checkpoint,
    /// or `None` if the state cannot be captured (the default — e.g.
    /// closure processors). A `None` makes
    /// [`Machine::checkpoint`](crate::Machine::checkpoint) fail with a
    /// structured error naming the PE.
    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        None
    }

    /// Rewinds or fast-forwards this processor to a previously exported
    /// state. Called on a freshly built processor during
    /// [`Machine::restore`](crate::Machine::restore).
    ///
    /// # Errors
    ///
    /// Returns a message if `state` has the wrong variant for this
    /// processor or describes an impossible position (the default:
    /// every restore is rejected).
    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        let _ = state;
        Err("this processor does not support checkpoint restore".into())
    }
}

impl<F> Processor for F
where
    F: FnMut(Option<&OpResult>) -> Poll,
{
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        self(last)
    }
}

/// A fixed, finite sequence of memory operations, built fluently.
///
/// # Examples
///
/// ```
/// use decache_machine::{Processor, Script};
/// use decache_mem::{Addr, Word};
///
/// let mut pe = Script::new()
///     .write(Addr::new(0), Word::new(1))
///     .read(Addr::new(0))
///     .build();
/// assert!(pe.next_op(None).is_op());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Script {
    ops: Vec<MemOp>,
}

impl Script {
    /// Starts an empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Appends a shared-class read.
    #[must_use]
    pub fn read(mut self, addr: Addr) -> Self {
        self.ops.push(MemOp::read(addr));
        self
    }

    /// Appends a shared-class write.
    #[must_use]
    pub fn write(mut self, addr: Addr, value: Word) -> Self {
        self.ops.push(MemOp::write(addr, value));
        self
    }

    /// Appends a Test-and-Set.
    #[must_use]
    pub fn test_and_set(mut self, addr: Addr, value: Word) -> Self {
        self.ops.push(MemOp::test_and_set(addr, value));
        self
    }

    /// Appends an arbitrary operation (e.g. with an explicit class).
    #[must_use]
    pub fn op(mut self, op: MemOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends a read tagged with a class.
    #[must_use]
    pub fn read_class(mut self, addr: Addr, class: RefClass) -> Self {
        self.ops.push(MemOp::read(addr).with_class(class));
        self
    }

    /// Appends a write tagged with a class.
    #[must_use]
    pub fn write_class(mut self, addr: Addr, value: Word, class: RefClass) -> Self {
        self.ops.push(MemOp::write(addr, value).with_class(class));
        self
    }

    /// Returns the number of operations in the script.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the script into a boxed [`Processor`].
    pub fn build(self) -> Box<dyn Processor + Send> {
        Box::new(ScriptProcessor {
            ops: self.ops.into_iter(),
        })
    }
}

/// The running form of a [`Script`]; produced by [`Script::build`].
struct ScriptProcessor {
    ops: std::vec::IntoIter<MemOp>,
}

impl fmt::Debug for ScriptProcessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScriptProcessor({} ops left)", self.ops.len())
    }
}

impl Processor for ScriptProcessor {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        Poll::from(self.ops.next())
    }

    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        Some(ProcessorCheckpoint::Script {
            ops_left: self.ops.len() as u64,
        })
    }

    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        let ProcessorCheckpoint::Script { ops_left } = *state else {
            return Err(format!("script given {state:?}"));
        };
        let have = self.ops.len() as u64;
        if ops_left > have {
            return Err(format!(
                "script checkpoint has {ops_left} ops left but only {have} exist"
            ));
        }
        for _ in 0..(have - ops_left) {
            self.ops.next();
        }
        Ok(())
    }
}

/// A processor that issues no operations; occupies a PE slot in
/// asymmetric experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleProcessor;

impl Processor for IdleProcessor {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        Poll::Halt
    }

    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        Some(ProcessorCheckpoint::Stateless)
    }

    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        match state {
            ProcessorCheckpoint::Stateless => Ok(()),
            other => Err(format!("idle processor given {other:?}")),
        }
    }
}

/// Repeats a fixed cyclic sequence of operations a given number of times.
///
/// # Examples
///
/// ```
/// use decache_machine::{LoopProcessor, MemOp, Processor};
/// use decache_mem::{Addr, Word};
///
/// // Ping-pong writes, three rounds.
/// let mut pe = LoopProcessor::new(
///     vec![MemOp::write(Addr::new(0), Word::ONE), MemOp::read(Addr::new(1))],
///     3,
/// );
/// let mut n = 0;
/// while pe.next_op(None).is_op() { n += 1; }
/// assert_eq!(n, 6);
/// ```
#[derive(Debug, Clone)]
pub struct LoopProcessor {
    body: Vec<MemOp>,
    rounds_left: u64,
    position: usize,
}

impl LoopProcessor {
    /// Creates a processor that issues `body` in order, `rounds` times.
    pub fn new(body: Vec<MemOp>, rounds: u64) -> Self {
        LoopProcessor {
            body,
            rounds_left: rounds,
            position: 0,
        }
    }
}

impl Processor for LoopProcessor {
    fn next_op(&mut self, _last: Option<&OpResult>) -> Poll {
        if self.body.is_empty() || self.rounds_left == 0 {
            return Poll::Halt;
        }
        let op = self.body[self.position];
        self.position += 1;
        if self.position == self.body.len() {
            self.position = 0;
            self.rounds_left -= 1;
        }
        Poll::Op(op)
    }

    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        Some(ProcessorCheckpoint::Loop {
            rounds_left: self.rounds_left,
            position: self.position as u64,
        })
    }

    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        let ProcessorCheckpoint::Loop {
            rounds_left,
            position,
        } = *state
        else {
            return Err(format!("loop processor given {state:?}"));
        };
        if !self.body.is_empty() && position as usize >= self.body.len() {
            return Err(format!(
                "loop position {position} outside body of {} ops",
                self.body.len()
            ));
        }
        self.rounds_left = rounds_left;
        self.position = position as usize;
        Ok(())
    }
}

/// A word-returning spin: reads `addr` until the value satisfies `until`,
/// then halts. Building block for tests; the full TTS lock lives in
/// `decache-sync`.
pub struct SpinReader {
    addr: Addr,
    until: Box<dyn FnMut(Word) -> bool + Send>,
    satisfied: bool,
}

impl fmt::Debug for SpinReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpinReader({}, satisfied={})", self.addr, self.satisfied)
    }
}

impl SpinReader {
    /// Spins reading `addr` until `until(value)` is true.
    pub fn new(addr: Addr, until: impl FnMut(Word) -> bool + Send + 'static) -> Self {
        SpinReader {
            addr,
            until: Box::new(until),
            satisfied: false,
        }
    }
}

impl Processor for SpinReader {
    fn next_op(&mut self, last: Option<&OpResult>) -> Poll {
        if self.satisfied {
            return Poll::Halt;
        }
        if let Some(OpResult::Read(w)) = last {
            if (self.until)(*w) {
                self.satisfied = true;
                return Poll::Halt;
            }
        }
        Poll::Op(MemOp::read(self.addr))
    }

    fn checkpoint_state(&self) -> Option<ProcessorCheckpoint> {
        Some(ProcessorCheckpoint::Spin {
            satisfied: self.satisfied,
        })
    }

    fn restore_state(&mut self, state: &ProcessorCheckpoint) -> Result<(), String> {
        let ProcessorCheckpoint::Spin { satisfied } = *state else {
            return Err(format!("spin reader given {state:?}"));
        };
        self.satisfied = satisfied;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays_in_order() {
        let mut pe = Script::new()
            .read(Addr::new(0))
            .write(Addr::new(1), Word::new(9))
            .test_and_set(Addr::new(2), Word::ONE)
            .build();
        assert_eq!(pe.next_op(None), Poll::Op(MemOp::read(Addr::new(0))));
        assert_eq!(
            pe.next_op(Some(&OpResult::Read(Word::ZERO))),
            Poll::Op(MemOp::write(Addr::new(1), Word::new(9)))
        );
        assert_eq!(
            pe.next_op(Some(&OpResult::Write)),
            Poll::Op(MemOp::test_and_set(Addr::new(2), Word::ONE))
        );
        assert_eq!(pe.next_op(None), Poll::Halt);
        assert_eq!(pe.next_op(None), Poll::Halt);
    }

    #[test]
    fn script_len_and_classes() {
        let s = Script::new()
            .read_class(Addr::new(0), RefClass::Code)
            .write_class(Addr::new(1), Word::ONE, RefClass::Local);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Script::new().is_empty());
    }

    #[test]
    fn closure_is_a_processor() {
        let mut count = 0;
        let mut pe = move |_last: Option<&OpResult>| {
            count += 1;
            Poll::from((count <= 2).then(|| MemOp::read(Addr::new(0))))
        };
        assert!(Processor::next_op(&mut pe, None).is_op());
        assert!(Processor::next_op(&mut pe, None).is_op());
        assert!(Processor::next_op(&mut pe, None).is_halt());
    }

    #[test]
    fn idle_processor_never_issues() {
        let mut pe = IdleProcessor;
        assert!(pe.next_op(None).is_halt());
    }

    #[test]
    fn loop_processor_counts_rounds() {
        let mut pe = LoopProcessor::new(vec![MemOp::read(Addr::new(0))], 5);
        let mut n = 0;
        while pe.next_op(None).is_op() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn empty_loop_body_halts_immediately() {
        let mut pe = LoopProcessor::new(vec![], 10);
        assert!(pe.next_op(None).is_halt());
    }

    #[test]
    fn script_checkpoint_fast_forwards_to_position() {
        let script = Script::new()
            .read(Addr::new(0))
            .read(Addr::new(1))
            .read(Addr::new(2));
        let mut pe = script.clone().build();
        pe.next_op(None); // consume op 0
        let state = pe.checkpoint_state().unwrap();
        assert_eq!(state, ProcessorCheckpoint::Script { ops_left: 2 });

        let mut fresh = script.build();
        fresh.restore_state(&state).unwrap();
        assert_eq!(
            fresh.next_op(None),
            Poll::Op(MemOp::read(Addr::new(1))),
            "restored script resumes at the checkpointed position"
        );
        // A position beyond the program is a structured error.
        let mut fresh = Script::new().read(Addr::new(0)).build();
        assert!(fresh
            .restore_state(&ProcessorCheckpoint::Script { ops_left: 9 })
            .is_err());
    }

    #[test]
    fn loop_and_spin_checkpoints_round_trip() {
        let body = vec![MemOp::read(Addr::new(0)), MemOp::read(Addr::new(1))];
        let mut pe = LoopProcessor::new(body.clone(), 3);
        pe.next_op(None);
        let state = pe.checkpoint_state().unwrap();
        let mut fresh = LoopProcessor::new(body.clone(), 3);
        fresh.restore_state(&state).unwrap();
        assert_eq!(fresh.next_op(None), Poll::Op(body[1]));
        assert!(fresh
            .restore_state(&ProcessorCheckpoint::Loop {
                rounds_left: 1,
                position: 99,
            })
            .is_err());

        let mut spin = SpinReader::new(Addr::new(4), decache_mem::Word::is_zero);
        spin.next_op(Some(&OpResult::Read(Word::ZERO)));
        let state = spin.checkpoint_state().unwrap();
        assert_eq!(state, ProcessorCheckpoint::Spin { satisfied: true });
        let mut fresh = SpinReader::new(Addr::new(4), decache_mem::Word::is_zero);
        fresh.restore_state(&state).unwrap();
        assert!(fresh.next_op(None).is_halt());
    }

    #[test]
    fn closure_processors_are_not_checkpointable() {
        let mut pe = |_last: Option<&OpResult>| Poll::Halt;
        assert!(Processor::checkpoint_state(&pe).is_none());
        assert!(Processor::restore_state(&mut pe, &ProcessorCheckpoint::Stateless).is_err());
    }

    #[test]
    fn spin_reader_stops_on_condition() {
        let mut pe = SpinReader::new(Addr::new(4), decache_mem::Word::is_zero);
        // Issues a read, sees 1, spins; sees 0, halts.
        assert!(pe.next_op(None).is_op());
        assert!(pe.next_op(Some(&OpResult::Read(Word::ONE))).is_op());
        assert!(pe.next_op(Some(&OpResult::Read(Word::ZERO))).is_halt());
        assert!(pe.next_op(None).is_halt());
    }
}
