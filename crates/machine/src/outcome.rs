//! Structured run termination: [`RunOutcome`] replaces the bare panic
//! of [`Machine::run_to_completion`](crate::Machine::run_to_completion)
//! with a diagnosis — did the machine finish, and if not, which PEs are
//! stuck on what, and does their stall look like livelock or deadlock?

use decache_mem::Addr;
use std::fmt;

/// The result of [`Machine::run_outcome`](crate::Machine::run_outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total bus cycles elapsed on the machine when the run stopped.
    pub cycles: u64,
    /// Why the run stopped.
    pub reason: HaltReason,
}

impl RunOutcome {
    /// `true` iff every PE finished (fail-stopped PEs count as
    /// finished: graceful degradation is still a completion).
    pub fn is_complete(&self) -> bool {
        matches!(self.reason, HaltReason::Completed)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            HaltReason::Completed => write!(f, "completed at cycle {}", self.cycles),
            HaltReason::BudgetExhausted { blame } => {
                write!(
                    f,
                    "cycle budget exhausted at cycle {}; {} unfinished PE{}:",
                    self.cycles,
                    blame.len(),
                    if blame.len() == 1 { "" } else { "s" }
                )?;
                for b in blame {
                    write!(f, "\n  {b}")?;
                }
                Ok(())
            }
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// Every PE reached `Done` (or fail-stopped) and the buses drained.
    Completed,
    /// The cycle budget ran out with work outstanding; `blame` lists
    /// every unfinished PE with a stall diagnosis, most-starved first.
    BudgetExhausted {
        /// Per-PE diagnosis of the unfinished processors.
        blame: Vec<PeBlame>,
    },
}

/// The diagnosis of one unfinished PE at budget exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeBlame {
    /// The unfinished processing element.
    pub pe: usize,
    /// The address it is stuck on: its pending bus transaction's target
    /// if stalled, else the last address it issued to.
    pub addr: Option<Addr>,
    /// `true` if the PE is stalled waiting on a bus transaction;
    /// `false` if it is still issuing (e.g. a spin loop of completing
    /// operations, or a conducted processor returning `Wait`).
    pub stalled: bool,
    /// The last cycle in which this PE completed an operation (0 if it
    /// never completed one).
    pub last_progress: u64,
    /// Livelock or deadlock, judged from recent progress.
    pub verdict: StallVerdict,
}

impl fmt::Display for PeBlame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{} {}: ", self.pe, self.verdict)?;
        match (self.stalled, self.addr) {
            (true, Some(addr)) => write!(f, "stalled on a bus transaction for {addr}")?,
            (true, None) => write!(f, "stalled on a bus transaction")?,
            (false, Some(addr)) => write!(f, "still issuing, last to {addr}")?,
            (false, None) => write!(f, "never issued an operation")?,
        }
        write!(f, " (last completed an op at cycle {})", self.last_progress)
    }
}

/// Whether an unfinished PE was making progress when the budget ran
/// out.
///
/// The machine classifies by recent completions: a PE that completed an
/// operation within the trailing progress window is **livelocked**
/// (spinning productively but never halting — e.g. a Test-and-Set loop
/// whose lock is never released), while one with no completions in the
/// window is **deadlocked** (e.g. a write forever rejected by a memory
/// lock, or a conducted processor waiting for an operation that never
/// comes). The window is a quarter of the cycle budget, clamped to
/// `[16, 4096]` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallVerdict {
    /// Completing operations but never halting.
    Livelock,
    /// No operation completed in the trailing progress window.
    Deadlock,
}

impl fmt::Display for StallVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallVerdict::Livelock => write!(f, "livelock"),
            StallVerdict::Deadlock => write!(f, "deadlock"),
        }
    }
}

/// The livelock/deadlock window for a given budget: a quarter of the
/// budget, clamped to `[16, 4096]` cycles.
pub(crate) fn progress_window(max_cycles: u64) -> u64 {
    (max_cycles / 4).clamp(16, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_display() {
        let o = RunOutcome {
            cycles: 12,
            reason: HaltReason::Completed,
        };
        assert!(o.is_complete());
        assert_eq!(o.to_string(), "completed at cycle 12");
    }

    #[test]
    fn exhausted_display_lists_blame() {
        let o = RunOutcome {
            cycles: 500,
            reason: HaltReason::BudgetExhausted {
                blame: vec![
                    PeBlame {
                        pe: 1,
                        addr: Some(Addr::new(17)),
                        stalled: true,
                        last_progress: 3,
                        verdict: StallVerdict::Deadlock,
                    },
                    PeBlame {
                        pe: 2,
                        addr: Some(Addr::new(0)),
                        stalled: false,
                        last_progress: 499,
                        verdict: StallVerdict::Livelock,
                    },
                ],
            },
        };
        assert!(!o.is_complete());
        let text = o.to_string();
        assert!(text.contains("2 unfinished PEs"));
        assert!(text.contains("P1 deadlock: stalled on a bus transaction for @17"));
        assert!(text.contains("P2 livelock: still issuing, last to @0"));
    }

    #[test]
    fn window_clamps() {
        assert_eq!(progress_window(10), 16);
        assert_eq!(progress_window(1_000), 250);
        assert_eq!(progress_window(1_000_000), 4096);
    }
}
