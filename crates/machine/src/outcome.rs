//! Structured run termination: [`RunOutcome`] replaces the bare panic
//! of [`Machine::run_to_completion`](crate::Machine::run_to_completion)
//! with a diagnosis — did the machine finish, and if not, which PEs are
//! stuck on what, and does their stall look like livelock or deadlock?

use decache_mem::Addr;
use std::fmt;

/// The default livelock/deadlock progress window, in cycles: a PE with
/// no completed operation in the trailing window is judged deadlocked.
///
/// The window is an **absolute** machine property
/// ([`MachineBuilder::progress_window`](crate::MachineBuilder::progress_window)),
/// deliberately independent of the run budget: whether a stuck machine
/// is livelocked or deadlocked is a fact about the machine, and must
/// not flip when the same run is retried with a larger `max_cycles`.
pub const DEFAULT_PROGRESS_WINDOW: u64 = 4096;

/// The result of [`Machine::run_outcome`](crate::Machine::run_outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total bus cycles elapsed on the machine when the run stopped.
    pub cycles: u64,
    /// The progress window (in cycles) the verdicts were judged
    /// against — the machine's configured window, not a function of
    /// this run's budget.
    pub progress_window: u64,
    /// Why the run stopped.
    pub reason: HaltReason,
}

impl RunOutcome {
    /// `true` iff every PE finished (fail-stopped PEs count as
    /// finished: graceful degradation is still a completion).
    pub fn is_complete(&self) -> bool {
        matches!(self.reason, HaltReason::Completed)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            HaltReason::Completed => write!(f, "completed at cycle {}", self.cycles),
            HaltReason::BudgetExhausted { blame } => {
                write!(
                    f,
                    "cycle budget exhausted at cycle {}; {} unfinished PE{}:",
                    self.cycles,
                    blame.len(),
                    if blame.len() == 1 { "" } else { "s" }
                )?;
                for b in blame {
                    write!(f, "\n  {b}")?;
                }
                Ok(())
            }
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// Every PE reached `Done` (or fail-stopped) and the buses drained.
    Completed,
    /// The cycle budget ran out with work outstanding; `blame` lists
    /// every unfinished PE with a stall diagnosis, most-starved first.
    BudgetExhausted {
        /// Per-PE diagnosis of the unfinished processors.
        blame: Vec<PeBlame>,
    },
}

/// The diagnosis of one unfinished PE at budget exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeBlame {
    /// The unfinished processing element.
    pub pe: usize,
    /// Where the PE stands: blocked on a specific transaction, or
    /// still issuing.
    pub site: StallSite,
    /// The last cycle in which this PE completed an operation (0 if it
    /// never completed one).
    pub last_progress: u64,
    /// Livelock or deadlock, judged from recent progress.
    pub verdict: StallVerdict,
}

/// What an unfinished PE was doing when the budget ran out.
///
/// The distinction matters for diagnosis: a [`StallSite::Blocked`] PE
/// names the address of the bus transaction it is *stuck on*, while a
/// [`StallSite::Issuing`] PE is not stuck on any address — the address
/// reported is merely its most recently *completed* access (its stall,
/// if any, lies in what it chooses to issue next, e.g. a spin loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallSite {
    /// Stalled in `WaitBus` on a pending transaction for `addr` — the
    /// genuine stall site.
    Blocked {
        /// The pending transaction's target address.
        addr: Addr,
    },
    /// Idle and free to issue (e.g. a spin loop of completing
    /// operations, or a conducted processor returning `Wait`); `last`
    /// is the last access it completed, `None` if it never issued.
    Issuing {
        /// The most recently completed access, not a stall site.
        last: Option<Addr>,
    },
}

impl fmt::Display for PeBlame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{} {}: ", self.pe, self.verdict)?;
        match self.site {
            StallSite::Blocked { addr } => {
                write!(f, "stalled on a bus transaction for {addr}")?;
            }
            StallSite::Issuing { last: Some(addr) } => {
                write!(f, "still issuing (last completed access: {addr})")?;
            }
            StallSite::Issuing { last: None } => write!(f, "never issued an operation")?,
        }
        write!(f, " (last completed an op at cycle {})", self.last_progress)
    }
}

/// Whether an unfinished PE was making progress when the budget ran
/// out.
///
/// The machine classifies by recent completions: a PE that completed an
/// operation within the trailing progress window is **livelocked**
/// (spinning productively but never halting — e.g. a Test-and-Set loop
/// whose lock is never released), while one with no completions in the
/// window is **deadlocked** (e.g. a write forever rejected by a memory
/// lock, or a conducted processor waiting for an operation that never
/// comes). The window is absolute — [`DEFAULT_PROGRESS_WINDOW`] cycles
/// unless configured via
/// [`MachineBuilder::progress_window`](crate::MachineBuilder::progress_window)
/// — so the verdict for a given machine state does not depend on the
/// budget the caller happened to run it with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallVerdict {
    /// Completing operations but never halting.
    Livelock,
    /// No operation completed in the trailing progress window.
    Deadlock,
}

impl fmt::Display for StallVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallVerdict::Livelock => write!(f, "livelock"),
            StallVerdict::Deadlock => write!(f, "deadlock"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_display() {
        let o = RunOutcome {
            cycles: 12,
            progress_window: DEFAULT_PROGRESS_WINDOW,
            reason: HaltReason::Completed,
        };
        assert!(o.is_complete());
        assert_eq!(o.to_string(), "completed at cycle 12");
    }

    #[test]
    fn exhausted_display_lists_blame() {
        let o = RunOutcome {
            cycles: 500,
            progress_window: 100,
            reason: HaltReason::BudgetExhausted {
                blame: vec![
                    PeBlame {
                        pe: 1,
                        site: StallSite::Blocked {
                            addr: Addr::new(17),
                        },
                        last_progress: 3,
                        verdict: StallVerdict::Deadlock,
                    },
                    PeBlame {
                        pe: 2,
                        site: StallSite::Issuing {
                            last: Some(Addr::new(0)),
                        },
                        last_progress: 499,
                        verdict: StallVerdict::Livelock,
                    },
                    PeBlame {
                        pe: 3,
                        site: StallSite::Issuing { last: None },
                        last_progress: 0,
                        verdict: StallVerdict::Deadlock,
                    },
                ],
            },
        };
        assert!(!o.is_complete());
        let text = o.to_string();
        assert!(text.contains("3 unfinished PEs"));
        assert!(text.contains("P1 deadlock: stalled on a bus transaction for @17"));
        assert!(text.contains("P2 livelock: still issuing (last completed access: @0)"));
        assert!(text.contains("P3 deadlock: never issued an operation"));
    }
}
