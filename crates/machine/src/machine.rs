//! The cycle-based shared-bus MIMD machine.

use crate::sharers::{AddrPeIndex, PeMask};
use crate::status::{PeStatus, Pending};
use crate::trace::{CpuDecision, Observation, Observer};
use crate::{MachineStats, MemOp, OpResult, Processor, Snapshot, Trace, TraceEvent, TraceKind};
use decache_bus::{
    Arbiter, BusOp, BusOpKind, BusQueue, BusTransaction, MultiBusStats, Routing, TrafficStats,
};
use decache_cache::{AccessKind, CacheStats, TagStore};
use decache_core::{BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent};
use decache_mem::{Addr, MemError, Memory, PeId, Word};
use std::sync::Arc;

/// The simulated machine: `n` processing elements with private snooping
/// caches, one or more shared buses, and a common memory.
///
/// The temporal contract follows the paper's assumptions (Section 2):
/// each bus cycle, (1) every idle PE may issue one memory operation to
/// its cache — hits complete immediately, misses enqueue a bus request
/// and stall the PE; (2) each bus grants one transaction; (3) every cache
/// snoops the granted transaction in the same cycle; (4) a cache holding
/// the target in the `L` state interrupts a foreign bus read, the cycle
/// carries that cache's bus write instead, and the read retries next
/// cycle.
///
/// Construct machines with [`MachineBuilder`](crate::MachineBuilder).
///
/// # Accounting shortcuts (documented deviations)
///
/// * Eviction write-backs complete synchronously with the miss that
///   caused them, but are charged one bus-write transaction on the
///   evicted address's bus — "miss plus write-back costs two
///   transactions" without modelling a two-transaction controller queue.
/// * A transaction rejected by a memory lock (a write, or a locked read,
///   hitting a word locked by another PE's Test-and-Set) consumes its
///   bus cycle and is requeued through arbitration — "any bus writes
///   before the unlock will fail" (Section 3).
pub struct Machine {
    protocol: Arc<dyn Protocol>,
    routing: Routing,
    memory: Memory,
    caches: Vec<TagStore<LineState>>,
    processors: Vec<Box<dyn Processor + Send>>,
    statuses: Vec<PeStatus>,
    last_results: Vec<Option<OpResult>>,
    queues: Vec<BusQueue>,
    arbiters: Vec<Box<dyn Arbiter>>,
    traffic: MultiBusStats,
    cache_stats: Vec<CacheStats>,
    stats: MachineStats,
    cycle: u64,
    /// Bus cycles each transaction occupies (1 = the paper's model;
    /// larger values model memory slower than the caches).
    transaction_cycles: u64,
    /// Per-bus cycle number until which the bus is still occupied.
    bus_free_at: Vec<u64>,
    trace: Trace,
    /// Structured protocol-level event subscribers (the conformance
    /// oracle). Notified synchronously; cannot mutate the machine.
    observers: Vec<Box<dyn Observer>>,
    /// The geometry shared by every cache, for block-base lookups in
    /// the sharer index.
    geometry: decache_cache::Geometry,
    /// Sharer index: for each block base address, the set of caches
    /// currently holding the block (in any state, including `Invalid` —
    /// an invalid line still snoops, e.g. to capture an RWB broadcast).
    /// Maintained at the two presence-mutation points, install and
    /// evict; lets `find_supplier` and `dispatch_snoop` visit only
    /// actual holders instead of scanning all `n` caches.
    sharers: AddrPeIndex,
    /// Pending-read index: for each address, the set of PEs stalled in
    /// [`Pending::Read`] on it — `satisfy_pending_reads` consults this
    /// instead of scanning every PE per bus transaction.
    pending_readers: AddrPeIndex,
    /// The set of PEs in [`PeStatus::Idle`], so `issue_phase` skips
    /// stalled and finished PEs without touching them.
    idle: PeMask,
    /// Running count of PEs in [`PeStatus::Idle`].
    idle_count: usize,
    /// Running count of PEs in [`PeStatus::Done`].
    done_count: usize,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("protocol", &self.protocol.name())
            .field("pes", &self.processors.len())
            .field("buses", &self.routing.bus_count())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl Machine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        protocol: Arc<dyn Protocol>,
        routing: Routing,
        memory: Memory,
        caches: Vec<TagStore<LineState>>,
        processors: Vec<Box<dyn Processor + Send>>,
        arbiters: Vec<Box<dyn Arbiter>>,
        transaction_cycles: u64,
        trace: Trace,
    ) -> Self {
        let n = processors.len();
        let buses = routing.bus_count();
        assert_eq!(arbiters.len(), buses, "one arbiter per bus");
        assert_eq!(caches.len(), n, "one cache per processor");
        assert!(
            transaction_cycles >= 1,
            "transactions take at least one cycle"
        );
        let geometry = caches
            .first()
            .map(TagStore::geometry)
            .unwrap_or_else(|| decache_cache::Geometry::direct_mapped(1));
        assert!(
            caches.iter().all(|c| c.geometry() == geometry),
            "the sharer index requires all caches to share one geometry"
        );
        let mut sharers = AddrPeIndex::new(n);
        for (pe, cache) in caches.iter().enumerate() {
            for entry in cache.iter() {
                sharers.add(entry.addr.index(), pe);
            }
        }
        let mut idle = PeMask::new(n);
        for pe in 0..n {
            idle.set(pe);
        }
        Machine {
            protocol,
            routing,
            geometry,
            sharers,
            pending_readers: AddrPeIndex::new(n),
            memory,
            caches,
            statuses: vec![PeStatus::Idle; n],
            last_results: vec![None; n],
            processors,
            queues: (0..buses).map(|_| BusQueue::new()).collect(),
            arbiters,
            traffic: MultiBusStats::new(buses),
            cache_stats: vec![CacheStats::new(); n],
            stats: MachineStats::default(),
            cycle: 0,
            transaction_cycles,
            bus_free_at: vec![0; buses],
            trace,
            observers: Vec::new(),
            idle,
            idle_count: n,
            done_count: 0,
        }
    }

    // ------------------------------------------------------------------
    // Observation API
    // ------------------------------------------------------------------

    /// The number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.processors.len()
    }

    /// The coherence protocol in use.
    pub fn protocol(&self) -> &dyn Protocol {
        self.protocol.as_ref()
    }

    /// The bus routing (single, interleaved, or hierarchical).
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// The number of shared buses.
    pub fn bus_count(&self) -> usize {
        self.routing.bus_count()
    }

    /// The shared memory (read-only view; use [`Memory::peek`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable memory access for fault injection and recovery (the
    /// Section 8 reliability extension in the `recovery` module).
    pub(crate) fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Mutable cache access for fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub(crate) fn cache_mut(&mut self, pe: usize) -> &mut TagStore<LineState> {
        &mut self.caches[pe]
    }

    /// The number of bus cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Returns `true` once every processor has finished and no bus
    /// requests remain.
    pub fn is_done(&self) -> bool {
        self.done_count == self.pe_count() && self.queues.iter().all(BusQueue::is_empty)
    }

    /// Returns `true` when no PE is stalled and no bus requests remain —
    /// every processor is either finished or idle (e.g. a conducted
    /// scenario program returning [`Poll::Wait`](crate::Poll::Wait)).
    pub fn is_quiescent(&self) -> bool {
        self.idle_count + self.done_count == self.pe_count()
            && self.queues.iter().all(BusQueue::is_empty)
    }

    /// Steps at least once, then until the machine is quiescent; returns
    /// `true` on quiescence within `max_cycles`.
    ///
    /// Used by conducted scenarios: after handing an operation to a
    /// waiting processor, run until it (and everything it perturbed)
    /// settles.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            self.step();
            if self.is_quiescent() {
                return true;
            }
        }
        false
    }

    /// The cache line (state and value) PE `pe` holds for `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn cache_line(&self, pe: usize, addr: Addr) -> Option<(LineState, Word)> {
        self.caches[pe].get(addr).map(|e| (e.state, e.data))
    }

    /// Snapshot of every cache's view of `addr` plus the memory value —
    /// one row of the synchronization figures.
    pub fn snapshot(&self, addr: Addr) -> Snapshot {
        let lines = (0..self.pe_count())
            .map(|pe| self.cache_line(pe, addr))
            .collect();
        Snapshot::new(lines, self.memory.peek(addr).unwrap_or(Word::ZERO))
    }

    /// Aggregate bus traffic across all buses.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.total()
    }

    /// Per-bus traffic (Figure 7-1 accounting).
    pub fn traffic_per_bus(&self) -> &MultiBusStats {
        &self.traffic
    }

    /// Per-PE cache statistics.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn cache_stats(&self, pe: usize) -> CacheStats {
        self.cache_stats[pe]
    }

    /// Cache statistics summed over all PEs.
    pub fn total_cache_stats(&self) -> CacheStats {
        self.cache_stats
            .iter()
            .copied()
            .fold(CacheStats::new(), |acc, s| acc + s)
    }

    /// Machine-level counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Resets every statistic (bus traffic, cache hit/miss counters,
    /// machine counters) without touching the architectural state —
    /// caches, memory, and in-flight work are preserved. Use to discard
    /// warm-up transients before a measurement window.
    pub fn reset_stats(&mut self) {
        self.traffic = MultiBusStats::new(self.routing.bus_count());
        for s in &mut self.cache_stats {
            *s = CacheStats::new();
        }
        self.stats = MachineStats::default();
    }

    /// The event trace (empty unless enabled at build time).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Attaches a structured protocol-event [`Observer`] (e.g. the
    /// conformance oracle of `decache-verify`). Observers see every
    /// protocol-level step from this point on; attaching one cannot
    /// change any simulated behaviour or statistic.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    fn notify(&mut self, observation: Observation) {
        if self.observers.is_empty() {
            return;
        }
        let cycle = self.cycle;
        for observer in &mut self.observers {
            observer.observe(cycle, &observation);
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Advances the machine by one bus cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.issue_phase();
        self.bus_phase();
    }

    /// Runs until done or `max_cycles` elapse; returns `true` if done.
    pub fn run(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_done() {
                return true;
            }
            self.step();
        }
        self.is_done()
    }

    /// Runs to completion and returns the elapsed cycle count.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not done after `max_cycles` — programs
    /// that spin forever (e.g. a lock never released) exceed any budget.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> u64 {
        assert!(
            self.run(max_cycles),
            "machine not done after {max_cycles} cycles (protocol {}, {} PEs)",
            self.protocol.name(),
            self.pe_count()
        );
        self.cycle
    }

    fn record(&mut self, kind: TraceKind, pe: Option<PeId>, text: impl FnOnce() -> String) {
        if self.trace.is_enabled() {
            self.trace.record(TraceEvent {
                cycle: self.cycle,
                kind,
                pe,
                text: text(),
            });
        }
    }

    fn line_state(&self, pe: usize, addr: Addr) -> Option<LineState> {
        self.caches[pe].get(addr).map(|e| e.state)
    }

    /// The sharer-index key for `addr`: its block base address.
    fn block_base(&self, addr: Addr) -> u64 {
        self.geometry.block_base(addr).index()
    }

    /// The single gate for PE status transitions: keeps the idle set,
    /// the done/idle counters, and the pending-read index in sync.
    fn set_status(&mut self, pe: usize, status: PeStatus) {
        match std::mem::replace(&mut self.statuses[pe], status) {
            PeStatus::Idle => {
                self.idle.clear(pe);
                self.idle_count -= 1;
            }
            PeStatus::Done => self.done_count -= 1,
            PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                self.pending_readers.remove(addr.index(), pe);
            }
            PeStatus::WaitBus(_) => {}
        }
        match status {
            PeStatus::Idle => {
                self.idle.set(pe);
                self.idle_count += 1;
            }
            PeStatus::Done => self.done_count += 1,
            PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                self.pending_readers.add(addr.index(), pe);
            }
            PeStatus::WaitBus(_) => {}
        }
    }

    // ----- issue phase ------------------------------------------------

    fn issue_phase(&mut self) {
        // Cursor over the idle bitset: handling one PE never changes
        // another PE's status, so this visits exactly the PEs the old
        // full scan found idle, in the same ascending order.
        let mut cursor = 0;
        while let Some(pe) = self.idle.next_from(cursor) {
            cursor = pe + 1;
            let last = self.last_results[pe].take();
            match self.processors[pe].next_op(last.as_ref()) {
                crate::Poll::Halt => self.set_status(pe, PeStatus::Done),
                crate::Poll::Wait => {}
                crate::Poll::Op(op) => self.start_op(pe, op),
            }
        }
    }

    fn start_op(&mut self, pe: usize, op: MemOp) {
        use crate::Access;
        let pe_id = PeId::new(pe as u16);
        self.record(TraceKind::Issue, Some(pe_id), || op.to_string());
        match op.access {
            Access::Read(addr) => match self.protocol.cpu_read(self.line_state(pe, addr)) {
                CpuOutcome::Hit { next } => {
                    let entry = self.caches[pe]
                        .get_mut(addr)
                        .expect("hit requires a held line");
                    entry.state = next;
                    let value = entry.data;
                    self.cache_stats[pe].record(AccessKind::Read, op.class, true);
                    self.last_results[pe] = Some(OpResult::Read(value));
                    self.record(TraceKind::Hit, Some(pe_id), || {
                        format!("read {addr} = {value}")
                    });
                    self.notify(Observation::CpuAccess {
                        pe,
                        addr,
                        write: false,
                        decision: CpuDecision::Hit,
                    });
                }
                CpuOutcome::Miss { intent } => {
                    debug_assert_eq!(intent, BusIntent::Read, "read misses issue bus reads");
                    self.cache_stats[pe].record(AccessKind::Read, op.class, false);
                    self.enqueue(pe_id, addr, BusOp::Read);
                    self.set_status(
                        pe,
                        PeStatus::WaitBus(Pending::Read {
                            addr,
                            class: op.class,
                        }),
                    );
                    self.notify(Observation::CpuAccess {
                        pe,
                        addr,
                        write: false,
                        decision: CpuDecision::Miss(intent),
                    });
                }
            },
            Access::Write(addr, value) => {
                match self.protocol.cpu_write(self.line_state(pe, addr)) {
                    CpuOutcome::Hit { next } => {
                        let entry = self.caches[pe]
                            .get_mut(addr)
                            .expect("hit requires a held line");
                        entry.state = next;
                        entry.data = value;
                        self.cache_stats[pe].record(AccessKind::Write, op.class, true);
                        self.last_results[pe] = Some(OpResult::Write);
                        self.record(TraceKind::Hit, Some(pe_id), || {
                            format!("write {addr} <- {value}")
                        });
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: true,
                            decision: CpuDecision::Hit,
                        });
                    }
                    CpuOutcome::Miss { intent } => {
                        let bus_op = match intent {
                            BusIntent::Write => BusOp::Write(value),
                            BusIntent::Invalidate => BusOp::Invalidate,
                            BusIntent::Read => {
                                unreachable!("{} asked to read on a write", self.protocol.name())
                            }
                        };
                        self.cache_stats[pe].record(AccessKind::Write, op.class, false);
                        self.enqueue(pe_id, addr, bus_op);
                        self.set_status(
                            pe,
                            PeStatus::WaitBus(Pending::Write {
                                addr,
                                value,
                                class: op.class,
                            }),
                        );
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: true,
                            decision: CpuDecision::Miss(intent),
                        });
                    }
                }
            }
            Access::TestAndSet(addr, set_to) => {
                // "The initial read-with-lock does not reference the value
                // in the cache" — always a bus operation.
                self.enqueue(pe_id, addr, BusOp::ReadWithLock);
                self.set_status(
                    pe,
                    PeStatus::WaitBus(Pending::LockedRead {
                        addr,
                        set_to,
                        class: op.class,
                    }),
                );
                self.notify(Observation::LockedReadIssued { pe, addr });
            }
        }
    }

    fn enqueue(&mut self, pe: PeId, addr: Addr, op: BusOp) {
        let bus = self.routing.bus_of(addr);
        assert!(
            self.routing.is_attached(pe.index(), bus, self.pe_count()),
            "{pe} is not attached to the bus serving {addr} \
             (workload violates the hierarchy's region discipline)"
        );
        self.queues[bus]
            .request(BusTransaction::new(pe, addr, op))
            .expect("a stalled PE cannot issue a second request");
    }

    // ----- bus phase ----------------------------------------------------

    fn bus_phase(&mut self) {
        for bus in 0..self.routing.bus_count() {
            // A multi-cycle transaction holds the bus; nothing else is
            // granted until it completes ("the bus cycle time is no
            // faster than the cache cycle time" generalized to slow
            // memory).
            if self.cycle < self.bus_free_at[bus] {
                self.traffic.bus_mut(bus).record_occupied();
                continue;
            }
            match self.queues[bus].grant(self.arbiters[bus].as_mut()) {
                None => self.traffic.bus_mut(bus).record_idle(),
                Some(tx) => {
                    self.record(TraceKind::Grant, Some(tx.initiator), || tx.to_string());
                    if self.transaction_cycles > 1 {
                        self.bus_free_at[bus] = self.cycle + self.transaction_cycles;
                    }
                    self.execute(bus, tx);
                }
            }
        }
    }

    fn execute(&mut self, bus: usize, tx: BusTransaction) {
        match tx.op {
            BusOp::Read | BusOp::ReadWithLock => self.execute_read(bus, tx),
            BusOp::Write(v) => self.execute_write(bus, tx, v, false),
            BusOp::WriteWithUnlock(v) => self.execute_write(bus, tx, v, true),
            BusOp::Invalidate => self.execute_invalidate(bus, tx),
        }
    }

    /// Finds the cache that must interrupt a read of `addr` and supply
    /// its data.
    ///
    /// The initiator's own cache is included: a plain read never reaches
    /// the bus while its own line owns the latest value (that is a cache
    /// hit), but a *locked* read bypasses the cache ("the initial
    /// read-with-lock does not reference the value in the cache"), so an
    /// issuer that holds the line Local must first flush its value to
    /// memory exactly like any other supplier — otherwise the locked
    /// read would observe stale memory.
    fn find_supplier(&self, addr: Addr) -> Option<usize> {
        let bus = self.routing.bus_of(addr);
        let base = self.block_base(addr);
        let mut cursor = 0;
        while let Some(pe) = self.sharers.next_from(base, cursor) {
            cursor = pe + 1;
            if self.routing.is_attached(pe, bus, self.pe_count())
                && self
                    .line_state(pe, addr)
                    .is_some_and(|s| self.protocol.supplies_on_snoop_read(s))
            {
                return Some(pe);
            }
        }
        None
    }

    fn execute_read(&mut self, bus: usize, tx: BusTransaction) {
        let addr = tx.addr;
        let locked = matches!(tx.op, BusOp::ReadWithLock);

        // Interrupt path: an owning cache kills the read and substitutes
        // its own bus write; the read retries next cycle (Section 3).
        if let Some(supplier) = self.find_supplier(addr) {
            let data = self.caches[supplier]
                .get(addr)
                .expect("supplier holds the line")
                .data;
            self.memory
                .write(addr, data)
                .expect("supplier write-back in range");
            let supplier_id = PeId::new(supplier as u16);
            self.record(TraceKind::Abort, Some(supplier_id), || {
                format!("interrupt {} and supply {addr} = {data}", tx.op)
            });
            {
                let entry = self.caches[supplier]
                    .get_mut(addr)
                    .expect("supplier holds the line");
                entry.state = self.protocol.after_supply(entry.state);
            }
            let t = self.traffic.bus_mut(bus);
            t.record_abort();
            t.record(BusOpKind::Write);
            // The substituted write is snooped like any bus write.
            self.dispatch_snoop(
                addr,
                SnoopEvent::Write(data),
                Some(tx.initiator.index()),
                Some(supplier),
            );
            self.notify(Observation::Supplied {
                supplier,
                initiator: tx.initiator.index(),
                addr,
            });
            self.traffic.bus_mut(bus).record_retry();
            self.queues[bus].push_retry(tx);
            self.satisfy_pending_reads(addr);
            return;
        }

        // Memory supplies the value.
        let value = if locked {
            match self.memory.read_with_lock(addr, tx.initiator) {
                Ok(v) => v,
                Err(MemError::Locked { .. }) => {
                    // The word is locked mid-Test-and-Set by another PE:
                    // the attempt burns the cycle and rearbitrates.
                    self.stats.lock_rejections += 1;
                    self.traffic.bus_mut(bus).record(BusOpKind::ReadWithLock);
                    self.record(TraceKind::LockRejected, Some(tx.initiator), || {
                        tx.to_string()
                    });
                    self.queues[bus].request(tx).expect("requeue after grant");
                    return;
                }
                Err(e) => panic!("locked read failed: {e}"),
            }
        } else {
            self.memory.read(addr).expect("bus read in range")
        };
        self.traffic.bus_mut(bus).record(if locked {
            BusOpKind::ReadWithLock
        } else {
            BusOpKind::Read
        });

        // Broadcast: every other holder snoops the returned value.
        let event = if locked {
            SnoopEvent::LockedRead(value)
        } else {
            SnoopEvent::Read(value)
        };
        self.dispatch_snoop(addr, event, Some(tx.initiator.index()), None);

        // The initiator's own line fills.
        let pe = tx.initiator.index();
        let prior = self.line_state(pe, addr);
        let next = if locked {
            self.protocol.own_locked_read_complete(prior)
        } else {
            self.protocol.own_complete(prior, BusIntent::Read)
        };
        self.install(pe, addr, next, value);
        self.notify(Observation::ReadCompleted { pe, addr, locked });

        // Deliver to the stalled PE.
        match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Read { class: _, .. }) => {
                self.finish(pe, OpResult::Read(value));
            }
            PeStatus::WaitBus(Pending::LockedRead { set_to, class, .. }) => {
                if value.is_zero() {
                    // Test succeeded: proceed to the unlocking write.
                    self.enqueue(tx.initiator, addr, BusOp::WriteWithUnlock(set_to));
                    self.set_status(
                        pe,
                        PeStatus::WaitBus(Pending::UnlockWrite {
                            addr,
                            old: value,
                            class,
                        }),
                    );
                } else {
                    // Failed Test-and-Set: "treated as a non-cachable
                    // read" — release the lock without writing.
                    self.memory
                        .release_lock(addr, tx.initiator)
                        .expect("failing TS holds the lock it releases");
                    self.stats.ts_failures += 1;
                    self.cache_stats[pe].record(AccessKind::Read, class, false);
                    self.finish(
                        pe,
                        OpResult::TestAndSet {
                            old: value,
                            acquired: false,
                        },
                    );
                }
            }
            other => panic!("read completion for PE in state {other:?}"),
        }

        self.satisfy_pending_reads(addr);
    }

    fn execute_write(&mut self, bus: usize, tx: BusTransaction, value: Word, unlock: bool) {
        let addr = tx.addr;
        if unlock {
            self.memory
                .write_with_unlock(addr, value, tx.initiator)
                .expect("unlocking write holds the lock");
            self.traffic.bus_mut(bus).record(BusOpKind::WriteWithUnlock);
        } else {
            match self.memory.write_checked(addr, value, tx.initiator) {
                Ok(()) => self.traffic.bus_mut(bus).record(BusOpKind::Write),
                Err(MemError::Locked { .. }) => {
                    // "Any bus writes before the unlock will fail."
                    self.stats.lock_rejections += 1;
                    self.traffic.bus_mut(bus).record(BusOpKind::Write);
                    self.record(TraceKind::LockRejected, Some(tx.initiator), || {
                        tx.to_string()
                    });
                    self.queues[bus].request(tx).expect("requeue after grant");
                    return;
                }
                Err(e) => panic!("bus write failed: {e}"),
            }
        }

        let event = if unlock {
            SnoopEvent::UnlockWrite(value)
        } else {
            SnoopEvent::Write(value)
        };
        self.dispatch_snoop(addr, event, Some(tx.initiator.index()), None);

        let pe = tx.initiator.index();
        let prior = self.line_state(pe, addr);
        let next = if unlock {
            self.protocol.own_unlock_write_complete(prior)
        } else {
            self.protocol.own_complete(prior, BusIntent::Write)
        };
        self.install(pe, addr, next, value);
        self.notify(Observation::WriteCompleted { pe, addr, unlock });

        match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Write { .. }) => {
                self.finish(pe, OpResult::Write);
            }
            PeStatus::WaitBus(Pending::UnlockWrite { old, class, .. }) => {
                self.stats.ts_successes += 1;
                self.cache_stats[pe].record(AccessKind::Write, class, false);
                self.finish(
                    pe,
                    OpResult::TestAndSet {
                        old,
                        acquired: true,
                    },
                );
            }
            other => panic!("write completion for PE in state {other:?}"),
        }

        self.satisfy_pending_reads(addr);
    }

    fn execute_invalidate(&mut self, bus: usize, tx: BusTransaction) {
        let addr = tx.addr;
        self.traffic.bus_mut(bus).record(BusOpKind::Invalidate);
        self.dispatch_snoop(
            addr,
            SnoopEvent::Invalidate,
            Some(tx.initiator.index()),
            None,
        );

        let pe = tx.initiator.index();
        let prior = self.line_state(pe, addr);
        let next = self.protocol.own_complete(prior, BusIntent::Invalidate);
        // The invalidate carries no bus payload; the CPU value travels on
        // the pending record.
        let value = match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Write { value, .. }) => value,
            ref other => panic!("invalidate completion for PE in state {other:?}"),
        };
        self.install(pe, addr, next, value);
        self.notify(Observation::InvalidateCompleted { pe, addr });

        self.finish(pe, OpResult::Write);
    }

    fn finish(&mut self, pe: usize, result: OpResult) {
        self.record(TraceKind::Complete, Some(PeId::new(pe as u16)), || {
            result.to_string()
        });
        self.set_status(pe, PeStatus::Idle);
        self.last_results[pe] = Some(result);
    }

    /// Dispatches a snoop event to every cache holding `addr` except the
    /// two skip slots: the transaction's `initiator`, and the `supplier`
    /// on the abort path. Consults the sharer index, so only actual
    /// holders are visited.
    fn dispatch_snoop(
        &mut self,
        addr: Addr,
        event: SnoopEvent,
        initiator: Option<usize>,
        supplier: Option<usize>,
    ) {
        let bus = self.routing.bus_of(addr);
        let n = self.pe_count();
        let base = self.block_base(addr);
        let mut cursor = 0;
        while let Some(pe) = self.sharers.next_from(base, cursor) {
            cursor = pe + 1;
            if Some(pe) == initiator
                || Some(pe) == supplier
                || !self.routing.is_attached(pe, bus, n)
            {
                continue;
            }
            if let Some(entry) = self.caches[pe].get_mut(addr) {
                let out = self.protocol.snoop(entry.state, event);
                entry.state = out.next;
                if out.capture {
                    if let Some(word) = event.word() {
                        entry.data = word;
                    }
                }
            }
        }
    }

    /// Installs a line after a completed bus transaction, handling the
    /// eviction write-back shortcut. Keeps the sharer index in sync:
    /// the installed block gains this cache as a holder, a displaced
    /// block loses it.
    fn install(&mut self, pe: usize, addr: Addr, state: LineState, data: Word) {
        let evicted = self.caches[pe].insert(addr, state, data);
        self.sharers.add(self.block_base(addr), pe);
        if let Some(evicted) = evicted {
            self.sharers.remove(evicted.addr.index(), pe);
            let writeback = self.protocol.writeback_on_evict(evicted.state);
            if writeback {
                self.memory
                    .write(evicted.addr, evicted.data)
                    .expect("write-back in range");
                let bus = self.routing.bus_of(evicted.addr);
                self.traffic.bus_mut(bus).record(BusOpKind::Write);
                self.stats.writebacks += 1;
                self.record(TraceKind::Writeback, Some(PeId::new(pe as u16)), || {
                    format!("write back {} = {}", evicted.addr, evicted.data)
                });
            }
            self.notify(Observation::Evicted {
                pe,
                addr: evicted.addr,
                writeback,
            });
        }
    }

    /// Completes stalled plain reads whose cache line just became
    /// readable by snooping a broadcast, cancelling their bus requests.
    /// Consults the pending-read index, so only PEs actually waiting on
    /// `addr` are visited.
    fn satisfy_pending_reads(&mut self, addr: Addr) {
        // Cursor over the pending-read bitset: `finish` clears the
        // visited PE's own bit and nothing else, so the scan is exact.
        let mut cursor = 0;
        while let Some(pe) = self.pending_readers.next_from(addr.index(), cursor) {
            cursor = pe + 1;
            debug_assert!(matches!(
                self.statuses[pe],
                PeStatus::WaitBus(Pending::Read { addr: want, .. }) if want == addr
            ));
            let Some(entry) = self.caches[pe].get(addr) else {
                continue;
            };
            if !entry.state.is_readable_locally() {
                continue;
            }
            let value = entry.data;
            let bus = self.routing.bus_of(addr);
            self.queues[bus].cancel(PeId::new(pe as u16));
            self.stats.broadcast_satisfied += 1;
            self.record(
                TraceKind::BroadcastSatisfied,
                Some(PeId::new(pe as u16)),
                || format!("read {addr} = {value} from broadcast"),
            );
            self.notify(Observation::BroadcastSatisfied { pe, addr });
            self.finish(pe, OpResult::Read(value));
        }
    }

    /// Asserts every fast-path index against a brute-force recompute
    /// from the architectural state: the sharer index must equal the
    /// per-address holder sets scanned from all tag stores, the
    /// pending-read index must equal the set of PEs stalled in
    /// [`Pending::Read`], and the idle/done bookkeeping must match the
    /// status vector. Test instrumentation — O(caches + index size).
    ///
    /// # Panics
    ///
    /// Panics (with the offending PE/address) if any index diverges.
    #[doc(hidden)]
    pub fn assert_fast_path_invariants(&self) {
        let mut cached_lines = 0;
        for (pe, cache) in self.caches.iter().enumerate() {
            assert_eq!(cache.len(), cache.iter().count(), "cached len for P{pe}");
            for entry in cache.iter() {
                cached_lines += 1;
                assert!(
                    self.sharers.contains(entry.addr.index(), pe),
                    "sharer index misses P{pe} holding {}",
                    entry.addr
                );
            }
        }
        assert_eq!(
            self.sharers.total(),
            cached_lines,
            "sharer index has stale holder bits"
        );

        let mut pending_reads = 0;
        let mut idle = 0;
        let mut done = 0;
        for (pe, status) in self.statuses.iter().enumerate() {
            match *status {
                PeStatus::Idle => {
                    idle += 1;
                    assert_eq!(self.idle.next_from(pe), Some(pe), "idle set misses P{pe}");
                }
                PeStatus::Done => done += 1,
                PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                    pending_reads += 1;
                    assert!(
                        self.pending_readers.contains(addr.index(), pe),
                        "pending-read index misses P{pe} waiting on {addr}"
                    );
                }
                PeStatus::WaitBus(_) => {}
            }
        }
        assert_eq!(self.idle_count, idle, "idle_count drifted");
        assert_eq!(self.idle.total(), idle, "idle set has stale bits");
        assert_eq!(self.done_count, done, "done_count drifted");
        assert_eq!(
            self.pending_readers.total(),
            pending_reads,
            "pending-read index has stale bits"
        );
    }
}
