//! The cycle-based shared-bus MIMD machine.

use crate::fault::{FaultEngine, FaultKind, FaultPlan, RecoverySource};
use crate::outcome::StallSite;
use crate::sharers::{AddrPeIndex, PeMask};
use crate::status::{PeStatus, Pending};
use crate::telemetry::TelemetryState;
use crate::trace::{CpuDecision, Observation, Observer};
use crate::{
    FailStopPolicy, FaultStats, HaltReason, MachineStats, MemOp, OpResult, PeBlame, Processor,
    RecoveryPolicy, RunOutcome, Snapshot, StallVerdict, Trace, TraceEvent, TraceKind,
};
use decache_bus::{
    Arbiter, BusOp, BusOpKind, BusQueue, BusTransaction, MultiBusStats, Routing, ServiceDiscipline,
    TrafficStats,
};
use decache_cache::{AccessKind, CacheStats, TagStore};
use decache_core::{AnyProtocol, BusIntent, CpuOutcome, LineState, Protocol, SnoopEvent};
use decache_mem::{Addr, AddrRange, MemError, Memory, PeId, Word};
use std::collections::HashMap;

// Declared as a child of this module (with the file kept beside it)
// so the checkpoint/restore code can reach the machine's private
// fields without widening their visibility.
#[path = "checkpoint.rs"]
pub(crate) mod checkpoint;

/// The simulated machine: `n` processing elements with private snooping
/// caches, one or more shared buses, and a common memory.
///
/// The temporal contract follows the paper's assumptions (Section 2):
/// each bus cycle, (1) every idle PE may issue one memory operation to
/// its cache — hits complete immediately, misses enqueue a bus request
/// and stall the PE; (2) each bus grants one transaction; (3) every cache
/// snoops the granted transaction in the same cycle; (4) a cache holding
/// the target in the `L` state interrupts a foreign bus read, the cycle
/// carries that cache's bus write instead, and the read retries next
/// cycle.
///
/// Construct machines with [`MachineBuilder`](crate::MachineBuilder).
///
/// # Accounting shortcuts (documented deviations)
///
/// * Eviction write-backs complete synchronously with the miss that
///   caused them, but are charged one bus-write transaction on the
///   evicted address's bus — "miss plus write-back costs two
///   transactions" without modelling a two-transaction controller queue.
/// * A transaction rejected by a memory lock (a write, or a locked read,
///   hitting a word locked by another PE's Test-and-Set) consumes its
///   bus cycle and is requeued through arbitration — "any bus writes
///   before the unlock will fail" (Section 3).
pub struct Machine {
    protocol: AnyProtocol,
    routing: Routing,
    memory: Memory,
    caches: Vec<TagStore<LineState>>,
    processors: Vec<Box<dyn Processor + Send>>,
    statuses: Vec<PeStatus>,
    last_results: Vec<Option<OpResult>>,
    queues: Vec<BusQueue>,
    arbiters: Vec<Box<dyn Arbiter>>,
    traffic: MultiBusStats,
    cache_stats: Vec<CacheStats>,
    stats: MachineStats,
    cycle: u64,
    /// Bus cycles each transaction occupies (1 = the paper's model;
    /// larger values model memory slower than the caches).
    transaction_cycles: u64,
    /// How each bus schedules grants over time (all buses share one
    /// discipline; the per-queue copy drives the queues themselves).
    discipline: ServiceDiscipline,
    /// Per-bus cycle number until which the bus is still occupied.
    /// Never set in split-transaction mode: the bus is released between
    /// the address and data phases.
    bus_free_at: Vec<u64>,
    trace: Trace,
    /// Structured protocol-level event subscribers (the conformance
    /// oracle). Notified synchronously; cannot mutate the machine.
    observers: Vec<Box<dyn Observer>>,
    /// The geometry shared by every cache, for block-base lookups in
    /// the sharer index.
    geometry: decache_cache::Geometry,
    /// Sharer index: for each block base address, the set of caches
    /// currently holding the block (in any state, including `Invalid` —
    /// an invalid line still snoops, e.g. to capture an RWB broadcast).
    /// Maintained at the two presence-mutation points, install and
    /// evict; lets `find_supplier` and `dispatch_snoop` visit only
    /// actual holders instead of scanning all `n` caches.
    sharers: AddrPeIndex,
    /// Supplier index: for each block base address, the set of caches
    /// whose line state answers a snooped bus read with its own data
    /// ([`Protocol::supplies_on_snoop_read`]) — the owned states, so at
    /// most one bit per address under coherent operation. Kept in sync
    /// by [`Machine::sync_owner`] at every state transition; lets
    /// `find_supplier` jump straight to the owning cache instead of
    /// probing every sharer.
    owners: AddrPeIndex,
    /// Pending-read index: for each address, the set of PEs stalled in
    /// [`Pending::Read`] on it — `satisfy_pending_reads` consults this
    /// instead of scanning every PE per bus transaction.
    pending_readers: AddrPeIndex,
    /// The set of PEs in [`PeStatus::Idle`], so `issue_phase` skips
    /// stalled and finished PEs without touching them.
    idle: PeMask,
    /// Running count of PEs in [`PeStatus::Idle`].
    idle_count: usize,
    /// Running count of PEs in [`PeStatus::Done`] or
    /// [`PeStatus::Failed`] — a fail-stopped PE counts as finished, so
    /// the survivors' completion is unchanged.
    done_count: usize,
    /// The live fault-injection engine, `None` without a
    /// [`FaultPlan`]. A machine with no plan performs zero fault work
    /// per cycle beyond this `None` check.
    faults: Option<FaultEngine>,
    /// In-loop repair policy for memory words whose parity check fails
    /// on a bus read.
    recovery_policy: RecoveryPolicy,
    /// What to do with a fail-stopped PE's owned lines.
    fail_stop_policy: FailStopPolicy,
    /// Fault-subsystem counters, separate from [`MachineStats`].
    fault_stats: FaultStats,
    /// Injection cycle of each outstanding (undetected) fault, keyed by
    /// `(Some(pe), addr)` for cache faults and `(None, addr)` for
    /// memory faults — the detection-latency ledger.
    fault_clock: HashMap<(Option<usize>, u64), u64>,
    /// The livelock/deadlock progress window in cycles — absolute
    /// ([`crate::DEFAULT_PROGRESS_WINDOW`] unless configured), so a
    /// stuck machine's verdict does not depend on the run budget.
    progress_window: u64,
    /// Per-PE cycle of the most recent completed operation, for the
    /// livelock/deadlock verdict in [`Machine::run_outcome`].
    last_progress: Vec<u64>,
    /// Per-PE address of the most recently issued operation, for
    /// budget-exhaustion blame.
    last_addr: Vec<Option<Addr>>,
    /// The cycle-attribution recorder, `None` unless telemetry was
    /// enabled at build time. Mirrors the `faults` gating contract: a
    /// machine without one performs zero telemetry work per hook beyond
    /// this `None` check, and recording never changes any simulated
    /// statistic.
    telemetry: Option<Box<TelemetryState>>,
    /// `true` when broadcast snoops may take the batched bitset path:
    /// a single bus (every PE attached, no routing filter) and
    /// direct-mapped caches (the slot for an address is forced, so
    /// sharer-index membership proves the tag matches without a probe).
    /// Computed once from the machine shape; the per-dispatch check
    /// additionally requires [`Machine::faults_possible`] to be false.
    batch_snoop: bool,
    /// Worker count for the sharded issue phase; `<= 1` keeps the
    /// sequential scan unconditionally.
    step_threads: usize,
    /// Per-PE issue decisions computed by the sharded issue phase's
    /// workers against pre-cycle state, committed by the main thread in
    /// ascending PE order. Empty unless `step_threads > 1`.
    issue_decisions: Vec<IssueDecision>,
    /// Cycles whose issue phase ran sharded — an engine-path odometer
    /// (not a simulated statistic), so equivalence tests can prove the
    /// shard gate actually engaged.
    sharded_cycles: u64,
}

/// The caches a snoop dispatch must skip: the transaction's `initiator`
/// (its own line is completed by `install`, not by snooping), and on
/// the interrupt path the `supplier` (its line just transitioned via
/// `after_supply`). Named fields so call sites cannot transpose the two
/// — `dispatch_snoop` once took two positional `Option<usize>`s.
#[derive(Debug, Clone, Copy, Default)]
struct SkipPes {
    initiator: Option<usize>,
    supplier: Option<usize>,
}

impl SkipPes {
    /// Skip only the transaction's initiator.
    fn initiator(pe: usize) -> Self {
        SkipPes {
            initiator: Some(pe),
            supplier: None,
        }
    }

    /// Additionally skip the supplying cache (interrupt path).
    fn with_supplier(mut self, pe: usize) -> Self {
        self.supplier = Some(pe);
        self
    }

    /// Whether `pe` is one of the skip slots.
    fn skips(&self, pe: usize) -> bool {
        self.initiator == Some(pe) || self.supplier == Some(pe)
    }
}

/// One PE's issue-phase outcome, computed by a sharded worker against
/// the immutable pre-cycle state and committed on the main thread. Only
/// effects that touch *shared* machine state travel here — per-PE
/// effects (cache update, hit statistics, `last_results`) are applied
/// in place by the worker, exactly as the sequential path does.
#[derive(Debug, Clone, Copy, Default)]
enum IssueDecision {
    /// Nothing to commit: the PE was not idle, returned `Poll::Wait`,
    /// or completed a hit with no supplier-index delta.
    #[default]
    None,
    /// The program halted.
    Halt,
    /// A cache hit whose state transition may move the supplier index.
    Hit {
        addr: Addr,
        was: LineState,
        now: LineState,
    },
    /// A miss or Test-and-Set: enqueue `op` on `addr`'s bus and stall
    /// on `pending`.
    Enqueue {
        addr: Addr,
        op: BusOp,
        pending: Pending,
    },
}

/// Sharding engages only when at least this many PEs are idle: a
/// `std::thread::scope` spawn costs microseconds per worker per cycle,
/// so small issue scans are faster sequentially.
const SHARD_MIN_IDLE: usize = 128;

/// Which halt condition a [`Machine::run_loop`] call waits for.
#[derive(Clone, Copy)]
enum RunUntil {
    /// Every PE finished and all queues drained ([`Machine::is_done`]).
    Done,
    /// Every PE finished *or idle* and all queues drained
    /// ([`Machine::is_quiescent`]).
    Quiescent,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("protocol", &self.protocol.name())
            .field("pes", &self.processors.len())
            .field("buses", &self.routing.bus_count())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl Machine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        protocol: AnyProtocol,
        routing: Routing,
        memory: Memory,
        caches: Vec<TagStore<LineState>>,
        processors: Vec<Box<dyn Processor + Send>>,
        arbiters: Vec<Box<dyn Arbiter>>,
        transaction_cycles: u64,
        discipline: ServiceDiscipline,
        trace: Trace,
        fault_plan: Option<FaultPlan>,
        recovery_policy: RecoveryPolicy,
        fail_stop_policy: FailStopPolicy,
        telemetry: bool,
        progress_window: u64,
        step_threads: usize,
    ) -> Self {
        let n = processors.len();
        let buses = routing.bus_count();
        assert_eq!(arbiters.len(), buses, "one arbiter per bus");
        assert_eq!(caches.len(), n, "one cache per processor");
        assert!(
            transaction_cycles >= 1,
            "transactions take at least one cycle"
        );
        let geometry = caches.first().map_or_else(
            || decache_cache::Geometry::direct_mapped(1),
            TagStore::geometry,
        );
        assert!(
            caches.iter().all(|c| c.geometry() == geometry),
            "the sharer index requires all caches to share one geometry"
        );
        // Preallocate the per-address indexes for the whole memory
        // range: one zeroed block at build time instead of repeated
        // grow-and-copy while the run's footprint expands.
        let mut sharers = AddrPeIndex::with_addr_capacity(n, memory.size());
        let mut owners = AddrPeIndex::with_addr_capacity(n, memory.size());
        for (pe, cache) in caches.iter().enumerate() {
            for entry in cache.iter() {
                sharers.add(entry.addr.index(), pe);
                if protocol.supplies_on_snoop_read(entry.state) {
                    owners.add(entry.addr.index(), pe);
                }
            }
        }
        let mut idle = PeMask::new(n);
        for pe in 0..n {
            idle.set(pe);
        }
        Machine {
            protocol,
            routing,
            geometry,
            sharers,
            owners,
            pending_readers: AddrPeIndex::with_addr_capacity(n, memory.size()),
            memory,
            caches,
            statuses: vec![PeStatus::Idle; n],
            last_results: vec![None; n],
            processors,
            queues: (0..buses)
                .map(|_| BusQueue::with_discipline(discipline))
                .collect(),
            arbiters,
            traffic: MultiBusStats::new(buses),
            cache_stats: vec![CacheStats::new(); n],
            stats: MachineStats::default(),
            cycle: 0,
            transaction_cycles,
            discipline,
            bus_free_at: vec![0; buses],
            trace,
            observers: Vec::new(),
            idle,
            idle_count: n,
            done_count: 0,
            faults: fault_plan.map(|plan| FaultEngine::new(plan, buses)),
            recovery_policy,
            fail_stop_policy,
            fault_stats: FaultStats::default(),
            fault_clock: HashMap::new(),
            progress_window,
            last_progress: vec![0; n],
            last_addr: vec![None; n],
            telemetry: telemetry.then(|| Box::new(TelemetryState::new(n))),
            batch_snoop: routing.bus_count() == 1 && geometry.ways() == 1,
            step_threads,
            issue_decisions: if step_threads > 1 {
                vec![IssueDecision::None; n]
            } else {
                Vec::new()
            },
            sharded_cycles: 0,
        }
    }

    // ------------------------------------------------------------------
    // Observation API
    // ------------------------------------------------------------------

    /// The number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.processors.len()
    }

    /// The coherence protocol in use.
    pub fn protocol(&self) -> &dyn Protocol {
        &self.protocol
    }

    /// The bus routing (single, interleaved, or hierarchical).
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// The number of shared buses.
    pub fn bus_count(&self) -> usize {
        self.routing.bus_count()
    }

    /// The bus service discipline (shared by every bus).
    pub fn discipline(&self) -> ServiceDiscipline {
        self.discipline
    }

    /// The shared memory (read-only view; use [`Memory::peek`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable memory access for fault injection and recovery (the
    /// Section 8 reliability extension in the `recovery` module).
    pub(crate) fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Mutable cache access for fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub(crate) fn cache_mut(&mut self, pe: usize) -> &mut TagStore<LineState> {
        &mut self.caches[pe]
    }

    /// The number of bus cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Returns `true` once every processor has finished and no bus
    /// requests remain.
    pub fn is_done(&self) -> bool {
        self.done_count == self.pe_count() && self.queues.iter().all(BusQueue::is_empty)
    }

    /// Returns `true` when no PE is stalled and no bus requests remain —
    /// every processor is either finished or idle (e.g. a conducted
    /// scenario program returning [`Poll::Wait`](crate::Poll::Wait)).
    pub fn is_quiescent(&self) -> bool {
        self.idle_count + self.done_count == self.pe_count()
            && self.queues.iter().all(BusQueue::is_empty)
    }

    /// Runs until the machine is quiescent or `max_cycles` elapse;
    /// returns `true` on quiescence.
    ///
    /// Same check-then-step loop as [`Machine::run`]: the condition is
    /// tested *before* each step, so a machine that is already
    /// quiescent returns `true` without consuming any budget —
    /// `run_until_quiescent(0)` answers "is it quiescent right now?".
    /// Conducted scenarios that have just queued an operation should
    /// use [`Machine::settle`] instead, which forces the first step.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        self.run_loop(max_cycles, false, RunUntil::Quiescent)
    }

    /// Steps at least once, then runs until the machine is quiescent;
    /// returns `true` on quiescence within `max_cycles`.
    ///
    /// The forced first step is the point: a conducted scenario that
    /// has just handed an operation to a waiting processor *looks*
    /// quiescent until that processor gets a cycle to poll its queue,
    /// so the check-then-step [`Machine::run_until_quiescent`] would
    /// return `true` with the operation still pending. `settle(0)`
    /// cannot take its required step and therefore returns `false`.
    pub fn settle(&mut self, max_cycles: u64) -> bool {
        self.run_loop(max_cycles, true, RunUntil::Quiescent)
    }

    /// The cache line (state and value) PE `pe` holds for `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn cache_line(&self, pe: usize, addr: Addr) -> Option<(LineState, Word)> {
        self.caches[pe].get(addr).map(|e| (e.state, e.data))
    }

    /// Snapshot of every cache's view of `addr` plus the memory value —
    /// one row of the synchronization figures.
    pub fn snapshot(&self, addr: Addr) -> Snapshot {
        let lines = (0..self.pe_count())
            .map(|pe| self.cache_line(pe, addr))
            .collect();
        Snapshot::new(lines, self.memory.peek(addr).unwrap_or(Word::ZERO))
    }

    /// Aggregate bus traffic across all buses.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.total()
    }

    /// Per-bus traffic (Figure 7-1 accounting).
    pub fn traffic_per_bus(&self) -> &MultiBusStats {
        &self.traffic
    }

    /// Per-PE cache statistics.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn cache_stats(&self, pe: usize) -> CacheStats {
        self.cache_stats[pe]
    }

    /// Cache statistics summed over all PEs.
    pub fn total_cache_stats(&self) -> CacheStats {
        self.cache_stats
            .iter()
            .copied()
            .fold(CacheStats::new(), |acc, s| acc + s)
    }

    /// Machine-level counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Fault-injection and recovery counters (all zero without faults).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// `true` if the machine records cycle-attribution histograms
    /// ([`MachineBuilder::telemetry`](crate::MachineBuilder::telemetry)).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The cycle-attribution histograms, `None` unless telemetry was
    /// enabled at build time.
    pub fn histograms(&self) -> Option<&crate::CycleHistograms> {
        self.telemetry.as_deref().map(|t| &t.hist)
    }

    /// The in-loop memory repair policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery_policy
    }

    /// The fail-stop drain/forfeit policy.
    pub fn fail_stop_policy(&self) -> FailStopPolicy {
        self.fail_stop_policy
    }

    /// `true` if PE `pe` has fail-stopped.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn pe_failed(&self, pe: usize) -> bool {
        matches!(self.statuses[pe], PeStatus::Failed)
    }

    /// The number of PEs that have not fail-stopped.
    pub fn live_pes(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| !matches!(s, PeStatus::Failed))
            .count()
    }

    /// Resets every statistic (bus traffic, cache hit/miss counters,
    /// machine counters) without touching the architectural state —
    /// caches, memory, and in-flight work are preserved. Use to discard
    /// warm-up transients before a measurement window.
    pub fn reset_stats(&mut self) {
        self.traffic = MultiBusStats::new(self.routing.bus_count());
        for s in &mut self.cache_stats {
            *s = CacheStats::new();
        }
        self.stats = MachineStats::default();
        if let Some(t) = self.telemetry.as_deref_mut() {
            // The histograms reset with the other statistics; the
            // start-cycle scratchpads survive, so an operation in
            // flight across the reset still records its full latency.
            t.hist = crate::CycleHistograms::default();
        }
    }

    /// The event trace (empty unless enabled at build time).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Attaches a structured protocol-event [`Observer`] (e.g. the
    /// conformance oracle of `decache-verify`). Observers see every
    /// protocol-level step from this point on; attaching one cannot
    /// change any simulated behaviour or statistic.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    fn notify(&mut self, observation: Observation) {
        if self.observers.is_empty() {
            return;
        }
        let cycle = self.cycle;
        for observer in &mut self.observers {
            observer.observe(cycle, &observation);
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Advances the machine by one bus cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.fault_phase();
        self.issue_phase();
        self.bus_phase();
    }

    /// Runs until done or `max_cycles` elapse; returns `true` if done.
    ///
    /// Check-then-step: the completion test runs *before* each step,
    /// so `run(0)` on a finished machine returns `true` without
    /// advancing the clock. Internally this drives the wake schedule
    /// ([`Machine::next_event_cycle`]): cycles on which provably
    /// nothing can happen are skipped in bulk rather than simulated
    /// one by one, with bit-identical statistics.
    pub fn run(&mut self, max_cycles: u64) -> bool {
        self.run_loop(max_cycles, false, RunUntil::Done)
    }

    /// The shared budgeted runner behind [`Machine::run`],
    /// [`Machine::run_until_quiescent`], and [`Machine::settle`]. One
    /// loop, one semantics: check the halt condition, then advance —
    /// except when `step_first` demands an unconditional first step
    /// (and the budget allows one).
    fn run_loop(&mut self, max_cycles: u64, step_first: bool, until: RunUntil) -> bool {
        let end = self.cycle.saturating_add(max_cycles);
        let mut force_step = step_first;
        loop {
            if !force_step && self.halted(until) {
                return true;
            }
            if self.cycle >= end {
                return !force_step && self.halted(until);
            }
            force_step = false;
            self.advance(end);
        }
    }

    fn halted(&self, until: RunUntil) -> bool {
        match until {
            RunUntil::Done => self.is_done(),
            RunUntil::Quiescent => self.is_quiescent(),
        }
    }

    /// Advances toward `end`: steps the next cycle on which something
    /// can happen, first skipping any dead cycles before it, or skips
    /// straight to `end` when no event is due within the budget.
    fn advance(&mut self, end: u64) {
        match self.next_event_cycle() {
            Some(at) if at <= end => {
                if at > self.cycle + 1 {
                    self.skip_dead_cycles(at - 1);
                }
                self.step();
            }
            _ => self.skip_dead_cycles(end),
        }
    }

    /// The wake schedule: the earliest future cycle on which stepping
    /// could do any work, or `None` if the machine is inert forever.
    /// A cycle is *dead* — provably a no-op beyond advancing the clock
    /// and per-bus occupied/idle counters — when no PE is idle (a
    /// stalled, done, or failed PE issues nothing), the fault engine
    /// has no per-cycle rates and no scheduled event due, and every
    /// bus is either empty or still held by a multi-cycle transaction.
    /// [`Machine::skip_dead_cycles`] retires such cycles in bulk.
    #[doc(hidden)]
    pub fn next_event_cycle(&self) -> Option<u64> {
        let next = self.cycle + 1;
        // An idle PE may issue next cycle; nothing is skippable.
        if self.idle_count > 0 {
            return Some(next);
        }
        let mut soonest: Option<u64> = None;
        if let Some(engine) = &self.faults {
            // Per-cycle Bernoulli rates draw the RNG every cycle; no
            // cycle is dead while rates are live.
            if engine.plan.has_rates() {
                return Some(next);
            }
            if let Some(at) = engine.next_scheduled() {
                soonest = Some(at.max(next));
            }
        }
        for bus in 0..self.queues.len() {
            if self.queues[bus].has_grantable() {
                // A queued transaction is granted the cycle the bus
                // frees up (lose-grant faults only retime the retry,
                // which still goes through the same wake point).
                let grant_at = next.max(self.bus_free_at[bus]);
                soonest = Some(soonest.map_or(grant_at, |s| s.min(grant_at)));
            }
            if let Some(ready) = self.queues[bus].next_ready() {
                // A split-transaction data phase wakes the bus when the
                // memory access completes; the cycles in between are
                // genuinely idle.
                let at = next.max(ready);
                soonest = Some(soonest.map_or(at, |s| s.min(at)));
            }
        }
        soonest
    }

    /// Bulk-retires the dead cycles up to and including `to`, charging
    /// each bus the same occupied/idle counts a step-by-step run would
    /// have recorded: occupied while a multi-cycle transaction holds
    /// it, idle otherwise (a dead cycle's queue is empty by
    /// definition, so an unheld bus grants nothing).
    fn skip_dead_cycles(&mut self, to: u64) {
        let span = to.saturating_sub(self.cycle);
        if span == 0 {
            return;
        }
        let first = self.cycle + 1;
        for bus in 0..self.queues.len() {
            let occupied = self.bus_free_at[bus].saturating_sub(first).min(span);
            let t = self.traffic.bus_mut(bus);
            t.record_occupied_n(occupied);
            t.record_idle_n(span - occupied);
        }
        self.cycle = to;
    }

    /// Runs until done or `max_cycles` elapse and reports a structured
    /// [`RunOutcome`]: [`HaltReason::Completed`], or
    /// [`HaltReason::BudgetExhausted`] with per-PE blame — which PEs
    /// are stuck on which addresses, and whether each stall looks like
    /// livelock (still completing operations) or deadlock (no progress
    /// in the machine's absolute progress window — see
    /// [`MachineBuilder::progress_window`](crate::MachineBuilder::progress_window)).
    /// Blame is ordered most-starved first.
    pub fn run_outcome(&mut self, max_cycles: u64) -> RunOutcome {
        let window = self.progress_window;
        if self.run(max_cycles) {
            return RunOutcome {
                cycles: self.cycle,
                progress_window: window,
                reason: HaltReason::Completed,
            };
        }
        let mut blame: Vec<PeBlame> = Vec::new();
        for pe in 0..self.pe_count() {
            let site = match self.statuses[pe] {
                PeStatus::Done | PeStatus::Failed => continue,
                // An idle PE is not stuck on an address; report its
                // last *completed* access, clearly labelled as such.
                PeStatus::Idle => StallSite::Issuing {
                    last: self.last_addr[pe],
                },
                PeStatus::WaitBus(pending) => StallSite::Blocked {
                    addr: pending.addr(),
                },
            };
            let last_progress = self.last_progress[pe];
            let verdict = if self.cycle.saturating_sub(last_progress) > window {
                StallVerdict::Deadlock
            } else {
                StallVerdict::Livelock
            };
            blame.push(PeBlame {
                pe,
                site,
                last_progress,
                verdict,
            });
        }
        blame.sort_by_key(|b| b.last_progress);
        RunOutcome {
            cycles: self.cycle,
            progress_window: window,
            reason: HaltReason::BudgetExhausted { blame },
        }
    }

    /// Runs to completion and returns the elapsed cycle count.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not done after `max_cycles` — programs
    /// that spin forever (e.g. a lock never released) exceed any
    /// budget. The panic message renders the [`RunOutcome`] blame; use
    /// [`Machine::run_outcome`] to handle exhaustion without
    /// panicking.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> u64 {
        let outcome = self.run_outcome(max_cycles);
        assert!(
            outcome.is_complete(),
            "machine not done after {max_cycles} cycles (protocol {}, {} PEs): {outcome}",
            self.protocol.name(),
            self.pe_count()
        );
        outcome.cycles
    }

    fn record(&mut self, kind: TraceKind, pe: Option<PeId>, text: impl FnOnce() -> String) {
        if self.trace.is_enabled() {
            self.trace.record(TraceEvent {
                cycle: self.cycle,
                kind,
                pe,
                text: text(),
            });
        }
    }

    fn line_state(&self, pe: usize, addr: Addr) -> Option<LineState> {
        self.caches[pe].state_of(addr)
    }

    /// The sharer-index key for `addr`: its block base address.
    fn block_base(&self, addr: Addr) -> u64 {
        self.geometry.block_base(addr).index()
    }

    /// Re-syncs the supplier index after PE `pe`'s line for `addr`
    /// transitioned from `was` to `now` (`None` = no line held). Every
    /// state mutation site must call this — the brute-force recompute in
    /// [`Machine::assert_fast_path_invariants`] checks they all do.
    #[inline]
    fn sync_owner(
        &mut self,
        pe: usize,
        addr: Addr,
        was: Option<LineState>,
        now: Option<LineState>,
    ) {
        let owned = was.is_some_and(|s| self.protocol.supplies_on_snoop_read(s));
        let owns = now.is_some_and(|s| self.protocol.supplies_on_snoop_read(s));
        if owned != owns {
            let base = self.block_base(addr);
            if owns {
                self.owners.add(base, pe);
            } else {
                self.owners.remove(base, pe);
            }
        }
    }

    /// The single gate for PE status transitions: keeps the idle set,
    /// the done/idle counters, and the pending-read index in sync.
    fn set_status(&mut self, pe: usize, status: PeStatus) {
        match std::mem::replace(&mut self.statuses[pe], status) {
            PeStatus::Idle => {
                self.idle.clear(pe);
                self.idle_count -= 1;
            }
            PeStatus::Done | PeStatus::Failed => self.done_count -= 1,
            PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                self.pending_readers.remove(addr.index(), pe);
            }
            PeStatus::WaitBus(_) => {}
        }
        match status {
            PeStatus::Idle => {
                self.idle.set(pe);
                self.idle_count += 1;
            }
            PeStatus::Done | PeStatus::Failed => self.done_count += 1,
            PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                self.pending_readers.add(addr.index(), pe);
            }
            PeStatus::WaitBus(_) => {}
        }
    }

    // ----- fault phase ------------------------------------------------

    /// `true` if fault work can exist at all: a plan is attached, or a
    /// manual `corrupt_*` call left an undetected fault outstanding.
    /// Every per-access parity check is gated on this, so a fault-free
    /// machine pays two branch tests per cycle and nothing per access.
    fn faults_possible(&self) -> bool {
        self.faults.is_some() || !self.fault_clock.is_empty()
    }

    // ----- telemetry hooks --------------------------------------------
    //
    // Each hook is a single `Option` test when telemetry is disabled and
    // touches only the recorder when enabled — never a simulated
    // statistic, so enabling telemetry cannot perturb any golden.

    /// Re-arms PE `pe`'s arbitration-wait clock: its transaction just
    /// entered a bus queue (first request, lock-rejection requeue, or
    /// abort/loss retry).
    fn mark_enqueued(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.enqueued_at[pe] = cycle;
        }
    }

    /// PE `pe`'s transaction was granted: samples the arbitration wait.
    fn note_grant(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.hist.bus_acquire_wait.record(cycle - t.enqueued_at[pe]);
        }
    }

    /// A transaction accessed memory: samples its bus occupancy.
    fn note_memory_service(&mut self) {
        let cycles = self.transaction_cycles;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.hist.memory_service.record(cycles);
        }
    }

    /// Starts PE `pe`'s read-miss fill clock.
    fn mark_read_miss(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.read_since[pe] = cycle;
        }
    }

    /// PE `pe`'s pending read filled (own bus read or snooped
    /// broadcast): samples the miss-to-fill latency.
    fn note_read_fill(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.hist.read_fill.record(cycle - t.read_since[pe]);
        }
    }

    /// Starts PE `pe`'s Test-and-Set spin clock at the locked read.
    fn mark_ts_issued(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.ts_since[pe] = cycle;
        }
    }

    /// PE `pe`'s Test-and-Set resolved (acquired or failed): samples the
    /// lock-spin length.
    fn note_ts_resolved(&mut self, pe: usize) {
        let cycle = self.cycle;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.hist.ts_spin.record(cycle - t.ts_since[pe]);
        }
    }

    /// Draws this cycle's rate-driven faults, pops the scheduled ones,
    /// and applies them — always in the fixed order memory flip, cache
    /// flip, bus loss, fail stop, so a given seed yields one exact
    /// fault history.
    fn fault_phase(&mut self) {
        if self.faults.is_none() {
            return;
        }
        let n = self.pe_count();
        let faults = {
            let statuses = &self.statuses;
            let caches = &self.caches;
            let memory_size = self.memory.size();
            let engine = self.faults.as_mut().expect("checked above");
            engine.lose_grant.iter_mut().for_each(|b| *b = false);
            let mut faults = engine.due(self.cycle);
            if engine.plan.has_rates() {
                let live = || {
                    (0..n)
                        .filter(|&pe| !matches!(statuses[pe], PeStatus::Failed))
                        .collect::<Vec<usize>>()
                };
                if engine.plan.memory_flip_rate > 0.0
                    && engine.rng.gen_bool(engine.plan.memory_flip_rate)
                {
                    let region = engine
                        .plan
                        .region
                        .unwrap_or_else(|| AddrRange::with_len(Addr::new(0), memory_size));
                    let addr = region.nth(engine.rng.gen_range(0..region.len()));
                    faults.push(FaultKind::MemoryFlip { addr });
                }
                if engine.plan.cache_flip_rate > 0.0
                    && engine.rng.gen_bool(engine.plan.cache_flip_rate)
                {
                    let live = live();
                    if !live.is_empty() {
                        let pe = *engine.rng.choose(&live);
                        if !caches[pe].is_empty() {
                            let k = engine.rng.gen_range(0..caches[pe].len());
                            let addr = caches[pe].iter().nth(k).expect("k < len").addr;
                            faults.push(FaultKind::CacheFlip { pe, addr });
                        }
                    }
                }
                if engine.plan.bus_loss_rate > 0.0 && engine.rng.gen_bool(engine.plan.bus_loss_rate)
                {
                    let bus = engine.rng.gen_range(0..engine.lose_grant.len());
                    faults.push(FaultKind::BusLoss { bus });
                }
                if engine.plan.fail_stop_rate > 0.0
                    && engine.rng.gen_bool(engine.plan.fail_stop_rate)
                {
                    let live = live();
                    // Never kill the last live PE: a machine with no
                    // processors cannot degrade gracefully.
                    if live.len() > 1 {
                        let pe = *engine.rng.choose(&live);
                        faults.push(FaultKind::FailStop { pe });
                    }
                }
            }
            faults
        };
        for fault in faults {
            self.apply_fault(fault);
        }
    }

    fn apply_fault(&mut self, fault: FaultKind) {
        match fault {
            FaultKind::MemoryFlip { addr } => self.inject_memory_flip(addr),
            FaultKind::CacheFlip { pe, addr } => self.inject_cache_flip(pe, addr),
            FaultKind::BusLoss { bus } => {
                // Marked here, consumed (and counted) by `bus_phase` if
                // the bus actually grants something this cycle.
                let engine = self.faults.as_mut().expect("bus loss requires an engine");
                if bus < engine.lose_grant.len() {
                    engine.lose_grant[bus] = true;
                }
            }
            FaultKind::FailStop { pe } => {
                if pe < self.pe_count() && !self.pe_failed(pe) {
                    self.fail_stop(pe);
                }
            }
        }
    }

    fn inject_memory_flip(&mut self, addr: Addr) {
        let Ok(cur) = self.memory.peek(addr) else {
            // Only a mis-scheduled flip can point outside memory;
            // rate-driven draws stay in range by construction.
            debug_assert!(false, "scheduled memory flip at {addr} out of range");
            return;
        };
        let bit = self
            .faults
            .as_mut()
            .expect("memory flip requires an engine")
            .rng
            .gen_range(0..64u64);
        let garbage = Word::new(cur.value() ^ (1 << bit));
        self.memory
            .poke_corrupt(addr, garbage)
            .expect("peeked address is in range");
        self.fault_stats.memory_faults_injected += 1;
        self.fault_clock.insert((None, addr.index()), self.cycle);
        let fault = FaultKind::MemoryFlip { addr };
        self.record(TraceKind::FaultInject, None, || fault.to_string());
        self.notify(Observation::FaultInjected { fault });
    }

    fn inject_cache_flip(&mut self, pe: usize, addr: Addr) {
        if pe >= self.pe_count() || self.pe_failed(pe) {
            debug_assert!(pe < self.pe_count(), "scheduled cache flip in absent P{pe}");
            return;
        }
        let bit = self
            .faults
            .as_mut()
            .expect("cache flip requires an engine")
            .rng
            .gen_range(0..64u64);
        let base = self.geometry.block_base(addr);
        // `iter_mut`, not `get_mut`: a fault must not touch the LRU
        // clock, or injection would perturb replacement decisions.
        let Some(entry) = self.caches[pe].iter_mut().find(|e| e.addr == base) else {
            // A scheduled flip of a line that is not cached when its
            // cycle comes is a no-op (and not counted).
            return;
        };
        *entry.data = Word::new(entry.data.value() ^ (1 << bit));
        *entry.parity_ok = false;
        self.fault_stats.cache_faults_injected += 1;
        self.fault_clock
            .insert((Some(pe), base.index()), self.cycle);
        let fault = FaultKind::CacheFlip { pe, addr: base };
        self.record(TraceKind::FaultInject, Some(PeId::new(pe as u16)), || {
            fault.to_string()
        });
        self.notify(Observation::FaultInjected { fault });
    }

    /// Opens a detection-latency ledger entry for a fault injected at
    /// the current cycle — the manual `corrupt_*` entry points share
    /// this ledger with the rate-driven engine.
    pub(crate) fn clock_fault(&mut self, pe: Option<usize>, addr: Addr) {
        let idx = match pe {
            Some(_) => self.block_base(addr),
            None => addr.index(),
        };
        self.fault_clock.insert((pe, idx), self.cycle);
    }

    /// PE `pe`'s full tag-store entry for `addr`, parity bit included.
    pub(crate) fn cache_entry(
        &self,
        pe: usize,
        addr: Addr,
    ) -> Option<decache_cache::Entry<LineState>> {
        self.caches[pe].get(addr)
    }

    /// Closes the detection-latency ledger entry for the fault at index
    /// `idx` (in PE `pe`'s cache if `Some`, else in memory).
    fn take_latency(&mut self, pe: Option<usize>, idx: u64) {
        if let Some(at) = self.fault_clock.remove(&(pe, idx)) {
            self.fault_stats.recovery_latency_total += self.cycle.saturating_sub(at);
            self.fault_stats.recovery_latency_samples += 1;
        }
    }

    /// The parity check a CPU access or a supply attempt performs on PE
    /// `pe`'s copy of `addr`: a corrupted line is detected, invalidated,
    /// and re-fetched from the coherent image by the access that found
    /// it. If the line owned the latest value, that write is lost (the
    /// refetch observes older memory). Returns `true` if a line was
    /// scrubbed.
    fn scrub_if_corrupt(&mut self, pe: usize, addr: Addr) -> bool {
        match self.caches[pe].get(addr) {
            Some(entry) if !entry.parity_ok => {}
            _ => return false,
        }
        let removed = self.caches[pe].remove(addr).expect("entry just seen");
        self.sharers.remove(removed.addr.index(), pe);
        self.sync_owner(pe, removed.addr, Some(removed.state), None);
        let lost_write = removed.state.owns_latest();
        self.fault_stats.cache_faults_detected += 1;
        self.fault_stats.cache_refetches += 1;
        if lost_write {
            self.fault_stats.lost_writes += 1;
        }
        self.take_latency(Some(pe), removed.addr.index());
        let pe_id = PeId::new(pe as u16);
        let base = removed.addr;
        self.record(TraceKind::FaultDetect, Some(pe_id), || {
            format!("cache parity failed for {base}")
        });
        self.record(TraceKind::Recover, Some(pe_id), || {
            format!(
                "scrub corrupted line {base}{}",
                if lost_write { " (write lost)" } else { "" }
            )
        });
        self.notify(Observation::FaultDetected {
            pe: Some(pe),
            addr: base,
        });
        self.notify(Observation::LineScrubbed {
            pe,
            addr: base,
            lost_write,
        });
        true
    }

    /// A bus read found bad parity in the memory word it is about to
    /// serve: count the detection and apply the in-loop
    /// [`RecoveryPolicy`] — repair from a replica when one is usable,
    /// else adopt the corrupt value (re-marking its parity good so each
    /// fault is counted exactly once).
    fn detect_and_repair_memory(&mut self, addr: Addr) {
        self.fault_stats.memory_faults_detected += 1;
        self.take_latency(None, addr.index());
        self.record(TraceKind::FaultDetect, None, || {
            format!("memory parity failed at {addr}")
        });
        self.notify(Observation::FaultDetected { pe: None, addr });
        let allow_majority = match self.recovery_policy {
            RecoveryPolicy::Off => {
                self.fault_stats.memory_recoveries_failed += 1;
                self.record(TraceKind::Recover, None, || {
                    format!("recovery off: corrupt value at {addr} adopted")
                });
                self.memory.clear_corrupt(addr);
                return;
            }
            RecoveryPolicy::OwnerOnly => false,
            RecoveryPolicy::Majority => true,
        };
        self.fault_stats.replicas_at_recovery += self.replica_count(addr) as u64;
        match self.recover_value(addr, allow_majority) {
            Some((value, source)) => {
                self.memory
                    .repair(addr, value)
                    .expect("detected address is in range");
                match source {
                    RecoverySource::Owner { .. } => self.fault_stats.memory_recoveries_owner += 1,
                    RecoverySource::Majority { .. } => {
                        self.fault_stats.memory_recoveries_majority += 1;
                    }
                }
                self.record(TraceKind::Recover, None, || match source {
                    RecoverySource::Owner { pe } => {
                        format!("repair {addr} = {value} from owner P{pe}")
                    }
                    RecoverySource::Majority { votes } => {
                        format!("repair {addr} = {value} by majority of {votes}")
                    }
                });
                self.notify(Observation::MemoryRepaired { addr, source });
            }
            None => {
                self.fault_stats.memory_recoveries_failed += 1;
                self.record(TraceKind::Recover, None, || {
                    format!("no usable replica: corrupt value at {addr} adopted")
                });
                self.memory.clear_corrupt(addr);
            }
        }
    }

    /// Fail-stops PE `pe` now: cancels its queued bus requests,
    /// force-releases its memory locks, drains or forfeits its owned
    /// lines per the [`FailStopPolicy`], empties its cache, and marks
    /// it [`PeStatus::Failed`] — the surviving PEs run to completion.
    /// Returns `false` if the PE had already fail-stopped.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= self.pe_count()`.
    pub fn fail_stop(&mut self, pe: usize) -> bool {
        assert!(
            pe < self.pe_count(),
            "fail-stop of P{pe} on a {}-PE machine",
            self.pe_count()
        );
        if self.pe_failed(pe) {
            return false;
        }
        let pe_id = PeId::new(pe as u16);
        for queue in &mut self.queues {
            if queue.cancel(pe_id) {
                // An in-flight split transaction dies between its
                // address and data phases; the address phase already
                // happened, so count the transaction that never will.
                self.stats.split_cancels += 1;
            }
        }
        let released = self.memory.release_locks_held_by(pe_id);
        self.fault_stats.forced_unlocks += released.len() as u64;
        let lines: Vec<(Addr, LineState, Word, bool)> = self.caches[pe]
            .iter()
            .map(|e| (e.addr, e.state, e.data, e.parity_ok))
            .collect();
        let mut drained = 0u32;
        let mut lost = 0u32;
        for (addr, state, data, parity_ok) in lines {
            self.sharers.remove(addr.index(), pe);
            self.sync_owner(pe, addr, Some(state), None);
            self.fault_clock.remove(&(Some(pe), addr.index()));
            if !state.owns_latest() {
                continue;
            }
            match self.fail_stop_policy {
                FailStopPolicy::Drain => {
                    if parity_ok {
                        // The recovery controller flushes the owned
                        // value; the write-back is charged one bus
                        // write like an eviction.
                        self.memory
                            .write(addr, data)
                            .expect("drain write-back in range");
                        let bus = self.routing.bus_of(addr);
                        self.traffic.bus_mut(bus).record(BusOpKind::Write);
                        self.note_memory_service();
                        drained += 1;
                    } else {
                        lost += 1;
                    }
                }
                FailStopPolicy::Forfeit => {
                    // Only writes memory does not already hold are
                    // lost: an F-state line's first write reached the
                    // bus, so memory may well be current.
                    let held = self.memory.peek(addr).expect("cached address in range");
                    if !parity_ok || held != data {
                        lost += 1;
                    }
                }
            }
        }
        self.caches[pe].clear();
        self.fault_stats.pe_fail_stops += 1;
        self.fault_stats.drained_lines += u64::from(drained);
        self.fault_stats.lost_writes += u64::from(lost);
        self.set_status(pe, PeStatus::Failed);
        self.last_results[pe] = None;
        self.record(TraceKind::FailStop, Some(pe_id), || {
            format!(
                "fail-stop: {drained} lines drained, {lost} writes lost, {} locks released",
                released.len()
            )
        });
        self.notify(Observation::PeFailStopped {
            pe,
            drained,
            lost_writes: lost,
        });
        true
    }

    /// The replica-recovery core shared by the in-loop policy and the
    /// manual [`Machine::recover_memory`](crate::RecoveryError) API: an
    /// owning (`L`/`D`) good-parity copy is authoritative by the
    /// Section 4 lemma; otherwise, if allowed, the majority value among
    /// good-parity readable replicas wins (value ties break toward the
    /// larger word, deterministically).
    pub(crate) fn recover_value(
        &self,
        addr: Addr,
        allow_majority: bool,
    ) -> Option<(Word, RecoverySource)> {
        for (pe, cache) in self.caches.iter().enumerate() {
            if let Some(e) = cache.get(addr) {
                if e.parity_ok && e.state.owns_latest() {
                    return Some((e.data, RecoverySource::Owner { pe }));
                }
            }
        }
        if !allow_majority {
            return None;
        }
        let mut votes: HashMap<Word, usize> = HashMap::new();
        for cache in &self.caches {
            if let Some(e) = cache.get(addr) {
                if e.parity_ok && e.state.is_readable_locally() {
                    *votes.entry(e.data).or_insert(0) += 1;
                }
            }
        }
        votes
            .into_iter()
            .max_by_key(|&(value, count)| (count, value.value()))
            .map(|(value, count)| (value, RecoverySource::Majority { votes: count }))
    }

    // ----- issue phase ------------------------------------------------

    fn issue_phase(&mut self) {
        // The sharded path computes the same decisions from the same
        // pre-cycle state and commits them in the same ascending PE
        // order, so it is byte-identical — but it cannot interleave
        // trace records, observer notifications, or parity scrubs the
        // way the sequential loop does, so any of those falls back.
        if self.step_threads > 1
            && self.idle_count >= SHARD_MIN_IDLE
            && self.observers.is_empty()
            && !self.trace.is_enabled()
            && !self.faults_possible()
        {
            self.issue_phase_sharded();
            return;
        }
        // Cursor over the idle bitset: handling one PE never changes
        // another PE's status, so this visits exactly the PEs the old
        // full scan found idle, in the same ascending order.
        let mut cursor = 0;
        while let Some(pe) = self.idle.next_from(cursor) {
            cursor = pe + 1;
            let last = self.last_results[pe].take();
            match self.processors[pe].next_op(last.as_ref()) {
                crate::Poll::Halt => self.set_status(pe, PeStatus::Done),
                crate::Poll::Wait => {}
                crate::Poll::Op(op) => self.start_op(pe, op),
            }
        }
    }

    /// The issue phase fanned over a `std::thread::scope` worker pool.
    /// Workers own disjoint PE ranges — each PE's decision reads only
    /// its own processor, cache, and per-PE scratch, all sliced out of
    /// `self` by range — and record shared-state effects as
    /// [`IssueDecision`]s. The main thread then commits decisions (bus
    /// enqueues, status changes, supplier-index deltas) in ascending PE
    /// order, so arbitration, RNG draws, and statistics are
    /// byte-identical to the sequential scan.
    fn issue_phase_sharded(&mut self) {
        self.sharded_cycles += 1;
        let n = self.processors.len();
        if self.issue_decisions.len() != n {
            self.issue_decisions = vec![IssueDecision::None; n];
        }
        let chunk = n.div_ceil(self.step_threads).max(1);
        let cycle = self.cycle;
        let Machine {
            processors,
            last_results,
            caches,
            cache_stats,
            last_progress,
            last_addr,
            issue_decisions,
            idle,
            protocol,
            ..
        } = self;
        let idle: &PeMask = idle;
        let protocol: &AnyProtocol = protocol;
        let probes = std::thread::scope(|scope| {
            let shards = processors
                .chunks_mut(chunk)
                .zip(last_results.chunks_mut(chunk))
                .zip(caches.chunks_mut(chunk))
                .zip(cache_stats.chunks_mut(chunk))
                .zip(last_progress.chunks_mut(chunk))
                .zip(last_addr.chunks_mut(chunk))
                .zip(issue_decisions.chunks_mut(chunk));
            let handles: Vec<_> = shards
                .enumerate()
                .map(|(w, shard)| {
                    let ((((((procs, results), caches), stats), progress), addrs), decisions) =
                        shard;
                    let start = w * chunk;
                    scope.spawn(move || {
                        issue_worker(
                            start, procs, results, caches, stats, progress, addrs, decisions, idle,
                            protocol, cycle,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("issue worker panicked"))
                .sum::<u64>()
        });
        self.stats.tag_probes += probes;
        for pe in 0..n {
            match std::mem::take(&mut self.issue_decisions[pe]) {
                IssueDecision::None => {}
                IssueDecision::Halt => self.set_status(pe, PeStatus::Done),
                IssueDecision::Hit { addr, was, now } => {
                    self.sync_owner(pe, addr, Some(was), Some(now));
                }
                IssueDecision::Enqueue { addr, op, pending } => {
                    // Mirror `start_op`'s exact effect order on shared
                    // state: telemetry mark, then enqueue (which itself
                    // re-arms the arbitration clock), then the status
                    // gate.
                    match pending {
                        Pending::Read { .. } => self.mark_read_miss(pe),
                        Pending::LockedRead { .. } => self.mark_ts_issued(pe),
                        _ => {}
                    }
                    self.enqueue(PeId::new(pe as u16), addr, op);
                    self.set_status(pe, PeStatus::WaitBus(pending));
                }
            }
        }
    }

    fn start_op(&mut self, pe: usize, op: MemOp) {
        use crate::Access;
        let pe_id = PeId::new(pe as u16);
        self.last_addr[pe] = Some(op.access.addr());
        if self.faults_possible() {
            // The access checks the line's parity before the protocol
            // decides hit or miss: a corrupted line is scrubbed here,
            // so the decision below sees a clean (missing) line.
            self.scrub_if_corrupt(pe, op.access.addr());
        }
        self.record(TraceKind::Issue, Some(pe_id), || op.to_string());
        match op.access {
            Access::Read(addr) => {
                // One probe serves both the protocol's hit/miss
                // decision and the hit path's state-and-data access.
                self.stats.tag_probes += 1;
                let mut hit = None;
                let outcome = match self.caches[pe].get_mut(addr) {
                    Some(entry) => {
                        let outcome = self.protocol.cpu_read(Some(*entry.state));
                        if let CpuOutcome::Hit { next } = outcome {
                            let old = *entry.state;
                            *entry.state = next;
                            hit = Some((old, next, *entry.data));
                        }
                        outcome
                    }
                    None => self.protocol.cpu_read(None),
                };
                match outcome {
                    CpuOutcome::Hit { .. } => {
                        let (old, next, value) = hit.expect("hit requires a held line");
                        if next != old {
                            self.sync_owner(pe, addr, Some(old), Some(next));
                        }
                        self.cache_stats[pe].record(AccessKind::Read, op.class, true);
                        self.last_progress[pe] = self.cycle;
                        self.last_results[pe] = Some(OpResult::Read(value));
                        self.record(TraceKind::Hit, Some(pe_id), || {
                            format!("read {addr} = {value}")
                        });
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: false,
                            decision: CpuDecision::Hit,
                        });
                    }
                    CpuOutcome::Miss { intent } => {
                        debug_assert_eq!(intent, BusIntent::Read, "read misses issue bus reads");
                        self.cache_stats[pe].record(AccessKind::Read, op.class, false);
                        self.mark_read_miss(pe);
                        self.enqueue(pe_id, addr, BusOp::Read);
                        self.set_status(
                            pe,
                            PeStatus::WaitBus(Pending::Read {
                                addr,
                                class: op.class,
                            }),
                        );
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: false,
                            decision: CpuDecision::Miss(intent),
                        });
                    }
                }
            }
            Access::Write(addr, value) => {
                // Same single-probe structure as the read path above.
                self.stats.tag_probes += 1;
                let mut hit = None;
                let outcome = match self.caches[pe].get_mut(addr) {
                    Some(entry) => {
                        let outcome = self.protocol.cpu_write(Some(*entry.state));
                        if let CpuOutcome::Hit { next } = outcome {
                            let old = *entry.state;
                            *entry.state = next;
                            *entry.data = value;
                            hit = Some((old, next));
                        }
                        outcome
                    }
                    None => self.protocol.cpu_write(None),
                };
                match outcome {
                    CpuOutcome::Hit { .. } => {
                        let (old, next) = hit.expect("hit requires a held line");
                        if next != old {
                            self.sync_owner(pe, addr, Some(old), Some(next));
                        }
                        self.cache_stats[pe].record(AccessKind::Write, op.class, true);
                        self.last_progress[pe] = self.cycle;
                        self.last_results[pe] = Some(OpResult::Write);
                        self.record(TraceKind::Hit, Some(pe_id), || {
                            format!("write {addr} <- {value}")
                        });
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: true,
                            decision: CpuDecision::Hit,
                        });
                    }
                    CpuOutcome::Miss { intent } => {
                        let bus_op = match intent {
                            BusIntent::Write => BusOp::Write(value),
                            BusIntent::Invalidate => BusOp::Invalidate,
                            BusIntent::Read => {
                                unreachable!("{} asked to read on a write", self.protocol.name())
                            }
                        };
                        self.cache_stats[pe].record(AccessKind::Write, op.class, false);
                        self.enqueue(pe_id, addr, bus_op);
                        self.set_status(
                            pe,
                            PeStatus::WaitBus(Pending::Write {
                                addr,
                                value,
                                class: op.class,
                            }),
                        );
                        self.notify(Observation::CpuAccess {
                            pe,
                            addr,
                            write: true,
                            decision: CpuDecision::Miss(intent),
                        });
                    }
                }
            }
            Access::TestAndSet(addr, set_to) => {
                // "The initial read-with-lock does not reference the value
                // in the cache" — always a bus operation.
                self.mark_ts_issued(pe);
                self.enqueue(pe_id, addr, BusOp::ReadWithLock);
                self.set_status(
                    pe,
                    PeStatus::WaitBus(Pending::LockedRead {
                        addr,
                        set_to,
                        class: op.class,
                    }),
                );
                self.notify(Observation::LockedReadIssued { pe, addr });
            }
        }
    }

    fn enqueue(&mut self, pe: PeId, addr: Addr, op: BusOp) {
        self.mark_enqueued(pe.index());
        let bus = self.routing.bus_of(addr);
        assert!(
            self.routing.is_attached(pe.index(), bus, self.pe_count()),
            "{pe} is not attached to the bus serving {addr} \
             (workload violates the hierarchy's region discipline)"
        );
        self.queues[bus]
            .request(BusTransaction::new(pe, addr, op))
            .expect("a stalled PE cannot issue a second request");
    }

    // ----- bus phase ----------------------------------------------------

    fn bus_phase(&mut self) {
        for bus in 0..self.routing.bus_count() {
            // A multi-cycle transaction holds the bus; nothing else is
            // granted until it completes ("the bus cycle time is no
            // faster than the cache cycle time" generalized to slow
            // memory).
            if self.cycle < self.bus_free_at[bus] {
                self.traffic.bus_mut(bus).record_occupied();
                continue;
            }
            // Split-transaction data phase: a completed memory access
            // takes the bus with priority over new address grants. Its
            // wait was sampled at the address grant, so no second
            // `note_grant` here.
            if let Some(tx) = self.queues[bus].take_ready(self.cycle) {
                self.record(TraceKind::Grant, Some(tx.initiator), || {
                    format!("data phase {tx}")
                });
                self.execute(bus, tx);
                continue;
            }
            if self.queues[bus].has_grantable() {
                self.stats.queue_scans += 1;
            }
            match self.queues[bus].grant(self.arbiters[bus].as_mut()) {
                None => self.traffic.bus_mut(bus).record_idle(),
                Some(tx) => {
                    if self
                        .faults
                        .as_ref()
                        .is_some_and(|engine| engine.lose_grant[bus])
                    {
                        // The granted transaction is lost in flight: the
                        // cycle is burned and the transaction retries at
                        // the head of the queue. It never completes, so
                        // no observer sees any protocol effect.
                        self.faults.as_mut().expect("just checked").lose_grant[bus] = false;
                        self.fault_stats.bus_transactions_lost += 1;
                        self.traffic.bus_mut(bus).record_occupied();
                        let fault = FaultKind::BusLoss { bus };
                        self.record(TraceKind::FaultInject, Some(tx.initiator), || {
                            format!("{fault}: dropped {tx}")
                        });
                        self.notify(Observation::FaultInjected { fault });
                        self.mark_enqueued(tx.initiator.index());
                        self.queues[bus].push_retry(tx);
                        continue;
                    }
                    self.record(TraceKind::Grant, Some(tx.initiator), || tx.to_string());
                    self.note_grant(tx.initiator.index());
                    if self.discipline == ServiceDiscipline::Split {
                        // Address phase: post the request and release
                        // the bus; the data phase returns once memory
                        // has serviced the access.
                        self.traffic.bus_mut(bus).record_address_phase();
                        self.queues[bus].begin_in_flight(tx, self.cycle + self.transaction_cycles);
                        continue;
                    }
                    if self.transaction_cycles > 1 {
                        self.bus_free_at[bus] = self.cycle + self.transaction_cycles;
                    }
                    self.execute(bus, tx);
                }
            }
        }
    }

    fn execute(&mut self, bus: usize, tx: BusTransaction) {
        match tx.op {
            BusOp::Read | BusOp::ReadWithLock => self.execute_read(bus, tx),
            BusOp::Write(v) => self.execute_write(bus, tx, v, false),
            BusOp::WriteWithUnlock(v) => self.execute_write(bus, tx, v, true),
            BusOp::Invalidate => self.execute_invalidate(bus, tx),
        }
    }

    /// Finds the cache that must interrupt a read of `addr` and supply
    /// its data.
    ///
    /// The initiator's own cache is included: a plain read never reaches
    /// the bus while its own line owns the latest value (that is a cache
    /// hit), but a *locked* read bypasses the cache ("the initial
    /// read-with-lock does not reference the value in the cache"), so an
    /// issuer that holds the line Local must first flush its value to
    /// memory exactly like any other supplier — otherwise the locked
    /// read would observe stale memory.
    fn find_supplier(&self, addr: Addr) -> Option<usize> {
        let bus = self.routing.bus_of(addr);
        let all_attached = self.routing.bus_count() == 1;
        let base = self.block_base(addr);
        let mut cursor = 0;
        while let Some(pe) = self.owners.next_from(base, cursor) {
            cursor = pe + 1;
            if all_attached || self.routing.is_attached(pe, bus, self.pe_count()) {
                debug_assert!(
                    self.line_state(pe, addr)
                        .is_some_and(|s| self.protocol.supplies_on_snoop_read(s)),
                    "supplier index names P{pe} for {addr} but its line does not supply"
                );
                return Some(pe);
            }
        }
        None
    }

    /// Does any cache other than `pe` hold `addr` in a locally-readable
    /// state? Samples the guarded-fill bit for protocols whose read-miss
    /// fill depends on sharing (MESI). Walks the sharer index (which
    /// includes `Invalid` holders, hence the per-holder tag probe, which
    /// is counted honestly).
    fn other_readable_holder(&mut self, pe: usize, addr: Addr) -> bool {
        let base = self.block_base(addr);
        let mut cursor = 0;
        while let Some(holder) = self.sharers.next_from(base, cursor) {
            cursor = holder + 1;
            if holder == pe {
                continue;
            }
            self.stats.tag_probes += 1;
            if self
                .line_state(holder, addr)
                .is_some_and(decache_core::LineState::is_readable_locally)
            {
                return true;
            }
        }
        false
    }

    fn execute_read(&mut self, bus: usize, tx: BusTransaction) {
        let addr = tx.addr;
        let locked = matches!(tx.op, BusOp::ReadWithLock);

        // Interrupt path: an owning cache kills the read and substitutes
        // its own bus write; the read retries next cycle (Section 3).
        // A supplier whose line fails its parity check cannot supply:
        // it scrubs the corrupted line (losing the owned write) and the
        // search continues with the next candidate.
        while let Some(supplier) = self.find_supplier(addr) {
            if self.faults_possible() && self.scrub_if_corrupt(supplier, addr) {
                continue;
            }
            // One probe yields the supplied data and applies the
            // supplier's state transition; nothing in between reads
            // cache state or the owner index, so the hoist is inert.
            self.stats.tag_probes += 1;
            let (data, old, next) = {
                let entry = self.caches[supplier]
                    .get_mut(addr)
                    .expect("supplier holds the line");
                let old = *entry.state;
                let next = self.protocol.after_supply(old);
                *entry.state = next;
                (*entry.data, old, next)
            };
            self.sync_owner(supplier, addr, Some(old), Some(next));
            self.memory
                .write(addr, data)
                .expect("supplier write-back in range");
            if self.faults_possible() {
                // The supply overwrites (and silently masks) any
                // undetected corruption of the memory word.
                self.fault_clock.remove(&(None, addr.index()));
            }
            let supplier_id = PeId::new(supplier as u16);
            self.record(TraceKind::Abort, Some(supplier_id), || {
                format!("interrupt {} and supply {addr} = {data}", tx.op)
            });
            let t = self.traffic.bus_mut(bus);
            t.record_abort();
            t.record(BusOpKind::Write);
            self.note_memory_service();
            // The substituted write is snooped like any bus write.
            self.dispatch_snoop(
                addr,
                SnoopEvent::Write(data),
                SkipPes::initiator(tx.initiator.index()).with_supplier(supplier),
            );
            self.notify(Observation::Supplied {
                supplier,
                initiator: tx.initiator.index(),
                addr,
            });
            self.traffic.bus_mut(bus).record_retry();
            self.mark_enqueued(tx.initiator.index());
            self.queues[bus].push_retry(tx);
            self.satisfy_pending_reads(addr);
            return;
        }

        // Memory supplies the value; its parity check rides the read,
        // so detection (and policy-driven repair) happens before the
        // value is served.
        if self.faults_possible() && !self.memory.parity_ok(addr) {
            self.detect_and_repair_memory(addr);
        }
        let value = if locked {
            match self.memory.read_with_lock(addr, tx.initiator) {
                Ok(v) => v,
                Err(MemError::Locked { .. }) => {
                    // The word is locked mid-Test-and-Set by another PE:
                    // the attempt burns the cycle and rearbitrates.
                    self.stats.lock_rejections += 1;
                    self.stats.lock_rejected_reads += 1;
                    self.traffic.bus_mut(bus).record(BusOpKind::ReadWithLock);
                    self.record(TraceKind::LockRejected, Some(tx.initiator), || {
                        tx.to_string()
                    });
                    self.mark_enqueued(tx.initiator.index());
                    self.queues[bus].request(tx).expect("requeue after grant");
                    return;
                }
                Err(e) => panic!("locked read failed: {e}"),
            }
        } else {
            self.memory.read(addr).expect("bus read in range")
        };
        self.traffic.bus_mut(bus).record(if locked {
            BusOpKind::ReadWithLock
        } else {
            BusOpKind::Read
        });
        self.note_memory_service();

        let pe = tx.initiator.index();

        // Guarded-fill sample (MESI exclusive-vs-shared): taken after
        // any interrupt-and-supply, before the read broadcast — the
        // read snoop of a sharer-dependent protocol never changes the
        // readable-holder set, so the ordering is immaterial to it.
        // Paper protocols short-circuit here and skip the tag walk.
        let shared = !locked
            && self.protocol.fill_depends_on_sharers()
            && self.other_readable_holder(pe, addr);

        // Broadcast: every other holder snoops the returned value.
        let event = if locked {
            SnoopEvent::LockedRead(value)
        } else {
            SnoopEvent::Read(value)
        };
        self.dispatch_snoop(addr, event, SkipPes::initiator(tx.initiator.index()));

        // The initiator's own line fills.
        let prior = self.line_state(pe, addr);
        let next = if locked {
            self.protocol.own_locked_read_complete(prior)
        } else if self.protocol.fill_depends_on_sharers() {
            self.protocol
                .own_complete_shared(prior, BusIntent::Read, shared)
        } else {
            self.protocol.own_complete(prior, BusIntent::Read)
        };
        self.install(pe, addr, prior, next, value);
        self.notify(Observation::ReadCompleted { pe, addr, locked });

        // Deliver to the stalled PE.
        match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Read { class: _, .. }) => {
                self.note_read_fill(pe);
                self.finish(pe, OpResult::Read(value));
            }
            PeStatus::WaitBus(Pending::LockedRead { set_to, class, .. }) => {
                if value.is_zero() {
                    // Test succeeded: proceed to the unlocking write.
                    self.enqueue(tx.initiator, addr, BusOp::WriteWithUnlock(set_to));
                    self.set_status(
                        pe,
                        PeStatus::WaitBus(Pending::UnlockWrite {
                            addr,
                            old: value,
                            class,
                        }),
                    );
                } else {
                    // Failed Test-and-Set: "treated as a non-cachable
                    // read" — release the lock without writing.
                    self.memory
                        .release_lock(addr, tx.initiator)
                        .expect("failing TS holds the lock it releases");
                    self.stats.ts_failures += 1;
                    self.cache_stats[pe].record(AccessKind::Read, class, false);
                    self.note_ts_resolved(pe);
                    self.finish(
                        pe,
                        OpResult::TestAndSet {
                            old: value,
                            acquired: false,
                        },
                    );
                }
            }
            other => panic!("read completion for PE in state {other:?}"),
        }

        self.satisfy_pending_reads(addr);
    }

    fn execute_write(&mut self, bus: usize, tx: BusTransaction, value: Word, unlock: bool) {
        let addr = tx.addr;
        if unlock {
            self.memory
                .write_with_unlock(addr, value, tx.initiator)
                .expect("unlocking write holds the lock");
            self.traffic.bus_mut(bus).record(BusOpKind::WriteWithUnlock);
            self.note_memory_service();
        } else {
            match self.memory.write_checked(addr, value, tx.initiator) {
                Ok(()) => {
                    self.traffic.bus_mut(bus).record(BusOpKind::Write);
                    self.note_memory_service();
                }
                Err(MemError::Locked { .. }) => {
                    // "Any bus writes before the unlock will fail."
                    self.stats.lock_rejections += 1;
                    self.stats.lock_rejected_writes += 1;
                    self.traffic.bus_mut(bus).record(BusOpKind::Write);
                    self.record(TraceKind::LockRejected, Some(tx.initiator), || {
                        tx.to_string()
                    });
                    self.mark_enqueued(tx.initiator.index());
                    self.queues[bus].request(tx).expect("requeue after grant");
                    return;
                }
                Err(e) => panic!("bus write failed: {e}"),
            }
        }
        if self.faults_possible() {
            // A bus write overwrites (and silently masks) any
            // undetected corruption of the memory word.
            self.fault_clock.remove(&(None, addr.index()));
        }

        let event = if unlock {
            SnoopEvent::UnlockWrite(value)
        } else {
            SnoopEvent::Write(value)
        };
        self.dispatch_snoop(addr, event, SkipPes::initiator(tx.initiator.index()));

        let pe = tx.initiator.index();
        let prior = self.line_state(pe, addr);
        let next = if unlock {
            self.protocol.own_unlock_write_complete(prior)
        } else {
            self.protocol.own_complete(prior, BusIntent::Write)
        };
        self.install(pe, addr, prior, next, value);
        self.notify(Observation::WriteCompleted { pe, addr, unlock });

        match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Write { .. }) => {
                self.finish(pe, OpResult::Write);
            }
            PeStatus::WaitBus(Pending::UnlockWrite { old, class, .. }) => {
                self.stats.ts_successes += 1;
                self.cache_stats[pe].record(AccessKind::Write, class, false);
                self.note_ts_resolved(pe);
                self.finish(
                    pe,
                    OpResult::TestAndSet {
                        old,
                        acquired: true,
                    },
                );
            }
            other => panic!("write completion for PE in state {other:?}"),
        }

        self.satisfy_pending_reads(addr);
    }

    fn execute_invalidate(&mut self, bus: usize, tx: BusTransaction) {
        let addr = tx.addr;
        self.traffic.bus_mut(bus).record(BusOpKind::Invalidate);
        self.dispatch_snoop(
            addr,
            SnoopEvent::Invalidate,
            SkipPes::initiator(tx.initiator.index()),
        );

        let pe = tx.initiator.index();
        let prior = self.line_state(pe, addr);
        let next = self.protocol.own_complete(prior, BusIntent::Invalidate);
        // The invalidate carries no bus payload; the CPU value travels on
        // the pending record.
        let value = match self.statuses[pe] {
            PeStatus::WaitBus(Pending::Write { value, .. }) => value,
            ref other => panic!("invalidate completion for PE in state {other:?}"),
        };
        self.install(pe, addr, prior, next, value);
        self.notify(Observation::InvalidateCompleted { pe, addr });

        self.finish(pe, OpResult::Write);
    }

    fn finish(&mut self, pe: usize, result: OpResult) {
        self.record(TraceKind::Complete, Some(PeId::new(pe as u16)), || {
            result.to_string()
        });
        self.set_status(pe, PeStatus::Idle);
        self.last_progress[pe] = self.cycle;
        self.last_results[pe] = Some(result);
    }

    /// Dispatches a snoop event to every cache holding `addr` except the
    /// [`SkipPes`] slots. Consults the sharer index, so only actual
    /// holders are visited — in ascending PE order on both paths, so
    /// observable behaviour is bit-identical whichever one runs.
    fn dispatch_snoop(&mut self, addr: Addr, event: SnoopEvent, skip: SkipPes) {
        // The batched path requires per-sharer outcomes that cannot
        // diverge: no parity faults to heal, no fault engine, and a
        // machine shape with no per-sharer attachment filter.
        if self.batch_snoop && !self.faults_possible() {
            self.dispatch_snoop_batched(addr, event, skip);
        } else {
            self.dispatch_snoop_scan(addr, event, skip);
        }
    }

    /// The batched broadcast application: walks `addr`'s sharer bitset
    /// word at a time, popcounts the aggregate visit/probe work, and
    /// applies the protocol's snoop transition straight into each SoA
    /// tag store via [`TagStore::apply_broadcast`] — no per-sharer tag
    /// scan, skip test, or attachment check. Only runs on shapes where
    /// that is exact (see [`Machine::dispatch_snoop`]); a line's
    /// parity is provably good here (bad parity implies
    /// `faults_possible`), so the heal path cannot be needed.
    fn dispatch_snoop_batched(&mut self, addr: Addr, event: SnoopEvent, skip: SkipPes) {
        let base = self.block_base(addr);
        let word = event.word();
        // Disjoint field borrows: the sharer words are only read —
        // snooping never evicts a line (even a snoop to Invalid leaves
        // it present), so membership is stable across the loop.
        let Machine {
            sharers,
            caches,
            owners,
            protocol,
            stats,
            ..
        } = self;
        for (w, &bits) in sharers.words(base).iter().enumerate() {
            let mut bits = bits;
            for skip_pe in [skip.initiator, skip.supplier].into_iter().flatten() {
                if skip_pe / 64 == w {
                    bits &= !(1u64 << (skip_pe % 64));
                }
            }
            stats.sharer_visits += u64::from(bits.count_ones());
            stats.tag_probes += u64::from(bits.count_ones());
            while bits != 0 {
                let pe = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (old, next) = caches[pe].apply_broadcast(addr, word, |s| {
                    let out = protocol.snoop(s, event);
                    (out.next, out.capture)
                });
                if next != old {
                    // `sync_owner` inlined over the destructured
                    // borrows.
                    let owned = protocol.supplies_on_snoop_read(old);
                    let owns = protocol.supplies_on_snoop_read(next);
                    if owned != owns {
                        if owns {
                            owners.add(base, pe);
                        } else {
                            owners.remove(base, pe);
                        }
                    }
                }
            }
        }
    }

    /// The per-sharer scan path: one cursor step, skip test, attachment
    /// check, and tag probe per holder. Handles every machine shape and
    /// the fault paths (parity heals) the batched path excludes.
    fn dispatch_snoop_scan(&mut self, addr: Addr, event: SnoopEvent, skip: SkipPes) {
        let bus = self.routing.bus_of(addr);
        let n = self.pe_count();
        // On a single-bus machine every PE is attached; hoist the check
        // out of the per-sharer loop.
        let all_attached = self.routing.bus_count() == 1;
        let base = self.block_base(addr);
        let mut healed: Vec<usize> = Vec::new();
        let mut cursor = 0;
        while let Some(pe) = self.sharers.next_from(base, cursor) {
            cursor = pe + 1;
            if skip.skips(pe) || !(all_attached || self.routing.is_attached(pe, bus, n)) {
                continue;
            }
            self.stats.sharer_visits += 1;
            self.stats.tag_probes += 1;
            if let Some(entry) = self.caches[pe].get_mut(addr) {
                let old = *entry.state;
                let out = self.protocol.snoop(old, event);
                *entry.state = out.next;
                if out.capture {
                    if let Some(word) = event.word() {
                        *entry.data = word;
                        if !*entry.parity_ok {
                            // The captured broadcast overwrites the
                            // corrupted word before anyone read it: the
                            // line is healed in place (the RWB-family
                            // bonus of write broadcasting).
                            *entry.parity_ok = true;
                            healed.push(pe);
                        }
                    }
                }
                if out.next != old {
                    self.sync_owner(pe, addr, Some(old), Some(out.next));
                }
            }
        }
        for pe in healed {
            self.fault_stats.broadcast_heals += 1;
            self.take_latency(Some(pe), base);
            self.record(TraceKind::Recover, Some(PeId::new(pe as u16)), || {
                format!("broadcast healed corrupted line {addr}")
            });
            self.notify(Observation::BroadcastHealed { pe, addr });
        }
    }

    /// Test hook: forces the per-sharer scan path even on machines
    /// whose shape qualifies for batched broadcast application, for
    /// batched-vs-scan equivalence tests.
    #[doc(hidden)]
    pub fn force_scan_snoop(&mut self) {
        self.batch_snoop = false;
    }

    /// Test hook: how many cycles ran their issue phase through the
    /// sharded worker pool, so equivalence tests can assert the gate
    /// engaged. An engine-path odometer, never a simulated statistic.
    #[doc(hidden)]
    pub fn sharded_cycles(&self) -> u64 {
        self.sharded_cycles
    }

    /// Installs a line after a completed bus transaction, handling the
    /// eviction write-back shortcut. Keeps the sharer and supplier
    /// indexes in sync: the installed block gains this cache as a
    /// holder (`prior` is its pre-transaction state, for the supplier
    /// delta), a displaced block loses it.
    fn install(
        &mut self,
        pe: usize,
        addr: Addr,
        prior: Option<LineState>,
        state: LineState,
        data: Word,
    ) {
        self.stats.tag_probes += 1;
        let evicted = self.caches[pe].insert(addr, state, data);
        self.sharers.add(self.block_base(addr), pe);
        self.sync_owner(pe, addr, prior, Some(state));
        if let Some(evicted) = evicted {
            self.sharers.remove(evicted.addr.index(), pe);
            self.sync_owner(pe, evicted.addr, Some(evicted.state), None);
            let writeback = self.protocol.writeback_on_evict(evicted.state);
            if writeback {
                self.memory
                    .write(evicted.addr, evicted.data)
                    .expect("write-back in range");
                let bus = self.routing.bus_of(evicted.addr);
                self.traffic.bus_mut(bus).record(BusOpKind::Write);
                self.note_memory_service();
                self.stats.writebacks += 1;
                self.record(TraceKind::Writeback, Some(PeId::new(pe as u16)), || {
                    format!("write back {} = {}", evicted.addr, evicted.data)
                });
                if !evicted.parity_ok {
                    // A corrupted owned line was written back while
                    // still undetected: the corruption propagates to
                    // memory, and the latency ledger entry follows it.
                    self.memory
                        .mark_corrupt(evicted.addr)
                        .expect("write-back in range");
                    if let Some(at) = self.fault_clock.remove(&(Some(pe), evicted.addr.index())) {
                        self.fault_clock.insert((None, evicted.addr.index()), at);
                    }
                } else if self.faults_possible() {
                    // A clean write-back overwrites (and so silently
                    // masks) any undetected corruption of the word.
                    self.fault_clock.remove(&(None, evicted.addr.index()));
                }
            } else if !evicted.parity_ok {
                // The corrupted copy is discarded before detection.
                self.fault_clock.remove(&(Some(pe), evicted.addr.index()));
            }
            self.notify(Observation::Evicted {
                pe,
                addr: evicted.addr,
                writeback,
            });
        }
    }

    /// Completes stalled plain reads whose cache line just became
    /// readable by snooping a broadcast, cancelling their bus requests.
    /// Consults the pending-read index, so only PEs actually waiting on
    /// `addr` are visited.
    fn satisfy_pending_reads(&mut self, addr: Addr) {
        // Cursor over the pending-read bitset: `finish` clears the
        // visited PE's own bit and nothing else, so the scan is exact.
        let mut cursor = 0;
        while let Some(pe) = self.pending_readers.next_from(addr.index(), cursor) {
            cursor = pe + 1;
            self.stats.sharer_visits += 1;
            self.stats.tag_probes += 1;
            debug_assert!(matches!(
                self.statuses[pe],
                PeStatus::WaitBus(Pending::Read { addr: want, .. }) if want == addr
            ));
            let Some(entry) = self.caches[pe].get(addr) else {
                continue;
            };
            // A corrupted line cannot satisfy a read — the pending bus
            // transaction stays queued and fetches the coherent image.
            if !entry.state.is_readable_locally() || !entry.parity_ok {
                continue;
            }
            let value = entry.data;
            let bus = self.routing.bus_of(addr);
            if self.queues[bus].cancel(PeId::new(pe as u16)) {
                // The read's address phase already ran; its data phase
                // is cancelled along with the request.
                self.stats.split_cancels += 1;
            }
            self.stats.broadcast_satisfied += 1;
            self.record(
                TraceKind::BroadcastSatisfied,
                Some(PeId::new(pe as u16)),
                || format!("read {addr} = {value} from broadcast"),
            );
            self.notify(Observation::BroadcastSatisfied { pe, addr });
            self.note_read_fill(pe);
            self.finish(pe, OpResult::Read(value));
        }
    }

    /// Asserts every fast-path index against a brute-force recompute
    /// from the architectural state: the sharer index must equal the
    /// per-address holder sets scanned from all tag stores, the
    /// pending-read index must equal the set of PEs stalled in
    /// [`Pending::Read`], and the idle/done bookkeeping must match the
    /// status vector. Test instrumentation — O(caches + index size).
    ///
    /// # Panics
    ///
    /// Panics (with the offending PE/address) if any index diverges.
    #[doc(hidden)]
    pub fn assert_fast_path_invariants(&self) {
        let mut cached_lines = 0;
        let mut supplying_lines = 0;
        for (pe, cache) in self.caches.iter().enumerate() {
            assert_eq!(cache.len(), cache.iter().count(), "cached len for P{pe}");
            for entry in cache.iter() {
                cached_lines += 1;
                assert!(
                    self.sharers.contains(entry.addr.index(), pe),
                    "sharer index misses P{pe} holding {}",
                    entry.addr
                );
                let supplies = self.protocol.supplies_on_snoop_read(entry.state);
                if supplies {
                    supplying_lines += 1;
                }
                assert_eq!(
                    self.owners.contains(entry.addr.index(), pe),
                    supplies,
                    "supplier index disagrees with P{pe}'s {:?} line at {}",
                    entry.state,
                    entry.addr
                );
            }
        }
        assert_eq!(
            self.sharers.total(),
            cached_lines,
            "sharer index has stale holder bits"
        );
        assert_eq!(
            self.owners.total(),
            supplying_lines,
            "supplier index has stale owner bits"
        );

        let mut pending_reads = 0;
        let mut idle = 0;
        let mut done = 0;
        for (pe, status) in self.statuses.iter().enumerate() {
            match *status {
                PeStatus::Idle => {
                    idle += 1;
                    assert_eq!(self.idle.next_from(pe), Some(pe), "idle set misses P{pe}");
                }
                PeStatus::Done | PeStatus::Failed => done += 1,
                PeStatus::WaitBus(Pending::Read { addr, .. }) => {
                    pending_reads += 1;
                    assert!(
                        self.pending_readers.contains(addr.index(), pe),
                        "pending-read index misses P{pe} waiting on {addr}"
                    );
                }
                PeStatus::WaitBus(_) => {}
            }
        }
        assert_eq!(self.idle_count, idle, "idle_count drifted");
        assert_eq!(self.idle.total(), idle, "idle set has stale bits");
        assert_eq!(self.done_count, done, "done_count drifted");
        assert_eq!(
            self.pending_readers.total(),
            pending_reads,
            "pending-read index has stale bits"
        );

        for queue in &self.queues {
            queue.assert_lane_invariants();
        }

        // The wake schedule must never name a cycle in the past, and a
        // machine it declares inert must have no grantable work.
        if let Some(at) = self.next_event_cycle() {
            assert!(at > self.cycle, "wake schedule points backward");
        } else {
            assert_eq!(self.idle_count, 0, "idle PEs always wake next cycle");
            assert!(
                self.queues.iter().all(BusQueue::is_empty),
                "inert machine with queued transactions"
            );
        }
    }
}

/// One sharded issue worker: the `start_op` decision logic over the PE
/// range `[start, start + len)`, restricted to per-PE state. Mirrors
/// the sequential path exactly — same probe, same protocol call, same
/// per-PE bookkeeping — with shared-state effects deferred to
/// [`IssueDecision`]s. Returns the worker's tag-probe count.
///
/// The fault, trace, and observer interleavings of the sequential path
/// are absent by the sharding gate (`issue_phase` falls back when any
/// of them is live), so skipping them here cannot diverge.
#[allow(clippy::too_many_arguments)]
fn issue_worker(
    start: usize,
    processors: &mut [Box<dyn Processor + Send>],
    results: &mut [Option<OpResult>],
    caches: &mut [TagStore<LineState>],
    cache_stats: &mut [CacheStats],
    last_progress: &mut [u64],
    last_addr: &mut [Option<Addr>],
    decisions: &mut [IssueDecision],
    idle: &PeMask,
    protocol: &AnyProtocol,
    cycle: u64,
) -> u64 {
    use crate::Access;
    let end = start + processors.len();
    let mut probes = 0u64;
    let mut cursor = start;
    while let Some(pe) = idle.next_from(cursor) {
        if pe >= end {
            break;
        }
        cursor = pe + 1;
        let i = pe - start;
        let last = results[i].take();
        let op = match processors[i].next_op(last.as_ref()) {
            crate::Poll::Halt => {
                decisions[i] = IssueDecision::Halt;
                continue;
            }
            crate::Poll::Wait => continue,
            crate::Poll::Op(op) => op,
        };
        last_addr[i] = Some(op.access.addr());
        match op.access {
            Access::Read(addr) => {
                probes += 1;
                let mut hit = None;
                let outcome = match caches[i].get_mut(addr) {
                    Some(entry) => {
                        let outcome = protocol.cpu_read(Some(*entry.state));
                        if let CpuOutcome::Hit { next } = outcome {
                            let old = *entry.state;
                            *entry.state = next;
                            hit = Some((old, next, *entry.data));
                        }
                        outcome
                    }
                    None => protocol.cpu_read(None),
                };
                match outcome {
                    CpuOutcome::Hit { .. } => {
                        let (old, next, value) = hit.expect("hit requires a held line");
                        cache_stats[i].record(AccessKind::Read, op.class, true);
                        last_progress[i] = cycle;
                        results[i] = Some(OpResult::Read(value));
                        if next != old {
                            decisions[i] = IssueDecision::Hit {
                                addr,
                                was: old,
                                now: next,
                            };
                        }
                    }
                    CpuOutcome::Miss { intent } => {
                        debug_assert_eq!(intent, BusIntent::Read, "read misses issue bus reads");
                        cache_stats[i].record(AccessKind::Read, op.class, false);
                        decisions[i] = IssueDecision::Enqueue {
                            addr,
                            op: BusOp::Read,
                            pending: Pending::Read {
                                addr,
                                class: op.class,
                            },
                        };
                    }
                }
            }
            Access::Write(addr, value) => {
                probes += 1;
                let mut hit = None;
                let outcome = match caches[i].get_mut(addr) {
                    Some(entry) => {
                        let outcome = protocol.cpu_write(Some(*entry.state));
                        if let CpuOutcome::Hit { next } = outcome {
                            let old = *entry.state;
                            *entry.state = next;
                            *entry.data = value;
                            hit = Some((old, next));
                        }
                        outcome
                    }
                    None => protocol.cpu_write(None),
                };
                match outcome {
                    CpuOutcome::Hit { .. } => {
                        let (old, next) = hit.expect("hit requires a held line");
                        cache_stats[i].record(AccessKind::Write, op.class, true);
                        last_progress[i] = cycle;
                        results[i] = Some(OpResult::Write);
                        if next != old {
                            decisions[i] = IssueDecision::Hit {
                                addr,
                                was: old,
                                now: next,
                            };
                        }
                    }
                    CpuOutcome::Miss { intent } => {
                        let bus_op = match intent {
                            BusIntent::Write => BusOp::Write(value),
                            BusIntent::Invalidate => BusOp::Invalidate,
                            BusIntent::Read => {
                                unreachable!("{} asked to read on a write", protocol.name())
                            }
                        };
                        cache_stats[i].record(AccessKind::Write, op.class, false);
                        decisions[i] = IssueDecision::Enqueue {
                            addr,
                            op: bus_op,
                            pending: Pending::Write {
                                addr,
                                value,
                                class: op.class,
                            },
                        };
                    }
                }
            }
            Access::TestAndSet(addr, set_to) => {
                // "The initial read-with-lock does not reference the
                // value in the cache" — always a bus operation.
                decisions[i] = IssueDecision::Enqueue {
                    addr,
                    op: BusOp::ReadWithLock,
                    pending: Pending::LockedRead {
                        addr,
                        set_to,
                        class: op.class,
                    },
                };
            }
        }
    }
    probes
}
