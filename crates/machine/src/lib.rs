//! # decache-machine
//!
//! The cycle-based MIMD shared-bus machine simulator: processing
//! elements ([`Processor`]) issue memory operations ([`MemOp`]) through
//! private snooping caches governed by a `decache-core` protocol, over
//! one or more arbitrated shared buses, against a common memory.
//!
//! Each bus cycle the machine (see [`Machine::step`]):
//!
//! 1. lets every idle PE issue one operation — cache hits complete
//!    immediately and silently; misses enqueue a bus request and stall;
//! 2. grants one transaction per bus (retry lane first, then the
//!    arbiter);
//! 3. executes the transaction against memory and dispatches the snoop
//!    to every other cache holding the line, applying the protocol's
//!    reaction (state change, data capture, or interrupt-and-supply with
//!    next-cycle retry).
//!
//! Test-and-Set is sequenced by the cache controller as a locked bus
//! read followed (only on success) by an unlocking bus write, exactly as
//! in Section 6 of the paper; a failing TS is "treated as a non-cachable
//! read".
//!
//! # Examples
//!
//! Two PEs communicate through a shared word under RB:
//!
//! ```
//! use decache_core::{LineState, ProtocolKind};
//! use decache_machine::{MachineBuilder, Script};
//! use decache_mem::{Addr, Word};
//!
//! let flag = Addr::new(0);
//! let mut machine = MachineBuilder::new(ProtocolKind::Rb)
//!     .processor(Script::new().write(flag, Word::new(7)).build())
//!     .processor(Script::new().read(flag).read(flag).build())
//!     .build();
//! machine.run_to_completion(1_000);
//! assert_eq!(machine.memory().peek(flag).unwrap(), Word::new(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod fault;
mod machine;
mod op;
mod outcome;
mod processor;
mod recovery;
mod sharers;
mod snapshot;
mod stats;
mod status;
mod telemetry;
mod trace;

pub use builder::MachineBuilder;
pub use fault::{
    FailStopPolicy, FaultKind, FaultPlan, FaultStats, InjectError, RecoveryPolicy, RecoverySource,
};
pub use machine::checkpoint::{
    CacheStatsCheckpoint, CheckpointError, FaultClockEntry, FaultEngineCheckpoint,
    HistogramCheckpoint, MachineCheckpoint, MemoryCheckpoint, PendingCheckpoint, QueueCheckpoint,
    RestoreError, StatusCheckpoint, TelemetryCheckpoint, TrafficCheckpoint, CHECKPOINT_VERSION,
    FAULT_STAT_FIELDS,
};
pub use machine::Machine;
pub use op::{Access, MemOp, OpResult};
pub use outcome::{
    HaltReason, PeBlame, RunOutcome, StallSite, StallVerdict, DEFAULT_PROGRESS_WINDOW,
};
pub use processor::{
    IdleProcessor, LoopProcessor, Poll, Processor, ProcessorCheckpoint, Script, SpinReader,
};
pub use recovery::RecoveryError;
pub use snapshot::{Snapshot, SnapshotTable};
pub use stats::MachineStats;
pub use telemetry::{CycleHistograms, Histogram};
pub use trace::{CpuDecision, Observation, Observer, Trace, TraceEvent, TraceKind};
