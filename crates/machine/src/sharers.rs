//! Internal bitset indexes that fast-path the cycle engine.
//!
//! The paper's machine is a broadcast medium: every bus transaction is
//! observed by every cache, and the straightforward implementation
//! re-scans all `n` processing elements per transaction (snoop
//! dispatch, supplier search) and per cycle (issue scan, pending-read
//! completion, done checks) — the O(n) "snoop everything" cost the
//! shared-bus scaling literature identifies as the bottleneck. These
//! indexes make every such scan proportional to the number of *actual*
//! participants instead, without changing which caches are visited or
//! in which order, so the simulation's cycle-by-cycle behaviour is
//! bit-for-bit identical (pinned by the machine-fingerprint golden
//! test).
//!
//! * [`PeMask`] — one bitset over processing elements (the idle set).
//! * [`AddrPeIndex`] — a per-address bitset of processing elements: the
//!   sharer index (which caches hold a block) and the pending-read
//!   index (which PEs stall on a bus read of an address).
//!
//! Bit iteration is always in ascending PE order, matching the
//! `for pe in 0..n` loops these indexes replace.

/// Scans `words` for the first set bit at position `>= from`; bit `i`
/// lives in `words[i / 64]` at bit `i % 64`.
fn next_set_bit(words: &[u64], from: usize) -> Option<usize> {
    let mut word = from / 64;
    if word >= words.len() {
        return None;
    }
    let mut current = words[word] & (!0u64 << (from % 64));
    loop {
        if current != 0 {
            return Some(word * 64 + current.trailing_zeros() as usize);
        }
        word += 1;
        if word >= words.len() {
            return None;
        }
        current = words[word];
    }
}

/// A bitset over processing elements.
#[derive(Debug, Clone)]
pub(crate) struct PeMask {
    words: Vec<u64>,
}

impl PeMask {
    /// An all-clear mask sized for `pes` processing elements.
    pub(crate) fn new(pes: usize) -> Self {
        PeMask {
            words: vec![0; pes.div_ceil(64).max(1)],
        }
    }

    /// Sets bit `pe`.
    pub(crate) fn set(&mut self, pe: usize) {
        self.words[pe / 64] |= 1u64 << (pe % 64);
    }

    /// Clears bit `pe`.
    pub(crate) fn clear(&mut self, pe: usize) {
        self.words[pe / 64] &= !(1u64 << (pe % 64));
    }

    /// The first set bit `>= from`, in ascending order.
    pub(crate) fn next_from(&self, from: usize) -> Option<usize> {
        next_set_bit(&self.words, from)
    }

    /// Number of set bits (invariant checks only).
    pub(crate) fn total(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A per-address bitset of processing elements, stored flat: address
/// `a`'s mask occupies `words[a * stride .. (a + 1) * stride]`. The
/// machine preallocates the full memory range up front (one cheap
/// zeroed block); [`add`](Self::add) still grows on demand past the
/// initial capacity, so addresses beyond the memory size (which would
/// fault at the memory access itself) never fault here first.
#[derive(Debug, Clone)]
pub(crate) struct AddrPeIndex {
    stride: usize,
    words: Vec<u64>,
}

impl AddrPeIndex {
    /// An empty index over `pes` processing elements with the masks for
    /// addresses `0..addrs` preallocated. One up-front zeroed block
    /// replaces the incremental `resize` reallocations that otherwise
    /// dominate [`add`](Self::add) while a run's footprint grows — the
    /// bitset contents (and thus machine behaviour) are unchanged.
    pub(crate) fn with_addr_capacity(pes: usize, addrs: u64) -> Self {
        let stride = pes.div_ceil(64).max(1);
        AddrPeIndex {
            stride,
            words: vec![0; addrs as usize * stride],
        }
    }

    fn base(&self, addr: u64) -> usize {
        addr as usize * self.stride
    }

    /// Sets bit `pe` for `addr` (idempotent).
    pub(crate) fn add(&mut self, addr: u64, pe: usize) {
        let base = self.base(addr);
        if base + self.stride > self.words.len() {
            self.words.resize(base + self.stride, 0);
        }
        self.words[base + pe / 64] |= 1u64 << (pe % 64);
    }

    /// Clears bit `pe` for `addr` (idempotent).
    pub(crate) fn remove(&mut self, addr: u64, pe: usize) {
        let base = self.base(addr);
        if base + self.stride <= self.words.len() {
            self.words[base + pe / 64] &= !(1u64 << (pe % 64));
        }
    }

    /// Whether bit `pe` is set for `addr`.
    pub(crate) fn contains(&self, addr: u64, pe: usize) -> bool {
        let base = self.base(addr);
        base + self.stride <= self.words.len()
            && self.words[base + pe / 64] & (1u64 << (pe % 64)) != 0
    }

    /// The raw 64-bit mask words for `addr`, bit `pe % 64` of word
    /// `pe / 64` — the batched broadcast path iterates these directly
    /// (popcount for aggregate counts, trailing-zeros for members in
    /// ascending PE order). Empty for addresses past the index's
    /// current extent.
    pub(crate) fn words(&self, addr: u64) -> &[u64] {
        let base = self.base(addr);
        if base + self.stride > self.words.len() {
            return &[];
        }
        &self.words[base..base + self.stride]
    }

    /// The first PE `>= from` whose bit is set for `addr`, in ascending
    /// order — the cursor primitive behind every holder loop.
    pub(crate) fn next_from(&self, addr: u64, from: usize) -> Option<usize> {
        let base = self.base(addr);
        if base + self.stride > self.words.len() {
            return None;
        }
        next_set_bit(&self.words[base..base + self.stride], from)
    }

    /// Total number of set bits across all addresses (invariant checks
    /// only — O(index size)).
    pub(crate) fn total(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_mask_set_clear_iterate() {
        let mut m = PeMask::new(130);
        for pe in [0usize, 63, 64, 129] {
            m.set(pe);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(pe) = m.next_from(cursor) {
            seen.push(pe);
            cursor = pe + 1;
        }
        assert_eq!(seen, vec![0, 63, 64, 129]);
        m.clear(64);
        assert_eq!(m.next_from(64), Some(129));
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn empty_mask_yields_nothing() {
        let m = PeMask::new(8);
        assert_eq!(m.next_from(0), None);
    }

    #[test]
    fn index_add_remove_contains() {
        let mut idx = AddrPeIndex::with_addr_capacity(4, 0);
        idx.add(3, 2);
        idx.add(3, 0);
        assert!(idx.contains(3, 2));
        assert!(!idx.contains(3, 1));
        assert!(!idx.contains(4, 2));
        assert_eq!(idx.next_from(3, 0), Some(0));
        assert_eq!(idx.next_from(3, 1), Some(2));
        assert_eq!(idx.next_from(3, 3), None);
        idx.remove(3, 0);
        assert_eq!(idx.next_from(3, 0), Some(2));
        assert_eq!(idx.total(), 1);
    }

    #[test]
    fn index_is_idempotent() {
        let mut idx = AddrPeIndex::with_addr_capacity(2, 0);
        idx.add(1, 1);
        idx.add(1, 1);
        assert_eq!(idx.total(), 1);
        idx.remove(1, 0);
        assert_eq!(idx.total(), 1);
    }

    #[test]
    fn index_grows_beyond_initial_size() {
        let mut idx = AddrPeIndex::with_addr_capacity(70, 0);
        assert_eq!(idx.next_from(100, 0), None);
        assert!(!idx.contains(100, 69));
        idx.remove(100, 69); // no-op, no panic
        idx.add(100, 69);
        assert!(idx.contains(100, 69));
        assert_eq!(idx.next_from(100, 0), Some(69));
    }

    #[test]
    fn ascending_order_across_words() {
        let mut idx = AddrPeIndex::with_addr_capacity(200, 0);
        for pe in [5usize, 70, 199] {
            idx.add(0, pe);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(pe) = idx.next_from(0, cursor) {
            seen.push(pe);
            cursor = pe + 1;
        }
        assert_eq!(seen, vec![5, 70, 199]);
    }
}
