//! Deterministic fault injection: plans, policies, and statistics.
//!
//! The paper's Section 8 names memory reliability via cache replication
//! as the key open direction; Section 5 argues RWB's write broadcasts
//! keep "a higher probability that some cache contains a correct copy".
//! This module supplies the machinery to *test* that claim under load:
//! a seeded [`FaultPlan`] schedules transient memory/cache word flips,
//! bus-transaction loss, and PE fail-stop events at chosen cycles or
//! per-cycle rates; the machine detects corruption through the parity
//! model ([`Entry::parity_ok`](decache_cache::Entry),
//! [`Memory::parity_ok`](decache_mem::Memory)) and recovers according
//! to a [`RecoveryPolicy`] — in the run loop, not as a manual post-hoc
//! API.
//!
//! Everything is deterministic: the plan owns a `decache-rng` stream
//! seeded at construction, draws in a fixed order each cycle, and draws
//! nothing at all when no rate is configured — a zero-fault plan leaves
//! every statistic bit-identical to a machine with no plan (the
//! fingerprint suite asserts this).

use decache_mem::{Addr, AddrRange, MemError};
use decache_rng::Rng;
use std::error::Error;
use std::fmt;

/// One kind of injected fault, as carried on
/// [`Observation::FaultInjected`](crate::Observation::FaultInjected)
/// and scheduled by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient bit flip in the memory word at `addr`.
    MemoryFlip {
        /// The corrupted address.
        addr: Addr,
    },
    /// A transient bit flip in PE `pe`'s cached copy of `addr`.
    CacheFlip {
        /// The cache whose line is corrupted.
        pe: usize,
        /// The corrupted address.
        addr: Addr,
    },
    /// The transaction granted on `bus` this cycle is lost (the cycle is
    /// burned; the transaction retries next cycle).
    BusLoss {
        /// The lossy bus.
        bus: usize,
    },
    /// PE `pe` halts permanently (fail-stop).
    FailStop {
        /// The dying processing element.
        pe: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::MemoryFlip { addr } => write!(f, "memory flip at {addr}"),
            FaultKind::CacheFlip { pe, addr } => write!(f, "cache flip in P{pe} at {addr}"),
            FaultKind::BusLoss { bus } => write!(f, "transaction loss on bus {bus}"),
            FaultKind::FailStop { pe } => write!(f, "fail-stop of P{pe}"),
        }
    }
}

/// Where a recovered memory value came from, as carried on
/// [`Observation::MemoryRepaired`](crate::Observation::MemoryRepaired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// An owning (`L`/`D`) cache copy with good parity — authoritative
    /// by the Section 4 lemma.
    Owner {
        /// The owning cache.
        pe: usize,
    },
    /// The majority value among good-parity readable replicas.
    Majority {
        /// How many replicas voted for the winning value.
        votes: usize,
    },
}

/// How the machine repairs a memory word whose parity check fails on a
/// bus read — the Section 8 replica-repair policy, promoted from the
/// manual [`Machine::recover_memory`](crate::Machine::recover_memory)
/// API into the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Detect only: count the fault and serve the corrupt value. The
    /// word is then *adopted* as plain data (its parity is re-marked
    /// good) so each fault is counted once.
    Off,
    /// Repair only from an owning (`L`/`D`) copy with good parity.
    OwnerOnly,
    /// Repair from an owner, else by majority vote among good-parity
    /// readable replicas (the default).
    #[default]
    Majority,
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::Off => write!(f, "off"),
            RecoveryPolicy::OwnerOnly => write!(f, "owner-only"),
            RecoveryPolicy::Majority => write!(f, "majority"),
        }
    }
}

/// What fail-stop handling does with the dead PE's owned lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailStopPolicy {
    /// A recovery controller flushes every good-parity owned (`L`/`D`)
    /// line to memory before the cache goes dark; only corrupted owned
    /// lines lose their writes (the default).
    #[default]
    Drain,
    /// The cache goes dark immediately: every owned line whose value
    /// memory does not already hold is a lost write. (`F` lines lose
    /// nothing — their first write went to the bus, so memory is
    /// current.)
    Forfeit,
}

impl fmt::Display for FailStopPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailStopPolicy::Drain => write!(f, "drain"),
            FailStopPolicy::Forfeit => write!(f, "forfeit"),
        }
    }
}

/// A fault-injection entry point was handed an invalid target.
///
/// Returned by [`Machine::corrupt_memory`](crate::Machine::corrupt_memory)
/// and [`Machine::corrupt_cache`](crate::Machine::corrupt_cache) in
/// place of the `expect`-based panics they once used, consistent with
/// the structured [`RunOutcome`](crate::RunOutcome) error surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectError {
    /// The target address exceeds the memory size.
    OutOfBounds {
        /// The offending address.
        addr: Addr,
        /// The memory size in words.
        size: u64,
    },
    /// The target PE index exceeds the machine's PE count.
    NoSuchPe {
        /// The offending PE index.
        pe: usize,
        /// The machine's PE count.
        pes: usize,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InjectError::OutOfBounds { addr, size } => {
                write!(f, "fault target {addr} out of range of {size} memory words")
            }
            InjectError::NoSuchPe { pe, pes } => {
                write!(f, "fault target P{pe} out of range of {pes} PEs")
            }
        }
    }
}

impl Error for InjectError {}

impl From<MemError> for InjectError {
    fn from(e: MemError) -> Self {
        match e {
            MemError::OutOfBounds { addr, size } => InjectError::OutOfBounds { addr, size },
            other => unreachable!("fault injection cannot fail with {other}"),
        }
    }
}

/// A seeded, deterministic fault schedule, configured via
/// [`MachineBuilder::fault_plan`](crate::MachineBuilder::fault_plan).
///
/// Faults come in two flavours, freely mixed:
///
/// * **Scheduled** — a specific fault at a specific cycle
///   ([`FaultPlan::memory_flip_at`] and friends), for reproducing exact
///   scenarios in tests;
/// * **Rate-driven** — an independent per-cycle Bernoulli draw for each
///   configured rate, targets chosen uniformly by the plan's own seeded
///   RNG, for campaigns.
///
/// Draws happen in a fixed order each cycle (memory flip, cache flip,
/// bus loss, fail stop), and a rate left at zero consumes no randomness
/// at all — so a plan with no rates and no schedule is perfectly inert.
///
/// # Examples
///
/// ```
/// use decache_machine::FaultPlan;
/// use decache_mem::{Addr, AddrRange};
///
/// let plan = FaultPlan::new(42)
///     .memory_flip_rate(0.001)
///     .cache_flip_rate(0.001)
///     .region(AddrRange::with_len(Addr::new(0), 64))
///     .fail_stop_at(500, 1);
/// assert!(!plan.is_inert());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    pub(crate) seed: u64,
    pub(crate) memory_flip_rate: f64,
    pub(crate) cache_flip_rate: f64,
    pub(crate) bus_loss_rate: f64,
    pub(crate) fail_stop_rate: f64,
    pub(crate) region: Option<AddrRange>,
    pub(crate) scheduled: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan drawing randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            memory_flip_rate: 0.0,
            cache_flip_rate: 0.0,
            bus_loss_rate: 0.0,
            fail_stop_rate: 0.0,
            region: None,
            scheduled: Vec::new(),
        }
    }

    fn checked_rate(rate: f64, what: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&rate),
            "{what} rate {rate} must be a probability in [0, 1]"
        );
        rate
    }

    /// Per-cycle probability of flipping one bit of a random memory
    /// word (within [`FaultPlan::region`] if set).
    pub fn memory_flip_rate(mut self, rate: f64) -> Self {
        self.memory_flip_rate = Self::checked_rate(rate, "memory flip");
        self
    }

    /// Per-cycle probability of flipping one bit of a random valid line
    /// in a random live cache.
    pub fn cache_flip_rate(mut self, rate: f64) -> Self {
        self.cache_flip_rate = Self::checked_rate(rate, "cache flip");
        self
    }

    /// Per-cycle probability of losing the transaction granted on a
    /// random bus.
    pub fn bus_loss_rate(mut self, rate: f64) -> Self {
        self.bus_loss_rate = Self::checked_rate(rate, "bus loss");
        self
    }

    /// Per-cycle probability of fail-stopping a random live PE. The
    /// last live PE is never killed — a machine with no processors
    /// cannot degrade gracefully.
    pub fn fail_stop_rate(mut self, rate: f64) -> Self {
        self.fail_stop_rate = Self::checked_rate(rate, "fail stop");
        self
    }

    /// Restricts random memory-flip targets to `region` (default: the
    /// whole memory). Scheduled flips are unaffected.
    pub fn region(mut self, region: AddrRange) -> Self {
        assert!(!region.is_empty(), "fault region must be non-empty");
        self.region = Some(region);
        self
    }

    /// Schedules a memory bit flip at `addr` in cycle `cycle`.
    pub fn memory_flip_at(mut self, cycle: u64, addr: Addr) -> Self {
        self.scheduled.push((cycle, FaultKind::MemoryFlip { addr }));
        self
    }

    /// Schedules a cache bit flip in PE `pe`'s copy of `addr` at cycle
    /// `cycle`; a no-op if the line is not cached when the cycle comes.
    pub fn cache_flip_at(mut self, cycle: u64, pe: usize, addr: Addr) -> Self {
        self.scheduled
            .push((cycle, FaultKind::CacheFlip { pe, addr }));
        self
    }

    /// Schedules the loss of whatever transaction `bus` grants in cycle
    /// `cycle`.
    pub fn bus_loss_at(mut self, cycle: u64, bus: usize) -> Self {
        self.scheduled.push((cycle, FaultKind::BusLoss { bus }));
        self
    }

    /// Schedules the fail-stop of PE `pe` at cycle `cycle`.
    pub fn fail_stop_at(mut self, cycle: u64, pe: usize) -> Self {
        self.scheduled.push((cycle, FaultKind::FailStop { pe }));
        self
    }

    /// `true` if the plan injects nothing: no scheduled events and every
    /// rate zero. An inert plan never touches its RNG, so attaching one
    /// leaves the machine bit-identical to having no plan at all.
    pub fn is_inert(&self) -> bool {
        self.scheduled.is_empty()
            && self.memory_flip_rate == 0.0
            && self.cache_flip_rate == 0.0
            && self.bus_loss_rate == 0.0
            && self.fail_stop_rate == 0.0
    }

    /// `true` if any per-cycle rate is configured.
    pub(crate) fn has_rates(&self) -> bool {
        self.memory_flip_rate > 0.0
            || self.cache_flip_rate > 0.0
            || self.bus_loss_rate > 0.0
            || self.fail_stop_rate > 0.0
    }
}

/// The live injection state carried by a machine with a [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct FaultEngine {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: Rng,
    /// Cursor into `plan.scheduled` (sorted by cycle at construction).
    pub(crate) cursor: usize,
    /// Per-bus "lose the next grant" marks, set by the fault phase and
    /// consumed by the bus phase within the same cycle.
    pub(crate) lose_grant: Vec<bool>,
}

impl FaultEngine {
    pub(crate) fn new(mut plan: FaultPlan, buses: usize) -> Self {
        // Stable sort: events scheduled for the same cycle fire in the
        // order they were added to the plan.
        plan.scheduled.sort_by_key(|&(cycle, _)| cycle);
        let rng = Rng::from_seed(plan.seed);
        FaultEngine {
            plan,
            rng,
            cursor: 0,
            lose_grant: vec![false; buses],
        }
    }

    /// The cycle of the next not-yet-fired scheduled event, if any —
    /// the fault engine's contribution to the machine's wake schedule.
    /// Meaningless as a skip bound when the plan also has rates (those
    /// draw every cycle); callers must check
    /// [`FaultPlan::has_rates`] first.
    pub(crate) fn next_scheduled(&self) -> Option<u64> {
        self.plan
            .scheduled
            .get(self.cursor)
            .map(|&(cycle, _)| cycle)
    }

    /// Pops every scheduled event due at `cycle` (events scheduled for
    /// already-elapsed cycles fire late rather than never).
    pub(crate) fn due(&mut self, cycle: u64) -> Vec<FaultKind> {
        let mut due = Vec::new();
        while let Some(&(at, kind)) = self.plan.scheduled.get(self.cursor) {
            if at > cycle {
                break;
            }
            due.push(kind);
            self.cursor += 1;
        }
        due
    }
}

/// Counters for the fault-injection subsystem, separate from
/// [`MachineStats`](crate::MachineStats) — a faultless machine reports
/// all zeroes and its golden statistics are untouched.
///
/// Read via [`Machine::fault_stats`](crate::Machine::fault_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultStats {
    /// Memory word flips injected.
    pub memory_faults_injected: u64,
    /// Cache line flips injected (a scheduled flip of an uncached line
    /// does not count).
    pub cache_faults_injected: u64,
    /// Bus transactions lost (granted, burned, retried).
    pub bus_transactions_lost: u64,
    /// PEs fail-stopped.
    pub pe_fail_stops: u64,
    /// Memory parity failures detected on bus reads.
    pub memory_faults_detected: u64,
    /// Cache parity failures detected on CPU access or supply.
    pub cache_faults_detected: u64,
    /// Memory words repaired from an owning cache copy.
    pub memory_recoveries_owner: u64,
    /// Memory words repaired by majority vote among readable replicas.
    pub memory_recoveries_majority: u64,
    /// Detected memory faults with no usable replica (or with recovery
    /// off): the corrupt value was adopted.
    pub memory_recoveries_failed: u64,
    /// Corrupted cache lines invalidated and re-fetched from the
    /// coherent image (memory or a supplier).
    pub cache_refetches: u64,
    /// Corrupted cache lines healed in place by capturing a snooped
    /// broadcast value (an RWB-family bonus: the broadcast overwrites
    /// the bad word before anyone reads it).
    pub broadcast_heals: u64,
    /// Writes that existed only in a corrupted or fail-stopped cache
    /// and could not be flushed: the value is gone.
    pub lost_writes: u64,
    /// Owned lines flushed to memory by fail-stop draining.
    pub drained_lines: u64,
    /// Memory locks forcibly released from fail-stopped PEs.
    pub forced_unlocks: u64,
    /// Sum over detected faults of (detection cycle − injection cycle).
    pub recovery_latency_total: u64,
    /// Number of detections contributing to
    /// [`FaultStats::recovery_latency_total`].
    pub recovery_latency_samples: u64,
    /// Sum over in-loop memory recoveries of the replica count consulted.
    pub replicas_at_recovery: u64,
}

impl FaultStats {
    /// Total faults injected, of every kind.
    pub fn total_injected(&self) -> u64 {
        self.memory_faults_injected
            + self.cache_faults_injected
            + self.bus_transactions_lost
            + self.pe_fail_stops
    }

    /// In-loop memory recovery attempts (detections that reached the
    /// repair policy).
    pub fn memory_recovery_attempts(&self) -> u64 {
        self.memory_recoveries_owner
            + self.memory_recoveries_majority
            + self.memory_recoveries_failed
    }

    /// Fraction of detected memory faults repaired from a replica
    /// (`None` when nothing was detected).
    pub fn memory_recovery_success_rate(&self) -> Option<f64> {
        let attempts = self.memory_recovery_attempts();
        (attempts > 0).then(|| {
            (self.memory_recoveries_owner + self.memory_recoveries_majority) as f64
                / attempts as f64
        })
    }

    /// Mean cycles from injection to detection (`None` with no samples).
    pub fn mean_recovery_latency(&self) -> Option<f64> {
        (self.recovery_latency_samples > 0)
            .then(|| self.recovery_latency_total as f64 / self.recovery_latency_samples as f64)
    }

    /// Mean replicas consulted per in-loop memory recovery attempt
    /// (`None` with no attempts).
    pub fn mean_replicas_at_recovery(&self) -> Option<f64> {
        let attempts = self.memory_recovery_attempts();
        (attempts > 0).then(|| self.replicas_at_recovery as f64 / attempts as f64)
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "injected: {} memory, {} cache, {} bus losses, {} fail-stops",
            self.memory_faults_injected,
            self.cache_faults_injected,
            self.bus_transactions_lost,
            self.pe_fail_stops
        )?;
        writeln!(
            f,
            "detected: {} memory, {} cache",
            self.memory_faults_detected, self.cache_faults_detected
        )?;
        writeln!(
            f,
            "memory repairs: {} owner, {} majority, {} unrecoverable",
            self.memory_recoveries_owner,
            self.memory_recoveries_majority,
            self.memory_recoveries_failed
        )?;
        writeln!(
            f,
            "cache recoveries: {} refetches, {} broadcast heals",
            self.cache_refetches, self.broadcast_heals
        )?;
        write!(
            f,
            "degradation: {} lost writes, {} drained lines, {} forced unlocks",
            self.lost_writes, self.drained_lines, self.forced_unlocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        assert!(FaultPlan::new(1).is_inert());
        assert!(!FaultPlan::new(1).memory_flip_rate(0.5).is_inert());
        assert!(!FaultPlan::new(1).fail_stop_at(10, 0).is_inert());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rate_panics() {
        let _ = FaultPlan::new(1).bus_loss_rate(1.5);
    }

    #[test]
    fn engine_pops_scheduled_events_in_cycle_order() {
        let plan = FaultPlan::new(0)
            .fail_stop_at(30, 1)
            .memory_flip_at(10, Addr::new(4))
            .bus_loss_at(10, 0);
        let mut engine = FaultEngine::new(plan, 1);
        assert!(engine.due(9).is_empty());
        // Same-cycle events fire in plan insertion order.
        assert_eq!(
            engine.due(10),
            vec![
                FaultKind::MemoryFlip { addr: Addr::new(4) },
                FaultKind::BusLoss { bus: 0 }
            ]
        );
        assert!(engine.due(20).is_empty());
        assert_eq!(engine.due(31), vec![FaultKind::FailStop { pe: 1 }]);
        assert!(engine.due(1_000).is_empty());
    }

    #[test]
    fn stats_derived_metrics() {
        let mut s = FaultStats::default();
        assert_eq!(s.memory_recovery_success_rate(), None);
        assert_eq!(s.mean_recovery_latency(), None);
        s.memory_recoveries_owner = 3;
        s.memory_recoveries_majority = 1;
        s.memory_recoveries_failed = 4;
        s.recovery_latency_total = 60;
        s.recovery_latency_samples = 6;
        s.replicas_at_recovery = 16;
        assert_eq!(s.memory_recovery_attempts(), 8);
        assert_eq!(s.memory_recovery_success_rate(), Some(0.5));
        assert_eq!(s.mean_recovery_latency(), Some(10.0));
        assert_eq!(s.mean_replicas_at_recovery(), Some(2.0));
    }

    #[test]
    fn display_mentions_every_counter_family() {
        let text = FaultStats::default().to_string();
        for needle in [
            "injected",
            "detected",
            "repairs",
            "refetches",
            "lost writes",
        ] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }

    #[test]
    fn inject_error_display() {
        let e = InjectError::OutOfBounds {
            addr: Addr::new(9),
            size: 4,
        };
        assert!(e.to_string().contains("@9"));
        let e = InjectError::NoSuchPe { pe: 7, pes: 2 };
        assert!(e.to_string().contains("P7"));
    }
}
