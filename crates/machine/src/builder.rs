//! Fluent construction of [`Machine`]s.

use crate::{FailStopPolicy, FaultPlan, Machine, Observer, Processor, RecoveryPolicy, Trace};
use decache_bus::{ArbiterKind, Routing, ServiceDiscipline};
use decache_cache::{Geometry, TagStore};
use decache_core::ProtocolKind;
use decache_mem::Memory;

/// Default memory size in words.
const DEFAULT_MEMORY_WORDS: u64 = 4096;
/// Default cache size in lines (direct-mapped, one-word blocks).
const DEFAULT_CACHE_LINES: usize = 256;
/// Default trace capacity when tracing is enabled.
const DEFAULT_TRACE_CAPACITY: usize = 100_000;

/// The machine shape a builder will produce.
enum Shape {
    Interleaved { bank_bits: u32 },
    Clustered { clusters: usize, global_words: u64 },
}

/// Builds a [`Machine`]: pick a protocol, add processors, tune the
/// substrate, and [`MachineBuilder::build`].
///
/// # Examples
///
/// ```
/// use decache_core::ProtocolKind;
/// use decache_machine::{MachineBuilder, Script};
/// use decache_mem::{Addr, Word};
///
/// let mut machine = MachineBuilder::new(ProtocolKind::Rwb)
///     .memory_words(128)
///     .cache_lines(16)
///     .buses(2) // the Figure 7-1 dual-bus machine
///     .processor(Script::new().write(Addr::new(0), Word::ONE).build())
///     .processor(Script::new().read(Addr::new(0)).build())
///     .build();
/// machine.run_to_completion(1_000);
/// ```
pub struct MachineBuilder {
    protocol: ProtocolKind,
    memory_words: u64,
    geometry: Option<Geometry>,
    cache_lines: usize,
    shape: Shape,
    arbiter: ArbiterKind,
    discipline: ServiceDiscipline,
    transaction_cycles: u64,
    trace: bool,
    processors: Vec<Box<dyn Processor + Send>>,
    observers: Vec<Box<dyn Observer>>,
    initial_memory: Vec<(decache_mem::Addr, decache_mem::Word)>,
    fault_plan: Option<FaultPlan>,
    recovery_policy: RecoveryPolicy,
    fail_stop_policy: FailStopPolicy,
    telemetry: bool,
    progress_window: u64,
    step_threads: usize,
}

impl std::fmt::Debug for MachineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineBuilder")
            .field("protocol", &self.protocol)
            .field("memory_words", &self.memory_words)
            .field("cache_lines", &self.cache_lines)
            .field(
                "shape",
                &match self.shape {
                    Shape::Interleaved { bank_bits } => format!("interleaved({bank_bits})"),
                    Shape::Clustered { clusters, .. } => format!("clustered({clusters})"),
                },
            )
            .field("arbiter", &self.arbiter)
            .field("discipline", &self.discipline)
            .field("trace", &self.trace)
            .field("processors", &self.processors.len())
            .finish()
    }
}

impl MachineBuilder {
    /// Starts a builder for the given coherence protocol.
    pub fn new(protocol: ProtocolKind) -> Self {
        MachineBuilder {
            protocol,
            memory_words: DEFAULT_MEMORY_WORDS,
            geometry: None,
            cache_lines: DEFAULT_CACHE_LINES,
            shape: Shape::Interleaved { bank_bits: 0 },
            arbiter: ArbiterKind::RoundRobin,
            discipline: ServiceDiscipline::default(),
            transaction_cycles: 1,
            trace: false,
            processors: Vec::new(),
            observers: Vec::new(),
            initial_memory: Vec::new(),
            fault_plan: None,
            recovery_policy: RecoveryPolicy::default(),
            fail_stop_policy: FailStopPolicy::default(),
            telemetry: false,
            progress_window: crate::DEFAULT_PROGRESS_WINDOW,
            step_threads: 1,
        }
    }

    /// Sets the shared memory size in words (default 4096).
    pub fn memory_words(&mut self, words: u64) -> &mut Self {
        self.memory_words = words;
        self
    }

    /// Sets the per-PE cache size in direct-mapped one-word lines
    /// (default 256, the smallest Table 1-1 size).
    pub fn cache_lines(&mut self, lines: usize) -> &mut Self {
        self.cache_lines = lines;
        self.geometry = None;
        self
    }

    /// Sets an explicit cache geometry, relaxing the paper's
    /// direct-mapped assumption (assumption 7) for the associativity
    /// ablation. The block size must remain one word — the snooping
    /// protocols are defined per word.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's block size is not one word.
    pub fn cache_geometry(&mut self, geometry: Geometry) -> &mut Self {
        assert_eq!(
            geometry.block_words(),
            1,
            "the coherence protocols require one-word blocks"
        );
        self.geometry = Some(geometry);
        self
    }

    /// Sets how many bus cycles each transaction occupies (default 1,
    /// the paper's model). Larger values model a memory that is slower
    /// than the caches, making bus saturation bite earlier.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn transaction_cycles(&mut self, cycles: u64) -> &mut Self {
        assert!(cycles >= 1, "transactions take at least one cycle");
        self.transaction_cycles = cycles;
        self
    }

    /// Sets the number of shared buses; must be a power of two
    /// (default 1). Buses are interleaved on the least significant
    /// address bits (Figure 7-1).
    ///
    /// # Panics
    ///
    /// Panics if `buses` is not a power of two in `1..=256`.
    pub fn buses(&mut self, buses: usize) -> &mut Self {
        assert!(
            buses.is_power_of_two() && (1..=256).contains(&buses),
            "bus count {buses} must be a power of two in 1..=256"
        );
        self.shape = Shape::Interleaved {
            bank_bits: buses.trailing_zeros(),
        };
        self
    }

    /// Configures the hierarchical machine of the paper's Section 8
    /// future work: one global bus serving the shared region
    /// `[0, global_words)` plus one bus per cluster of processors, each
    /// serving an equal slice of the remaining memory. Requires the PE
    /// count to divide evenly into `clusters`.
    ///
    /// # Panics
    ///
    /// Panics at [`MachineBuilder::build`] if the memory does not cover
    /// the global region plus a non-empty region per cluster, or the
    /// PEs do not divide evenly.
    pub fn clusters(&mut self, clusters: usize, global_words: u64) -> &mut Self {
        assert!(clusters > 0, "a hierarchy needs at least one cluster");
        self.shape = Shape::Clustered {
            clusters,
            global_words,
        };
        self
    }

    /// Selects the bus arbitration policy (default round-robin).
    pub fn arbiter(&mut self, arbiter: ArbiterKind) -> &mut Self {
        self.arbiter = arbiter;
        self
    }

    /// Selects the bus service discipline (default
    /// [`ServiceDiscipline::PerCycle`]), shared by every bus. The
    /// discipline decides *when* queued requests are served; the
    /// [`MachineBuilder::arbiter`] policy still breaks same-cycle ties
    /// where the discipline leaves any.
    pub fn discipline(&mut self, discipline: ServiceDiscipline) -> &mut Self {
        self.discipline = discipline;
        self
    }

    /// Enables event tracing.
    pub fn trace(&mut self) -> &mut Self {
        self.trace = true;
        self
    }

    /// Attaches a structured protocol-event [`Observer`] (e.g. the
    /// conformance oracle of `decache-verify`) from the first cycle on.
    pub fn observer(&mut self, observer: Box<dyn Observer>) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Pre-loads consecutive memory words starting at `base` before the
    /// machine starts — input data for compute kernels.
    pub fn initialize_memory(
        &mut self,
        base: decache_mem::Addr,
        values: &[decache_mem::Word],
    ) -> &mut Self {
        for (i, &v) in values.iter().enumerate() {
            self.initial_memory.push((base.offset(i as u64), v));
        }
        self
    }

    /// Enables cycle-attribution telemetry: the machine records
    /// power-of-2-bucket latency histograms
    /// ([`Machine::histograms`](crate::Machine::histograms)) for
    /// bus-acquire wait, memory service time, read-miss fill time, and
    /// Test-and-Set lock-spin length. Pure observation — a
    /// telemetry-enabled machine's statistics are bit-identical to one
    /// built without it.
    pub fn telemetry(&mut self) -> &mut Self {
        self.telemetry = true;
        self
    }

    /// Attaches a deterministic [`FaultPlan`]. An inert plan (no rates,
    /// no scheduled events) leaves every statistic bit-identical to a
    /// machine built without one.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the in-loop repair policy for memory words whose parity
    /// check fails on a bus read (default
    /// [`RecoveryPolicy::Majority`]).
    pub fn recovery_policy(&mut self, policy: RecoveryPolicy) -> &mut Self {
        self.recovery_policy = policy;
        self
    }

    /// Selects what fail-stop handling does with a dead PE's owned
    /// lines (default [`FailStopPolicy::Drain`]).
    pub fn fail_stop_policy(&mut self, policy: FailStopPolicy) -> &mut Self {
        self.fail_stop_policy = policy;
        self
    }

    /// Sets the livelock/deadlock progress window in cycles (default
    /// [`DEFAULT_PROGRESS_WINDOW`](crate::DEFAULT_PROGRESS_WINDOW)):
    /// at budget exhaustion, a PE with no completed operation in the
    /// trailing `cycles` is judged deadlocked, one with a recent
    /// completion livelocked. Absolute by design — the verdict for a
    /// stuck machine must not change with the run budget.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn progress_window(&mut self, cycles: u64) -> &mut Self {
        assert!(
            cycles >= 1,
            "the progress window must be at least one cycle"
        );
        self.progress_window = cycles;
        self
    }

    /// Sets the worker count for the sharded issue phase (default 1 =
    /// sequential). `0` resolves automatically: the
    /// `DECACHE_BENCH_THREADS` environment knob if set, else the
    /// machine's available parallelism — the same convention as
    /// `decache_analysis::par`. Sharding is deterministic by
    /// construction (workers compute per-PE decisions against pre-cycle
    /// state; the main thread commits them in ascending PE order), so
    /// every statistic and fingerprint is byte-identical to the
    /// sequential engine; it engages only on cycles with enough idle
    /// PEs to outweigh the per-cycle thread-spawn cost, and falls back
    /// whenever tracing, observers, or fault injection are live.
    pub fn step_threads(&mut self, threads: usize) -> &mut Self {
        self.step_threads = match threads {
            0 => match std::env::var("DECACHE_BENCH_THREADS") {
                Ok(v) => v
                    .parse()
                    .unwrap_or_else(|_| panic!("DECACHE_BENCH_THREADS={v} is not a number")),
                Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
            },
            n => n,
        }
        .max(1);
        self
    }

    /// Adds a processing element running the given program.
    pub fn processor(&mut self, processor: Box<dyn Processor + Send>) -> &mut Self {
        self.processors.push(processor);
        self
    }

    /// Adds `n` processing elements produced by a factory (PE index as
    /// argument).
    pub fn processors(
        &mut self,
        n: usize,
        mut factory: impl FnMut(usize) -> Box<dyn Processor + Send>,
    ) -> &mut Self {
        let start = self.processors.len();
        for i in 0..n {
            self.processors.push(factory(start + i));
        }
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if no processors were added, or if the memory size is not
    /// divisible by the bus count.
    pub fn build(&mut self) -> Machine {
        let processors = std::mem::take(&mut self.processors);
        assert!(
            !processors.is_empty(),
            "a machine needs at least one processor"
        );
        let routing = match self.shape {
            Shape::Interleaved { bank_bits } => Routing::interleaved(bank_bits),
            Shape::Clustered {
                clusters,
                global_words,
            } => {
                assert!(
                    processors.len().is_multiple_of(clusters),
                    "{} PEs do not divide into {clusters} clusters",
                    processors.len()
                );
                assert!(
                    self.memory_words > global_words,
                    "memory ({} words) must exceed the global region ({global_words})",
                    self.memory_words
                );
                let cluster_words = (self.memory_words - global_words) / clusters as u64;
                assert!(cluster_words > 0, "no memory left for the cluster regions");
                Routing::clustered(clusters, global_words, cluster_words)
            }
        };
        let protocol = decache_core::AnyProtocol::build(self.protocol);
        let geometry = self
            .geometry
            .unwrap_or_else(|| Geometry::direct_mapped(self.cache_lines));
        let caches = (0..processors.len())
            .map(|_| TagStore::new(geometry))
            .collect();
        let arbiters = (0..routing.bus_count())
            .map(|_| self.arbiter.build())
            .collect();
        let mut trace = Trace::new();
        if self.trace {
            trace.enable(DEFAULT_TRACE_CAPACITY);
        }
        let mut memory = Memory::new(self.memory_words);
        for &(addr, value) in &self.initial_memory {
            memory
                .write(addr, value)
                .expect("initial memory contents in range");
        }
        memory.reset_stats();
        let mut machine = Machine::from_parts(
            protocol,
            routing,
            memory,
            caches,
            processors,
            arbiters,
            self.transaction_cycles,
            self.discipline,
            trace,
            self.fault_plan.take(),
            self.recovery_policy,
            self.fail_stop_policy,
            self.telemetry,
            self.progress_window,
            self.step_threads,
        );
        for observer in std::mem::take(&mut self.observers) {
            machine.attach_observer(observer);
        }
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Script;
    use decache_mem::{Addr, Word};

    #[test]
    fn defaults_build_a_single_bus_machine() {
        let machine = MachineBuilder::new(ProtocolKind::Rb)
            .processor(Script::new().build())
            .build();
        assert_eq!(machine.pe_count(), 1);
        assert_eq!(machine.bus_count(), 1);
        assert_eq!(machine.memory().size(), 4096);
        assert_eq!(machine.protocol().name(), "RB");
    }

    #[test]
    fn buses_sets_topology() {
        let machine = MachineBuilder::new(ProtocolKind::Rb)
            .buses(4)
            .processor(Script::new().build())
            .build();
        assert_eq!(machine.bus_count(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_buses_panics() {
        MachineBuilder::new(ProtocolKind::Rb).buses(3);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_machine_panics() {
        MachineBuilder::new(ProtocolKind::Rb).build();
    }

    #[test]
    fn factory_adds_n_processors() {
        let machine = MachineBuilder::new(ProtocolKind::Rwb)
            .processors(5, |i| {
                Script::new().write(Addr::new(i as u64), Word::ONE).build()
            })
            .build();
        assert_eq!(machine.pe_count(), 5);
    }

    #[test]
    fn trace_flag_enables_recording() {
        let mut machine = MachineBuilder::new(ProtocolKind::Rb)
            .trace()
            .processor(Script::new().read(Addr::new(0)).build())
            .build();
        machine.run_to_completion(100);
        assert!(!machine.trace().is_empty());
    }
}
