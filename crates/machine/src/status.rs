//! Internal per-PE execution status.

use decache_cache::RefClass;
use decache_mem::{Addr, Word};

/// What a stalled processing element is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// A bus read for a CPU read miss.
    Read { addr: Addr, class: RefClass },
    /// A bus write (or bus invalidate) for a CPU write miss; carries the
    /// CPU value so the bus-invalidate path (which has no data payload)
    /// can install it locally on completion.
    Write {
        addr: Addr,
        value: Word,
        class: RefClass,
    },
    /// The locked-read half of a Test-and-Set.
    LockedRead {
        addr: Addr,
        set_to: Word,
        class: RefClass,
    },
    /// The unlocking-write half of a successful Test-and-Set.
    UnlockWrite {
        addr: Addr,
        old: Word,
        class: RefClass,
    },
}

impl Pending {
    /// The address the pending transaction targets.
    pub(crate) fn addr(&self) -> Addr {
        match *self {
            Pending::Read { addr, .. }
            | Pending::Write { addr, .. }
            | Pending::LockedRead { addr, .. }
            | Pending::UnlockWrite { addr, .. } => addr,
        }
    }
}

/// The execution status of one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PeStatus {
    /// Ready to issue its next operation.
    Idle,
    /// Stalled on a bus transaction.
    WaitBus(Pending),
    /// The processor's program has finished.
    Done,
    /// The PE fail-stopped: its cache is dark, its pending work was
    /// cancelled, and it never issues again. Counts as finished for
    /// completion purposes — the surviving PEs run on.
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_addr_extraction() {
        let a = Addr::new(9);
        for p in [
            Pending::Read {
                addr: a,
                class: RefClass::Shared,
            },
            Pending::Write {
                addr: a,
                value: Word::ONE,
                class: RefClass::Local,
            },
            Pending::LockedRead {
                addr: a,
                set_to: Word::ONE,
                class: RefClass::Shared,
            },
            Pending::UnlockWrite {
                addr: a,
                old: Word::ZERO,
                class: RefClass::Shared,
            },
        ] {
            assert_eq!(p.addr(), a);
        }
    }

    #[test]
    fn status_equality() {
        assert_eq!(PeStatus::Idle, PeStatus::Idle);
        assert_ne!(PeStatus::Idle, PeStatus::Done);
    }
}
