//! Event tracing for debugging and for rendering figure narratives.

use decache_mem::PeId;
use std::fmt;

/// The category of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A processor issued an operation to its cache.
    Issue,
    /// The operation completed in the cache without bus activity.
    Hit,
    /// A bus transaction was granted.
    Grant,
    /// A bus read was interrupted and replaced by a cache's write.
    Abort,
    /// A transaction was rejected by a memory lock and requeued.
    LockRejected,
    /// A stalled operation completed.
    Complete,
    /// A stalled read was satisfied by snooping a broadcast.
    BroadcastSatisfied,
    /// An evicted line was written back.
    Writeback,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            TraceKind::Issue => "issue",
            TraceKind::Hit => "hit",
            TraceKind::Grant => "grant",
            TraceKind::Abort => "abort",
            TraceKind::LockRejected => "lock-rejected",
            TraceKind::Complete => "complete",
            TraceKind::BroadcastSatisfied => "broadcast-satisfied",
            TraceKind::Writeback => "writeback",
        };
        f.write_str(label)
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The bus cycle in which the event occurred.
    pub cycle: u64,
    /// The category.
    pub kind: TraceKind,
    /// The processing element involved, if any.
    pub pe: Option<PeId>,
    /// Human-readable detail.
    pub text: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pe {
            Some(pe) => write!(f, "[{:>5}] {} {}: {}", self.cycle, pe, self.kind, self.text),
            None => write!(f, "[{:>5}] {}: {}", self.cycle, self.kind, self.text),
        }
    }
}

/// A bounded in-memory trace recorder. Disabled by default; when enabled
/// it records every event up to a capacity limit, after which new events
/// are dropped (and counted).
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables recording with the given capacity.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Returns `true` if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled and under capacity.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The number of events dropped after capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears recorded events (keeps the enabled state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: TraceKind::Issue,
            pe: Some(PeId::new(0)),
            text: "read @0".to_owned(),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        assert!(!t.is_enabled());
        t.record(ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_trace_records_until_capacity() {
        let mut t = Trace::new();
        t.enable(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
    }

    #[test]
    fn event_display_contains_cycle_pe_and_kind() {
        let text = ev(42).to_string();
        assert!(text.contains("42"));
        assert!(text.contains("P0"));
        assert!(text.contains("issue"));
        let anon = TraceEvent {
            cycle: 1,
            kind: TraceKind::Grant,
            pe: None,
            text: "x".into(),
        };
        assert!(anon.to_string().contains("grant"));
    }
}
