//! Event tracing for debugging and for rendering figure narratives,
//! plus the structured [`Observer`] callback the conformance oracle in
//! `decache-verify` subscribes to.

use crate::fault::{FaultKind, RecoverySource};
use decache_core::BusIntent;
use decache_mem::{Addr, PeId};
use std::fmt;

/// A protocol-level decision for a CPU reference, as observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuDecision {
    /// The reference completed in the cache.
    Hit,
    /// The reference stalled and enqueued a bus transaction of the
    /// given intent.
    Miss(BusIntent),
}

/// One structured protocol-level step of the machine, emitted to every
/// attached [`Observer`] as it happens.
///
/// Together these observations are a complete account of every cache
/// state mutation the machine performs: CPU decisions at issue time,
/// and snoop/install effects at bus-transaction completion time. The
/// conformance oracle replays them against the Section 4 product model
/// and flags any step the model does not allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// A CPU read or write was decided against the cache.
    CpuAccess {
        /// The issuing processing element.
        pe: usize,
        /// The referenced address.
        addr: Addr,
        /// `true` for a write reference.
        write: bool,
        /// Hit, or miss with the enqueued bus intent.
        decision: CpuDecision,
    },
    /// A Test-and-Set began: its locked read is always a bus operation
    /// ("the initial read-with-lock does not reference the value in the
    /// cache").
    LockedReadIssued {
        /// The issuing processing element.
        pe: usize,
        /// The lock word.
        addr: Addr,
    },
    /// A cache interrupted a foreign bus read and supplied its data via
    /// a substituted bus write (the Section 3 abort path); the read
    /// retries next cycle.
    Supplied {
        /// The supplying (owning) cache.
        supplier: usize,
        /// The initiator of the interrupted read.
        initiator: usize,
        /// The address read.
        addr: Addr,
    },
    /// A bus read (plain or locked) completed: every other holder
    /// snooped the broadcast and the initiator's line filled.
    ReadCompleted {
        /// The initiating processing element.
        pe: usize,
        /// The address read.
        addr: Addr,
        /// `true` for a Test-and-Set's locked read.
        locked: bool,
    },
    /// A bus write (plain or unlocking) completed: memory updated,
    /// every other holder snooped it, the initiator's line updated.
    WriteCompleted {
        /// The initiating processing element.
        pe: usize,
        /// The address written.
        addr: Addr,
        /// `true` for a Test-and-Set's unlocking write.
        unlock: bool,
    },
    /// A bus invalidate completed (RWB's `BI`): every other holder
    /// invalidated; the initiator's write was applied locally.
    InvalidateCompleted {
        /// The initiating processing element.
        pe: usize,
        /// The address invalidated.
        addr: Addr,
    },
    /// A stalled read completed by snooping a broadcast instead of its
    /// own bus transaction (which was cancelled).
    BroadcastSatisfied {
        /// The satisfied processing element.
        pe: usize,
        /// The address read.
        addr: Addr,
    },
    /// A line was evicted to make room for an install.
    Evicted {
        /// The evicting processing element.
        pe: usize,
        /// The evicted line's address.
        addr: Addr,
        /// Whether the line was written back to memory.
        writeback: bool,
    },
    /// A fault was injected (by a [`FaultPlan`](crate::FaultPlan) or a
    /// manual `corrupt_*` call). Injection changes no protocol state,
    /// only data and parity, so the conformance oracle ignores it.
    FaultInjected {
        /// What was injected where.
        fault: FaultKind,
    },
    /// A parity check failed: in PE `pe`'s cache if `pe` is `Some`,
    /// else in memory.
    FaultDetected {
        /// The cache that detected the fault (`None` = memory parity,
        /// detected on a bus read).
        pe: Option<usize>,
        /// The corrupted address.
        addr: Addr,
    },
    /// A corrupted cache line was invalidated so the access re-fetches
    /// the coherent image — the line is *gone* from `pe`'s cache. If
    /// the line owned the latest value, that write is lost and the
    /// refetch observes stale memory.
    LineScrubbed {
        /// The cache that dropped its corrupted line.
        pe: usize,
        /// The scrubbed address.
        addr: Addr,
        /// `true` if the dropped line owned the latest value (a lost
        /// write).
        lost_write: bool,
    },
    /// A corrupted memory word was repaired in-loop from cache
    /// replicas, per the machine's
    /// [`RecoveryPolicy`](crate::RecoveryPolicy).
    MemoryRepaired {
        /// The repaired address.
        addr: Addr,
        /// Where the recovered value came from.
        source: RecoverySource,
    },
    /// A corrupted cache line was healed in place by capturing a
    /// snooped broadcast value (no state change beyond the ordinary
    /// snoop).
    BroadcastHealed {
        /// The healed cache.
        pe: usize,
        /// The healed address.
        addr: Addr,
    },
    /// PE `pe` fail-stopped: pending work cancelled, locks released,
    /// cache drained or forfeited, all lines dropped.
    PeFailStopped {
        /// The dead processing element.
        pe: usize,
        /// Owned lines flushed to memory before going dark.
        drained: u32,
        /// Writes that existed only in the dead cache and are now gone.
        lost_writes: u32,
    },
}

/// A subscriber to the machine's structured protocol-level events.
///
/// Observers are attached with
/// [`Machine::attach_observer`](crate::Machine::attach_observer) (or
/// [`MachineBuilder::observer`](crate::MachineBuilder::observer)) and
/// invoked synchronously at each step, in attachment order. Observers
/// must be **pure** with respect to the simulation: they see the
/// machine's behaviour but cannot change it, so attaching one never
/// perturbs any simulated statistic.
pub trait Observer: Send {
    /// Called for every protocol-level step, with the current bus cycle.
    fn observe(&mut self, cycle: u64, observation: &Observation);
}

/// The category of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A processor issued an operation to its cache.
    Issue,
    /// The operation completed in the cache without bus activity.
    Hit,
    /// A bus transaction was granted.
    Grant,
    /// A bus read was interrupted and replaced by a cache's write.
    Abort,
    /// A transaction was rejected by a memory lock and requeued.
    LockRejected,
    /// A stalled operation completed.
    Complete,
    /// A stalled read was satisfied by snooping a broadcast.
    BroadcastSatisfied,
    /// An evicted line was written back.
    Writeback,
    /// A fault was injected.
    FaultInject,
    /// A parity check failed (cache or memory).
    FaultDetect,
    /// A corrupted word or line was recovered (refetch, repair, or
    /// broadcast heal).
    Recover,
    /// A processing element fail-stopped.
    FailStop,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            TraceKind::Issue => "issue",
            TraceKind::Hit => "hit",
            TraceKind::Grant => "grant",
            TraceKind::Abort => "abort",
            TraceKind::LockRejected => "lock-rejected",
            TraceKind::Complete => "complete",
            TraceKind::BroadcastSatisfied => "broadcast-satisfied",
            TraceKind::Writeback => "writeback",
            TraceKind::FaultInject => "fault-inject",
            TraceKind::FaultDetect => "fault-detect",
            TraceKind::Recover => "recover",
            TraceKind::FailStop => "fail-stop",
        };
        f.write_str(label)
    }
}

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The bus cycle in which the event occurred.
    pub cycle: u64,
    /// The category.
    pub kind: TraceKind,
    /// The processing element involved, if any.
    pub pe: Option<PeId>,
    /// Human-readable detail.
    pub text: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pe {
            Some(pe) => write!(f, "[{:>5}] {} {}: {}", self.cycle, pe, self.kind, self.text),
            None => write!(f, "[{:>5}] {}: {}", self.cycle, self.kind, self.text),
        }
    }
}

/// A bounded in-memory trace recorder. Disabled by default; when enabled
/// it records every event up to a capacity limit, after which new events
/// are dropped (and counted).
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables recording with the given capacity.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Returns `true` if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled and under capacity.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The number of events dropped after capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears recorded events (keeps the enabled state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: TraceKind::Issue,
            pe: Some(PeId::new(0)),
            text: "read @0".to_owned(),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        assert!(!t.is_enabled());
        t.record(ev(1));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_trace_records_until_capacity() {
        let mut t = Trace::new();
        t.enable(2);
        t.record(ev(1));
        t.record(ev(2));
        t.record(ev(3));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
    }

    #[test]
    fn event_display_contains_cycle_pe_and_kind() {
        let text = ev(42).to_string();
        assert!(text.contains("42"));
        assert!(text.contains("P0"));
        assert!(text.contains("issue"));
        let anon = TraceEvent {
            cycle: 1,
            kind: TraceKind::Grant,
            pe: None,
            text: "x".into(),
        };
        assert!(anon.to_string().contains("grant"));
    }
}
